"""Ablation benches for the design choices DESIGN.md calls out and the
§VII future-work variants.

1. **Placement scheme** — address-space hashing (Algorithm 1, the paper's
   design) vs direct AS-number hashing (§VII variant): equivalent latency,
   but opposite load profiles — address hashing spreads storage
   proportionally to announced space, AS-number hashing spreads it
   uniformly per AS.
2. **Economic weighting** (§VII) — hosting shares track negotiated weights.
3. **In-network caching** (§VII) — the hit-rate / staleness / latency
   triangle as the TTL grows under a mobile population.
"""

import numpy as np
import pytest

from repro.core.cache import CachingResolver
from repro.core.guid import GUID
from repro.core.resolver import DMapResolver
from repro.hashing.asnum_placer import ASNumberPlacer, WeightedASPlacer
from repro.sim.metrics import summarize
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

from .conftest import once


def _run_latency(env, workload, placer=None):
    # local_replica off so the stored load is purely placement-driven.
    resolver = DMapResolver(
        env.table, env.router, k=5, placer=placer, local_replica=False
    )
    rtts = workload.run_through_resolver(resolver, env.table)
    return resolver, np.asarray(rtts)


def test_placement_scheme_ablation(benchmark, env):
    workload = WorkloadGenerator(
        env.topology,
        WorkloadConfig(
            n_guids=min(env.scale.n_guids, 3000),
            n_lookups=min(env.scale.n_lookups, 20_000),
            seed=4,
        ),
    ).generate()

    def run():
        addr_resolver, addr_rtts = _run_latency(env, workload)
        asnum_resolver, asnum_rtts = _run_latency(
            env, workload, placer=ASNumberPlacer(env.topology.asns(), k=5)
        )
        return addr_resolver, addr_rtts, asnum_resolver, asnum_rtts

    addr_resolver, addr_rtts, asnum_resolver, asnum_rtts = once(benchmark, run)

    addr_stats, asnum_stats = summarize(addr_rtts), summarize(asnum_rtts)
    print(f"\naddress-hash placement : {addr_stats.as_row()}")
    print(f"AS-number placement    : {asnum_stats.as_row()}")

    # Latency: both are single-overlay-hop random placement → same regime.
    assert 0.6 < asnum_stats.mean / addr_stats.mean < 1.6

    # Load profile: address hashing tracks announced space; AS-number
    # hashing ignores it.  Rank correlation between per-AS load and
    # effective announced span separates the two cleanly.
    from scipy.stats import spearmanr

    spans = env.table.build_interval_index().effective_span_by_asn()
    ordered_asns = sorted(spans)

    def span_correlation(resolver):
        loads = [len(resolver.store_at(a)) for a in ordered_asns]
        rho, _p = spearmanr([spans[a] for a in ordered_asns], loads)
        return float(rho)

    addr_rho = span_correlation(addr_resolver)
    asnum_rho = span_correlation(asnum_resolver)
    print(f"load-vs-announced-span rank correlation — "
          f"address-hash: {addr_rho:.2f}, AS-number: {asnum_rho:.2f}")
    assert addr_rho > 0.6, "address hashing must track announced space"
    assert asnum_rho < addr_rho - 0.3, "AS-number hashing must not"

    # Per-AS uniformity is the AS-number scheme's own fairness notion.
    asnum_counts = np.asarray(
        [len(s) for s in asnum_resolver.stores.values() if len(s)]
    )
    addr_counts = np.asarray(
        [len(s) for s in addr_resolver.stores.values() if len(s)]
    )
    assert asnum_counts.std() / asnum_counts.mean() < addr_counts.std() / max(
        addr_counts.mean(), 1e-9
    )


def test_economic_weighting_ablation(benchmark, env):
    """§VII: 'allocation sizes can be varied to reflect economic
    incentives' — replica share tracks the negotiated weight."""

    asns = env.topology.asns()
    rng = np.random.default_rng(5)
    # Three payment tiers: 10% premium ASs take 5x weight, 30% standard,
    # 60% minimal.
    weights = {}
    for asn in asns:
        draw = rng.random()
        weights[asn] = 5.0 if draw < 0.1 else (1.0 if draw < 0.4 else 0.2)

    def run():
        placer = WeightedASPlacer(weights, k=5)
        counts = {}
        for i in range(4000):
            for asn in placer.hosting_asns(GUID.from_name(f"econ-{i}")):
                counts[asn] = counts.get(asn, 0) + 1
        return placer, counts

    placer, counts = once(benchmark, run)
    premium = [a for a, w in weights.items() if w == 5.0]
    minimal = [a for a, w in weights.items() if w == 0.2]
    mean_premium = np.mean([counts.get(a, 0) for a in premium])
    mean_minimal = np.mean([counts.get(a, 0) for a in minimal])
    print(f"\nreplicas/AS — premium tier: {mean_premium:.1f}, "
          f"minimal tier: {mean_minimal:.1f} (weight ratio 25x)")
    assert mean_premium > 10 * mean_minimal


def test_in_network_caching_ablation(benchmark, env):
    """§VII caching: longer TTLs buy hit rate at the price of staleness."""
    rng = np.random.default_rng(6)
    asns = env.topology.asns()
    n_hosts = 150
    guids = [GUID.from_name(f"cache-h{i}") for i in range(n_hosts)]
    queriers = [int(a) for a in rng.choice(asns, size=20)]

    def run_ttl(ttl_ms):
        resolver = DMapResolver(env.table, env.router, k=5)
        homes = {}
        for guid in guids:
            home = int(rng.choice(asns))
            homes[guid] = home
            resolver.insert(
                guid, [env.table.representative_address(home)], home
            )
        caching = CachingResolver(resolver, ttl_ms=ttl_ms)
        rtts = []
        # 3000 queries over an hour; hosts move every ~6 minutes.
        for step in range(3000):
            caching.advance_time(1200.0)
            if step % 300 == 0 and step:
                for guid in guids[:: max(1, n_hosts // 50)]:
                    target = int(rng.choice(asns))
                    resolver.update(
                        guid, [env.table.representative_address(target)], target
                    )
            guid = guids[int(rng.integers(0, n_hosts))]
            src = queriers[step % len(queriers)]
            result, _cached = caching.lookup(guid, src)
            rtts.append(result.rtt_ms)
        return caching.stats, float(np.mean(rtts))

    def run_all():
        return {ttl: run_ttl(ttl) for ttl in (0.0, 60_000.0, 600_000.0, 3.6e6)}

    results = once(benchmark, run_all)
    print()
    for ttl, (stats, mean_rtt) in results.items():
        print(
            f"TTL {ttl/1000:7.0f}s: hit rate {stats.hit_rate:6.1%}  "
            f"stale rate {stats.staleness_rate:6.1%}  mean {mean_rtt:6.1f} ms"
        )

    hit_rates = [results[t][0].hit_rate for t in sorted(results)]
    assert hit_rates == sorted(hit_rates), "hit rate grows with TTL"
    assert results[0.0][0].hit_rate == 0.0
    # Caching cuts the mean latency once the TTL is meaningful.
    assert results[3.6e6][1] < results[0.0][1]
    # And staleness appears as the TTL outlives the mobility timescale.
    assert results[3.6e6][0].staleness_rate >= results[60_000.0][0].staleness_rate
