"""E8 — DMap vs baseline schemes (§II-B / §VI quantified).

Paper arguments checked:
* multi-hop DHT mapping needs many overlay hops and an order of magnitude
  more latency ("up to 8 logical hops ... about 900 ms" at full scale);
* one-hop DHTs approach DMap's latency but pay linear membership
  maintenance traffic; DMap pays none;
* MobileIP's home-agent anchoring and DNS's hierarchy+cache both lose to
  replica-local resolution.
"""

from repro.experiments.baselines_compare import run_baseline_comparison

from .conftest import once


def test_baseline_comparison(benchmark, env, workload_config):
    result = once(
        benchmark,
        run_baseline_comparison,
        environment=env,
        workload_override=workload_config,
    )
    print()
    print(result.render())

    stats = result.by_name()
    dmap = stats["dmap (K=5)"]
    chord = stats["chord-dht"]
    onehop = stats["one-hop-dht"]
    mobileip = stats["mobile-ip"]
    dns = stats["dns-like"]

    # DMap wins on mean latency against every baseline.
    for name, s in stats.items():
        if name != "dmap (K=5)":
            assert s.latency.mean > dmap.latency.mean, name

    # Multi-hop DHT is the slowest resolver, by a large factor.
    assert chord.latency.mean > 3 * dmap.latency.mean
    assert chord.mean_overlay_hops > 2.0

    # The latency/maintenance tradeoff: the one-hop DHT gets close on
    # latency but needs maintenance traffic; DMap needs none.
    assert onehop.latency.mean < chord.latency.mean
    assert onehop.maintenance_bps > 0.0
    assert chord.maintenance_bps > 0.0
    assert dmap.maintenance_bps == 0.0

    # Single-overlay-hop property.
    assert dmap.mean_overlay_hops == 1.0
