"""E1 — Figure 4: round-trip query response time CDF for K ∈ {1, 3, 5}.

Paper shapes checked:
* adding replicas shifts the whole CDF left (every percentile improves);
* the K=1 → K=5 95th-percentile gap is roughly 2x at paper scale;
* a long tail survives at every K (pathological stub-AS queries).
"""

import numpy as np

from repro.experiments.fig4_response_time import run_fig4

from .conftest import once


def test_fig4_response_time_cdf(benchmark, env, workload_config):
    result = once(
        benchmark, run_fig4, environment=env, workload_override=workload_config
    )
    print()
    print(result.render())

    s = result.summaries()
    # CDF ordering: K=5 dominates K=3 dominates K=1.
    assert s[1].median >= s[3].median >= s[5].median * 0.999
    assert s[1].p95 > s[5].p95
    assert s[1].mean > s[5].mean
    # Tail contraction (paper: 172.8 → 86.1 ms, ~2x; looser off-scale).
    assert 1.1 < s[1].p95 / s[5].p95 < 3.5
    # Long tail survives replication: the max is far beyond the median.
    assert s[5].max > 4 * s[5].median


def test_fig4_fastpath_engine(benchmark, env, workload_config):
    """The batched engine (``repro.fastpath``): timed here, equivalence
    checked against the scalar walk outside the timer.

    This is the entry the perf work is judged on — ``BENCH_fig4.json``
    records the scalar-vs-fastpath wall clock per scale.
    """
    result = once(
        benchmark,
        run_fig4,
        environment=env,
        workload_override=workload_config,
        engine="fastpath",
    )
    scalar = run_fig4(environment=env, workload_override=workload_config)
    for k, rtts in result.rtts_by_k.items():
        assert np.array_equal(np.sort(rtts), np.sort(scalar.rtts_by_k[k]))
    print()
    print(result.render())


def test_fig4_replica_choice_ablation(benchmark, env, workload_config):
    """Ablation (§IV-B.2a): least-hop-count selection instead of
    lowest-latency — 'similar results albeit with marginally increased
    latencies'."""
    result = once(
        benchmark,
        run_fig4,
        environment=env,
        workload_override=workload_config,
        k_values=(5,),
        selection_policy="hops",
    )
    latency_result = run_fig4(
        environment=env, workload_override=workload_config, k_values=(5,)
    )
    hop_mean = result.rtts_by_k[5].mean()
    latency_mean = latency_result.rtts_by_k[5].mean()
    print(f"\nreplica choice: latency {latency_mean:.1f} ms vs hops {hop_mean:.1f} ms")
    assert hop_mean >= latency_mean - 1e-9
    assert hop_mean < 2.0 * latency_mean


def test_fig4_local_replica_ablation(benchmark, env, workload_config):
    """Ablation (§III-C): disable the attachment-AS local copy."""
    without = once(
        benchmark,
        run_fig4,
        environment=env,
        workload_override=workload_config,
        k_values=(5,),
        local_replica=False,
    )
    with_local = run_fig4(
        environment=env, workload_override=workload_config, k_values=(5,)
    )
    print(
        f"\nlocal replica: on {with_local.rtts_by_k[5].mean():.1f} ms, "
        f"off {without.rtts_by_k[5].mean():.1f} ms"
    )
    assert with_local.rtts_by_k[5].mean() <= without.rtts_by_k[5].mean() + 1e-9
