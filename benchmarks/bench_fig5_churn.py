"""E3 — Figure 5: impact of BGP churn on query response times (K = 5).

Paper shape: 5% lookup failures barely move the median (40.5 → 41.3 ms)
but stretch the 95th percentile (86.1 → 129.1 ms).  Churn is a tail
phenomenon — most queries hit their first replica; the unlucky ones pay
extra round trips.
"""

from repro.experiments.fig5_churn import run_fig5

from .conftest import once


def test_fig5_churn_impact(benchmark, env, workload_config):
    result = once(
        benchmark, run_fig5, environment=env, workload_override=workload_config
    )
    print()
    print(result.render())

    s = result.summaries()
    clean, mid, heavy = s[0.0], s[0.05], s[0.10]

    # Monotone degradation with failure rate.
    assert clean.mean <= mid.mean <= heavy.mean
    assert clean.p95 <= mid.p95 <= heavy.p95

    # The tail moves much more than the median (the Fig. 5 signature).
    median_shift = heavy.median - clean.median
    tail_shift = heavy.p95 - clean.p95
    assert tail_shift > 2 * max(median_shift, 0.1)

    # Median stays within a few ms of the clean run even at 10% (paper:
    # +0.8 ms at 5%).
    assert mid.median - clean.median < 0.25 * clean.median
