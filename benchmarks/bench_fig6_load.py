"""E4 — Figure 6: Normalized Load Ratio per AS (storage balance), K = 5.

Paper shapes: the NLR CDF tightens around 1 as the GUID population grows
(10^5 → 10^7); at the largest population 93% of ASs fall within
[0.4, 1.6]; the median sits slightly above 1 because deputy-AS spillover
from IP holes adds load beyond the proportional share.
"""

import numpy as np

from repro.experiments.fig6_load import run_fig6

from .conftest import once


def test_fig6_storage_balance(benchmark, env):
    result = once(benchmark, run_fig6, environment=env)
    print()
    print(result.render())

    sizes = sorted(result.nlr_by_n)
    small, large = result.nlr_by_n[sizes[0]], result.nlr_by_n[sizes[-1]]

    # The CDF sharpens around 1 with scale: larger population → larger
    # fraction of ASs close to ideal.
    frac_small = float(((small >= 0.4) & (small <= 1.6)).mean())
    frac_large = float(((large >= 0.4) & (large <= 1.6)).mean())
    assert frac_large > frac_small

    # Median near 1 at the largest population.
    median_large = float(np.median(large))
    assert 0.7 < median_large < 1.4

    # Spread shrinks with scale (interquartile range contracts).
    iqr_small = np.percentile(small, 75) - np.percentile(small, 25)
    iqr_large = np.percentile(large, 75) - np.percentile(large, 25)
    assert iqr_large < iqr_small

    # Deputy fallback stays rare (drives only a slight median excess).
    assert all(f < 0.005 for f in result.deputy_fraction_by_n.values())
