"""E5 — Figure 7: analytical response-time upper bound vs K.

Paper shapes: every scenario's bound decreases in K with diminishing
returns beyond a few replicas; flatter future-Internet topologies give
uniformly lower bounds; all curves live in the ~40-100 ms band with
c0 = 10.6, c1 = 8.3.
"""

import numpy as np

from repro.experiments.fig7_analytical import run_fig7

from .conftest import once


def test_fig7_analytical_bound(benchmark):
    result = once(benchmark, run_fig7)
    print()
    print(result.render())

    names = list(result.bounds_by_scenario)
    present = result.bounds_by_scenario[names[0]]
    medium = result.bounds_by_scenario[names[1]]
    long_term = result.bounds_by_scenario[names[2]]

    # Decreasing in K, for every scenario.
    for curve in (present, medium, long_term):
        assert (np.diff(curve) <= 1e-9).all()

    # Topology-evolution ordering at every K.
    assert (present > medium).all()
    assert (medium > long_term).all()

    # Diminishing returns: the first 4 extra replicas buy more than the
    # last 10 (paper: "increasing the replica number results in
    # diminishing returns beyond a few replicas").
    for name in names:
        assert result.diminishing_returns_ratio(name) < 0.5

    # Fig. 7's magnitude band.
    for curve in (present, medium, long_term):
        assert curve.min() > 35.0 and curve.max() < 105.0
