"""E7 — §III-B: IP-hole rehash probabilities and the M parameter.

Paper claim: at a ~55% announcement ratio the probability of exhausting
M = 10 rehashes is (1 - ratio)^10 ≈ 0.034%, so deputy-AS fallback is rare.
The bench sweeps M and checks measured deputy fractions against the
geometric model.
"""

import pytest

from repro.experiments.rehash_probe import run_rehash_probe

from .conftest import once


def test_rehash_hole_probabilities(benchmark, env):
    result = once(benchmark, run_rehash_probe, environment=env, n_samples=200_000)
    print()
    print(result.render())

    # Announcement ratio close to the configured 52%.
    assert result.announcement_ratio == pytest.approx(0.52, abs=0.02)

    # Measured deputy fraction tracks (1 - ratio)^M at every M.
    for m, measured in result.deputy_fraction_by_m.items():
        analytic = result.analytic_by_m[m]
        assert measured == pytest.approx(analytic, abs=max(0.003, 0.3 * analytic))

    # At M = 10 the fallback is rare (paper: 0.034% at 55% coverage;
    # slightly higher here at 52%).
    assert result.deputy_fraction_by_m[10] < 0.005

    # Mean attempts ≈ 1 / ratio (geometric distribution mean).
    assert result.mean_attempts == pytest.approx(
        1.0 / result.announcement_ratio, rel=0.05
    )
