"""E6 — §IV-A: storage and update-traffic overhead arithmetic.

Paper numbers: 352-bit entries; 173 Mbit/AS storage (their AS-count
denominator); ~10 Gb/s worldwide update traffic for 5 billion hosts at
100 updates/day — "a minute fraction" of total Internet traffic.
"""

import pytest

from repro.experiments.storage_overhead import run_storage_overhead

from .conftest import once


def test_storage_and_traffic_overhead(benchmark, env):
    result = once(benchmark, run_storage_overhead, environment=env)
    print()
    print(result.render())

    assert result.analytic["entry_bits"] == 352
    assert result.analytic_paper_denominator_mbits == pytest.approx(173, rel=0.01)
    assert result.analytic["update_traffic_gbps"] == pytest.approx(10.2, abs=0.2)
    assert result.analytic["traffic_fraction_of_internet"] < 1e-6
    # The simulated insert batch stores exactly the modelled entry size.
    assert result.measured_mean_entry_bits == pytest.approx(352)
    assert result.measured_mean_entries_per_as > 0
