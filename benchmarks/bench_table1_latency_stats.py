"""E2 — Table I: mean / median / 95th-percentile latency for K = 1 and 5.

Paper row targets (ms): K=1 → 74.5 / 57.1 / 172.8; K=5 → 49.1 / 40.5 / 86.1.
Absolute values depend on the synthetic latency calibration; the checks
assert the relational structure (every statistic improves with K, the
tail improves the most) and that values sit in the right order of
magnitude (tens of milliseconds, not seconds).
"""

from repro.experiments.table1_stats import PAPER_TABLE1, run_table1

from .conftest import once


def test_table1_latency_stats(benchmark, env):
    result = once(benchmark, run_table1, environment=env)
    print()
    print(result.render())

    k1, k5 = result.measured[1], result.measured[5]
    # All three statistics improve with replication.
    assert k1.mean > k5.mean
    assert k1.median >= k5.median * 0.999
    assert k1.p95 > k5.p95
    # The tail contracts meaningfully (paper: ~2x at 26k ASs; the factor
    # shrinks with graph size, so assert a clear improvement here).
    assert k1.p95 / k5.p95 > 1.15
    # Same regime as the paper: milliseconds to low hundreds of ms.
    for summary in (k1, k5):
        assert 5.0 < summary.median < 500.0
        assert summary.p95 < 2000.0
    # Paper numbers present for reference in the rendering.
    assert PAPER_TABLE1[5] == (49.1, 40.5, 86.1)
