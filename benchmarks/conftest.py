"""Shared benchmark fixtures.

Benchmarks default to the ``small`` scale so the whole harness finishes in
minutes; set ``REPRO_SCALE=medium`` or ``REPRO_SCALE=paper`` to run closer
to the paper's configuration (26,424 ASs / 10^5 GUIDs / 10^6 lookups).

Each bench both *times* the experiment (pytest-benchmark) and *checks the
paper's shape claims* on the result, so a green benchmark run doubles as
a reproduction report.  The rendered tables are printed; run with ``-s``
to see them.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import Environment, resolve_scale
from repro.workload.generator import WorkloadConfig


def pytest_report_header(config):
    scale = resolve_scale(os.environ.get("REPRO_SCALE"))
    return f"repro-dmap benchmarks at scale={scale.name} (n_as={scale.n_as})"


@pytest.fixture(scope="session")
def env():
    """The benchmark substrate (cached on disk across sessions)."""
    return Environment(resolve_scale(os.environ.get("REPRO_SCALE")), seed=0)


@pytest.fixture(scope="session")
def workload_config(env):
    """Workload sized to the chosen scale."""
    return WorkloadConfig(
        n_guids=env.scale.n_guids, n_lookups=env.scale.n_lookups, seed=0
    )


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
