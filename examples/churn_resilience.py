#!/usr/bin/env python
"""Surviving a BGP churn storm (§III-D.1 protocols in action).

Subjects a populated DMap deployment to a burst of prefix withdrawals and
re-announcements, running the paper's consistency protocols after each
event:

* withdrawal → the withdrawing AS migrates affected mappings to the
  deputy AS the IP-hole protocol now selects;
* announcement → captured mappings migrate (lazily) to the announcing AS
  on their first missing query.

After every event the example audits that (a) every GUID still resolves
and (b) placement converges back to what the hash functions dictate.
It then quantifies the *query-visible* cost of stale BGP views at the
Fig. 5 failure rates.

Run: ``python examples/churn_resilience.py``
"""

from __future__ import annotations

import numpy as np

from repro.bgp import (
    AllocationConfig,
    Announcement,
    ChurnKind,
    ChurnScheduleGenerator,
    generate_global_prefix_table,
)
from repro.core import (
    DMapResolver,
    GUID,
    audit_placement,
    handle_new_announcement,
    prepare_withdrawal,
    repair_mapping,
)
from repro.errors import LookupFailedError
from repro.sim import ChurnFailureModel
from repro.topology import Router, generate_internet_topology, small_scale_config

N_HOSTS = 150
CHURN_HORIZON = 60.0  # simulated seconds of schedule


def main() -> None:
    print("=== BGP churn storm over a live DMap deployment ===\n")

    topology = generate_internet_topology(small_scale_config(n_as=300), seed=5)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=6), seed=5
    )
    router = Router(topology)
    resolver = DMapResolver(table, router, k=5)
    rng = np.random.default_rng(9)
    asns = topology.asns()

    guids = []
    for i in range(N_HOSTS):
        guid = GUID.from_name(f"host-{i}")
        home = int(rng.choice(asns))
        resolver.insert(guid, [table.representative_address(home)], home)
        guids.append(guid)
    print(f"populated {N_HOSTS} hosts → {resolver.total_entries()} replica copies\n")

    # --- Targeted event: withdraw a prefix that provably hosts replicas,
    # so the §III-D.1 migration is visible (random churn mostly hits
    # small prefixes hosting nothing at this scale).
    target_prefix = None
    for guid, replica_set in resolver.replica_sets.items():
        for res in replica_set.global_replicas:
            for prefix in table.prefixes_of(res.asn):
                if prefix.contains(res.address):
                    target_prefix = prefix
                    break
            if target_prefix:
                break
        if target_prefix:
            break
    original_owner = table.resolve(target_prefix.base).asn
    moved = prepare_withdrawal(resolver, target_prefix)
    print(
        f"targeted withdrawal of {target_prefix} (AS{original_owner}): "
        f"migrated {moved} replica copies to deputy ASs"
    )
    handle_new_announcement(
        resolver, Announcement(target_prefix, original_owner), eager=True
    )
    print(f"re-announcement pulled the mappings back; audit: {audit_placement(resolver)}\n")

    # --- Random churn storm.
    churn = ChurnScheduleGenerator(table, announce_rate=0.4, withdraw_rate=0.4, seed=6)
    withdrawals = announcements = migrations = 0
    for event in churn.events(horizon=CHURN_HORIZON):
        if event.kind is ChurnKind.WITHDRAW:
            migrations += prepare_withdrawal(resolver, event.announcement.prefix)
            withdrawals += 1
        else:
            handle_new_announcement(resolver, event.announcement, eager=False)
            announcements += 1

    print(f"churn applied: {withdrawals} withdrawals, {announcements} announcements")
    print(f"  withdrawal protocol migrated {migrations} replica copies")

    audit = audit_placement(resolver)
    print(f"  audit after storm: {audit}")
    assert audit["missing"] == 0, "withdrawal protocol must never lose a copy"

    # Every GUID still resolves (replicas elsewhere cover lazy gaps).
    worst = 0.0
    for guid in guids:
        result = resolver.lookup(guid, int(rng.choice(asns)))
        worst = max(worst, result.rtt_ms)
    print(f"  all {N_HOSTS} GUIDs resolvable; worst lookup {worst:.1f} ms")

    # Lazy first-miss migration converges placement.
    repaired = sum(repair_mapping(resolver, guid) for guid in guids)
    audit = audit_placement(resolver)
    print(f"  lazy repair moved {repaired} copies; final audit: {audit}\n")
    assert audit["mislocated"] == 0

    # Query-visible cost of stale views (the Fig. 5 knob).
    print("query cost under stale BGP views (Fig. 5 failure model):")
    querier_pool = [int(rng.choice(asns)) for _ in range(600)]
    def lookup_with_retry(guid, src, probe):
        # §III-D.2: on total failure the querier "keeps checking",
        # carrying the time already spent into the final response time.
        carried = 0.0
        while True:
            try:
                return resolver.lookup(guid, src, probe=probe).rtt_ms + carried
            except LookupFailedError as exc:
                carried += exc.elapsed_ms

    for rate in (0.0, 0.05, 0.10):
        model = ChurnFailureModel(rate, seed=13)
        probe = model.lookup_outcome if rate else None
        rtts = [
            lookup_with_retry(guids[i % N_HOSTS], src, probe)
            for i, src in enumerate(querier_pool)
        ]
        arr = np.asarray(rtts)
        print(
            f"  {rate:4.0%} failures: median {np.median(arr):6.1f} ms   "
            f"p95 {np.percentile(arr, 95):6.1f} ms"
        )
    print(
        "\nThe median barely moves while the tail stretches — churn is a "
        "tail phenomenon, exactly Fig. 5's shape."
    )


if __name__ == "__main__":
    main()
