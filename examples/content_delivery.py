#!/usr/bin/env python
"""Named content retrieval over DMap (the paper's Fig. 1 "VideoB" case).

GUIDs "need not be tied to a particular device": a piece of content gets a
GUID mapped to the network addresses of every replica server hosting it
(multiple simultaneous locators, like the multi-homed device of Fig. 1).
Clients across the world resolve the content GUID — Mandelbrot-Zipf
popular content dominates the query stream — and fetch from the locator
whose AS is closest.

The example measures how K (mapping replication) and content-server count
independently cut the end-to-end "time to first byte" (resolution RTT +
one-way fetch path setup).

Run: ``python examples/content_delivery.py``
"""

from __future__ import annotations

import numpy as np

from repro.bgp import AllocationConfig, generate_global_prefix_table
from repro.core import DMapResolver, GUID
from repro.topology import Router, generate_internet_topology, small_scale_config
from repro.workload import MandelbrotZipf, SourceSampler

N_CONTENT = 200
N_REQUESTS = 4000


def main() -> None:
    print("=== content delivery over DMap ===\n")

    topology = generate_internet_topology(small_scale_config(n_as=400), seed=23)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=6), seed=23
    )
    router = Router(topology)
    rng = np.random.default_rng(3)
    asns = np.asarray(topology.asns())

    popularity = MandelbrotZipf(N_CONTENT)  # paper Eq. 1, alpha=1.02 q=100
    clients = SourceSampler(topology, rng)

    for n_servers, k in [(1, 1), (1, 5), (3, 5), (5, 5)]:
        resolver = DMapResolver(table, router, k=k)

        # Publish every content item from n_servers replica servers; the
        # mapping carries one locator per server (≤5, §IV-A).
        server_asns = {}
        for rank in range(1, N_CONTENT + 1):
            guid = GUID.from_name(f"video-{rank}")
            servers = [int(a) for a in rng.choice(asns, size=n_servers, replace=False)]
            locators = [table.representative_address(a) for a in servers]
            resolver.insert(guid, locators, servers[0])
            server_asns[guid] = servers

        # Popularity-weighted request stream from population-weighted ASs.
        ranks = popularity.sample_ranks(N_REQUESTS, rng)
        sources = clients.sample(N_REQUESTS)
        ttfb = []
        for rank, src in zip(ranks.tolist(), sources.tolist()):
            guid = GUID.from_name(f"video-{rank}")
            src = int(src)
            result = resolver.lookup(guid, src)
            # Client picks the closest content server among the locators.
            fetch_setup = min(
                router.one_way_ms(src, a) for a in server_asns[guid]
            )
            ttfb.append(result.rtt_ms + fetch_setup)

        arr = np.asarray(ttfb)
        print(
            f"servers={n_servers}  K={k}:  time-to-first-byte "
            f"mean {arr.mean():6.1f} ms   median {np.median(arr):6.1f} ms   "
            f"p95 {np.percentile(arr, 95):6.1f} ms"
        )

    print(
        "\nBoth knobs help independently: K cuts the resolution term "
        "(closest mapping replica), server count cuts the fetch term "
        "(closest content replica)."
    )


if __name__ == "__main__":
    main()
