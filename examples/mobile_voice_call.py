#!/usr/bin/env python
"""The paper's §I motivating scenario: a voice call to a fast-moving host.

"A voice call may last 30 minutes, but a mobile device in a vehicle may
change its network attachment points many times during this period."

A vehicular phone moves between adjacent access networks while a remote
caller re-resolves its GUID before each talk segment.  The example
measures, across the whole call:

* DMap resolution latency at every handoff (must stay ~tens of ms — the
  3GPP handoff budget the paper cites is ~100 ms);
* the MobileIP alternative: every binding query detours via the home
  agent, and tunnelled data pays triangle-routing stretch.

Run: ``python examples/mobile_voice_call.py``
"""

from __future__ import annotations

import numpy as np

from repro.baselines import MobileIP
from repro.bgp import AllocationConfig, generate_global_prefix_table
from repro.core import DMapResolver, GUID
from repro.topology import Router, generate_internet_topology, small_scale_config
from repro.workload import MobilityModel

CALL_MINUTES = 30.0


def main() -> None:
    print("=== 30-minute voice call to a vehicular host ===\n")

    topology = generate_internet_topology(small_scale_config(n_as=400), seed=11)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=6), seed=11
    )
    router = Router(topology)
    rng = np.random.default_rng(1)
    asns = topology.asns()

    phone = GUID.from_name("imsi-310150-vehicle-42")
    caller_asn = int(rng.choice(asns))
    home_asn = int(rng.choice(asns))

    # Vehicular mobility: ~12 handoffs/hour between neighbouring networks.
    mobility = MobilityModel(
        topology, updates_per_day=12 * 24, regime="neighborhood", seed=2
    )
    moves = mobility.moves_for_host(
        phone, home_asn, horizon_ms=CALL_MINUTES * 60_000.0
    )
    print(
        f"caller in AS{caller_asn}; phone starts in AS{home_asn} and "
        f"hands off {len(moves)} times during the call\n"
    )

    dmap = DMapResolver(table, router, k=5)
    mobileip = MobileIP(router)

    first_locator = table.representative_address(home_asn)
    dmap.insert(phone, [first_locator], home_asn)
    mobileip.insert(phone, [first_locator], home_asn)

    dmap_latencies, mip_latencies, stretches, update_latencies = [], [], [], []
    attachment = home_asn
    for move in moves:
        attachment = move.to_asn
        locator = table.representative_address(attachment)
        write = dmap.update(phone, [locator], attachment)
        update_latencies.append(write.rtt_ms)
        mobileip.insert(phone, [locator], attachment)

        # The caller re-resolves after each handoff.
        dmap_result = dmap.lookup(phone, caller_asn)
        assert dmap_result.locators == (locator,), "stale binding!"
        dmap_latencies.append(dmap_result.rtt_ms)
        mip_latencies.append(mobileip.lookup(phone, caller_asn).rtt_ms)
        stretches.append(mobileip.triangle_stretch(phone, caller_asn))

    def stats(values):
        arr = np.asarray(values)
        return f"mean {arr.mean():6.1f}  median {np.median(arr):6.1f}  p95 {np.percentile(arr, 95):6.1f}"

    print("per-handoff results (ms):")
    print(f"  DMap    resolution : {stats(dmap_latencies)}")
    print(f"  MobileIP home query: {stats(mip_latencies)}")
    print(f"  DMap binding update: {stats(update_latencies)}")
    print(
        f"\nMobileIP tunnelling stretch (data-plane detour vs direct): "
        f"mean {np.mean(stretches):.2f}x, worst {np.max(stretches):.2f}x"
    )
    budget_ok = np.percentile(dmap_latencies, 95) < 150.0
    print(
        f"\nDMap p95 resolution {'fits' if budget_ok else 'MISSES'} the "
        f"~100-150 ms voice-handoff budget the paper cites (§IV-B.2a)."
    )


if __name__ == "__main__":
    main()
