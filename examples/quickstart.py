#!/usr/bin/env python
"""Quickstart: stand up a DMap universe and resolve some identifiers.

Builds a small synthetic Internet (AS topology + BGP prefix table), starts
a DMap resolver with K = 5 replicas, and walks through the core protocol:

1. a host inserts its GUID→NA mapping;
2. anyone resolves the GUID in a single overlay hop;
3. the host moves (new attachment AS) and updates its binding;
4. resolvers immediately see the new locator.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro.bgp import AllocationConfig, generate_global_prefix_table
from repro.core import DMapResolver, GUID
from repro.topology import Router, generate_internet_topology, small_scale_config


def main() -> None:
    print("=== DMap quickstart ===\n")

    # --- Substrate: a 300-AS synthetic Internet -----------------------
    print("building a 300-AS topology and its BGP prefix table ...")
    topology = generate_internet_topology(small_scale_config(n_as=300), seed=42)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=6), seed=42
    )
    router = Router(topology)
    print(
        f"  {len(topology)} ASs, {topology.n_links()} links, "
        f"{len(table)} prefixes covering "
        f"{table.announcement_ratio():.0%} of the address space\n"
    )

    # --- The resolver: K = 5 hash functions, local replica on ---------
    resolver = DMapResolver(table, router, k=5)
    rng = np.random.default_rng(7)
    asns = topology.asns()

    # --- 1. Insert ------------------------------------------------------
    phone = GUID.from_name("my-phone")  # flat, self-certifying identifier
    home = int(rng.choice(asns))
    locator = table.representative_address(home)
    write = resolver.insert(phone, [locator], source_asn=home)
    print(f"inserted {phone} while attached to AS{home}")
    print(f"  replicas stored at ASs {sorted(set(write.replica_set.global_asns))}")
    print(f"  globally visible after {write.rtt_ms:.1f} ms (max of K parallel writes)\n")

    # --- 2. Lookup from anywhere ----------------------------------------
    querier = int(rng.choice(asns))
    result = resolver.lookup(phone, source_asn=querier)
    print(f"AS{querier} resolved {phone}:")
    print(f"  locator {result.locators[0]} via AS{result.served_by}")
    print(f"  round trip {result.rtt_ms:.1f} ms, one overlay hop\n")

    # --- 3. The host moves ----------------------------------------------
    new_home = int(rng.choice(asns))
    new_locator = table.representative_address(new_home)
    update = resolver.update(phone, [new_locator], source_asn=new_home)
    print(f"host moved to AS{new_home}; binding updated in {update.rtt_ms:.1f} ms")

    # --- 4. Resolvers see the move immediately --------------------------
    result = resolver.lookup(phone, source_asn=querier)
    assert result.locators == (new_locator,)
    print(
        f"AS{querier} now resolves to {result.locators[0]} "
        f"(version {result.entry.version}) in {result.rtt_ms:.1f} ms\n"
    )

    # --- Bonus: what does the load look like? ---------------------------
    load = resolver.storage_load()
    print(f"{resolver.total_entries()} replica copies spread over {len(load)} ASs")
    print("done.")


if __name__ == "__main__":
    main()
