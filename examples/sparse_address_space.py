#!/usr/bin/env python
"""Extending DMap to sparse (IPv6-like) address spaces (§III-B, Fig. 3).

In a 128-bit space almost every hashed value is a hole, so the rehash
loop of Algorithm 1 would essentially never terminate.  The paper's
answer is two-level bucketing: hash the GUID once to a bucket, once more
to a segment inside the bucket — every router derives the identical
layout from the announced-segment list alone.

This example contrasts the two regimes:

1. IPv4-style space at 52% coverage → rehashing converges in ~2 tries;
2. a 64-bit space at ~10^-12 coverage → rehashing is hopeless, bucketing
   resolves every GUID deterministically and balances load.

Run: ``python examples/sparse_address_space.py``
"""

from __future__ import annotations

import numpy as np

from repro.bgp import (
    AllocationConfig,
    Announcement,
    Prefix,
    generate_global_prefix_table,
)
from repro.core import GUID
from repro.hashing import BucketIndex, GuidPlacer, Sha256Hasher, hole_probability


def dense_ipv4_demo() -> None:
    print("--- dense space (IPv4-style, 52% announced) ---")
    table = generate_global_prefix_table(
        list(range(1, 201)), AllocationConfig(prefixes_per_as=6), seed=1
    )
    placer = GuidPlacer(Sha256Hasher(5), table, max_rehashes=10)
    attempts, deputies = [], 0
    for i in range(500):
        for res in placer.resolve_all(GUID.from_name(f"g{i}")):
            attempts.append(res.attempts)
            deputies += res.via_deputy
    ratio = table.announcement_ratio()
    print(f"  announcement ratio  : {ratio:.1%}")
    print(f"  mean hash attempts  : {np.mean(attempts):.2f} (analytic {1/ratio:.2f})")
    print(
        f"  deputy fallbacks    : {deputies}/{len(attempts)} "
        f"(analytic P = {hole_probability(ratio, 10):.5%})\n"
    )


def sparse_bucketing_demo() -> None:
    print("--- sparse space (64-bit, bucketing scheme) ---")
    # 500 announced /32 segments in a 64-bit space: coverage ~ 500 * 2^32
    # / 2^64 = 1.1e-7 — rehashing would need ~10 million tries per GUID.
    rng = np.random.default_rng(2)
    segments = []
    for asn in range(1, 501):
        base = int(rng.integers(0, 1 << 32)) << 32
        segments.append(Announcement(Prefix(base, 32, bits=64), asn))
    coverage = sum(s.prefix.span for s in segments) / float(1 << 64)
    print(f"  announced coverage  : {coverage:.2e} of the 64-bit space")
    print(
        f"  P(10 rehashes all miss): {hole_probability(coverage, 10):.6f} "
        "(rehashing cannot work here)"
    )

    index = BucketIndex(segments, n_buckets=1 << 14, k=5)
    print(
        f"  bucket index        : N = {index.n_buckets} buckets, "
        f"S = {index.max_segments_per_bucket} max segments/bucket "
        f"('N large so S stays small')"
    )

    # Every GUID resolves, deterministically, to K segments.
    guids = [GUID.from_name(f"sparse-{i}") for i in range(2000)]
    loads = index.load_by_asn(guids)
    counts = np.asarray(sorted(loads.values()))
    print(
        f"  resolved {len(guids)} GUIDs x 5 replicas over {len(loads)} ASs; "
        f"load per AS: median {np.median(counts):.0f}, max {counts.max()}"
    )

    # Two independently-built routers agree on every placement.
    other = BucketIndex(list(reversed(segments)), n_buckets=1 << 14, k=5)
    agree = all(
        index.hosting_asns(g) == other.hosting_asns(g) for g in guids[:200]
    )
    print(f"  independent routers derive identical placements: {agree}")


def main() -> None:
    print("=== DMap beyond IPv4: the IP-hole problem at two densities ===\n")
    dense_ipv4_demo()
    sparse_bucketing_demo()


if __name__ == "__main__":
    main()
