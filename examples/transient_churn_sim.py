#!/usr/bin/env python
"""Transient effects of BGP updates, in virtual time (§VII future work).

The paper's Fig. 5 models churn statically (a per-lookup failure rate).
This example uses the discrete-event engine to watch a *live* prefix flap:

* t = 0 s     hosts insert their mappings;
* t = 60 s    a replica-hosting prefix is withdrawn — the withdrawing AS
              ships affected mappings to their new deputy ASs (§III-D.1);
* t = 120 s   the prefix is re-announced — mappings migrate back lazily,
              pulled over by the first query that misses;
* throughout  a probe query stream measures the response time of one
              affected GUID, exposing the transient windows.

Run: ``python examples/transient_churn_sim.py``
"""

from __future__ import annotations

import numpy as np

from repro.bgp import AllocationConfig, Announcement, generate_global_prefix_table
from repro.core import GUID
from repro.sim import DMapSimulation
from repro.topology import Router, generate_internet_topology, small_scale_config


def main() -> None:
    print("=== live prefix flap inside the event simulation ===\n")

    topology = generate_internet_topology(small_scale_config(n_as=300), seed=8)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=6), seed=8
    )
    router = Router(topology)
    sim = DMapSimulation(topology, table, k=5, router=router, seed=8)
    rng = np.random.default_rng(2)
    asns = topology.asns()

    # Populate hosts.
    guids = []
    for i in range(60):
        guid = GUID.from_name(f"host-{i}")
        home = int(rng.choice(asns))
        sim.schedule_insert(guid, [table.representative_address(home)], home, at=0.0)
        guids.append(guid)
    sim.run(until=10_000.0)  # let inserts settle

    # Pick a GUID with a replica hosted inside some announced prefix.
    target_guid = target_prefix = None
    for guid in guids:
        for res in sim.placer.resolve_all(guid):
            for prefix in table.prefixes_of(res.asn):
                if prefix.contains(res.address):
                    target_guid, target_prefix = guid, prefix
                    break
            if target_prefix:
                break
        if target_prefix:
            break
    owner = table.resolve(target_prefix.base).asn
    print(f"watching {target_guid}")
    print(f"flapping prefix {target_prefix} (AS{owner})\n")

    # Schedule the flap and a probe stream from a querier whose *best*
    # replica is the one being flapped — that querier actually feels the
    # transient (others silently use their own closest replica).
    sim.schedule_withdrawal(target_prefix, at=60_000.0)
    sim.schedule_announcement(Announcement(target_prefix, owner), at=120_000.0)
    candidates = sim.placer.hosting_asns(target_guid)
    querier = None
    for asn in (int(a) for a in rng.permutation(asns)):
        if sim.selector.order_candidates(asn, candidates)[0] == owner:
            querier = asn
            break
    assert querier is not None, "no AS prefers the flapped replica"
    probe_times = np.arange(15_000.0, 200_000.0, 5_000.0)
    for at in probe_times:
        sim.schedule_lookup(target_guid, querier, at=float(at))
    sim.run()

    print(f"probe stream from AS{querier} (5 s apart):")
    print("   t [s]   rtt [ms]  attempts  note")
    for record in sorted(sim.metrics.records, key=lambda r: r.issued_at):
        note = ""
        if 60_000.0 <= record.issued_at < 120_000.0:
            note = "withdrawn window"
        elif record.issued_at >= 120_000.0:
            note = "re-announced"
        print(
            f"  {record.issued_at/1000:6.0f}   {record.rtt_ms:8.1f}  "
            f"{record.attempts:8d}  {note}"
        )

    print(f"\nprotocol migrations executed: {sim.migrations}")
    print(f"failed queries: {len(sim.metrics.failed)} (replication + migration "
          "keep the GUID resolvable through the whole flap)")


if __name__ == "__main__":
    main()
