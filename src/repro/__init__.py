"""Reproduction of "DMap: A Shared Hosting Scheme for Dynamic Identifier
to Locator Mappings in the Global Internet" (Vu et al., ICDCS 2012).

DMap stores GUID→NA mappings inside the routing substrate: K consistent
hash functions map a flat identifier directly to K network addresses, and
the ASs announcing those addresses (per the global BGP table) host the
replicas — a single overlay hop, no DHT maintenance state.

See :mod:`repro.experiments` for drivers that regenerate every table and
figure in the paper's evaluation, and ``examples/quickstart.py`` for a
guided tour of the public API.
"""

from . import bgp, core, hashing
from .errors import DMapError
from .service import DMapNetwork
from .version import __version__

__all__ = ["bgp", "core", "hashing", "DMapNetwork", "DMapError", "__version__"]
