"""Closed-form analysis: §V response-time bound and §IV-A overheads."""

from .jellyfish_model import (
    AnalyticalModel,
    PAPER_C0,
    PAPER_C1,
    expected_min_distance_bound,
    fit_constants,
    p_jl,
    q_l,
    response_time_upper_bound_ms,
)
from .overhead import (
    OverheadModel,
    PAPER_INTERNET_TRAFFIC_GBPS,
    PAPER_K,
    PAPER_N_GUIDS,
    entry_size_bits,
)
from .scenarios import (
    LONG_TERM_RATIOS,
    MEDIUM_TERM_RATIOS,
    PRESENT_DAY_RATIOS,
    SCENARIO_NODE_COUNTS,
    all_scenarios,
    long_term_model,
    medium_term_model,
    present_day_model,
)

__all__ = [
    "AnalyticalModel",
    "PAPER_C0",
    "PAPER_C1",
    "expected_min_distance_bound",
    "fit_constants",
    "p_jl",
    "q_l",
    "response_time_upper_bound_ms",
    "OverheadModel",
    "PAPER_INTERNET_TRAFFIC_GBPS",
    "PAPER_K",
    "PAPER_N_GUIDS",
    "entry_size_bits",
    "LONG_TERM_RATIOS",
    "MEDIUM_TERM_RATIOS",
    "PRESENT_DAY_RATIOS",
    "SCENARIO_NODE_COUNTS",
    "all_scenarios",
    "long_term_model",
    "medium_term_model",
    "present_day_model",
]
