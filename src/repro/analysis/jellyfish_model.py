"""Analytical upper bound on query response time (§V).

Given the Jellyfish layer ratios ``r_j`` (fraction of PoPs in Layer(j),
j = 0..N-1) and K replicas placed uniformly at random, the paper bounds
the expected distance from a random source to its closest replica:

*  ``P(d(s, t_i) > l | s in Layer(j)) <= p_{j,l}`` where
   ``p_{j,l} = r_{l-j} + r_{l+1-j} + ...`` (indices outside [0, N-1]
   contribute 0; when ``l - j <= 0`` the sum saturates at 1);
*  the K destinations are independent, so
   ``P(min_i d(s, t_i) <= l) > q_l`` with
   ``q_l = sum_j r_j * (1 - p_{j,l}^K)``;
*  since the graph diameter is at most ``2N - 1``,
   ``E[min_i d(s, t_i)] < sum_{l=1}^{2N-1} (1 - q_l)``;
*  assuming response time is affine in PoP path length,
   ``E[tau] < c0 * E[min d] + c1`` with the paper's least-squares fit
   ``c0, c1 = 10.6, 8.3`` (ms per hop, ms).

The bound ignores intra-layer peering links, so "actual values ... will
typically be smaller" (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

#: The paper's measured least-squares constants (§V-C).
PAPER_C0 = 10.6
PAPER_C1 = 8.3


def _validate_ratios(ratios: Sequence[float]) -> np.ndarray:
    r = np.asarray(list(ratios), dtype=float)
    if r.ndim != 1 or r.size == 0:
        raise ConfigurationError("layer ratios must be a non-empty 1-D sequence")
    if (r < 0).any():
        raise ConfigurationError("layer ratios must be non-negative")
    total = r.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ConfigurationError(f"layer ratios must sum to 1 (got {total:.6f})")
    return r


def p_jl(ratios: Sequence[float], j: int, l: int) -> float:
    """``p_{j,l}``: bound on ``P(d(s, t) > l | s in Layer(j))``.

    The tail mass of layers ``l - j`` and beyond; saturates at 1 when the
    window covers every layer.
    """
    r = _validate_ratios(ratios)
    n = r.size
    if not 0 <= j < n:
        raise ConfigurationError(f"layer index {j} out of range [0, {n})")
    start = l - j
    if start <= 0:
        return 1.0
    if start >= n:
        return 0.0
    return float(r[start:].sum())


def q_l(ratios: Sequence[float], l: int, k: int) -> float:
    """``q_l``: lower bound on ``P(min_i d(s, t_i) <= l)`` over K replicas."""
    r = _validate_ratios(ratios)
    if k < 1:
        raise ConfigurationError("K must be >= 1")
    total = 0.0
    for j in range(r.size):
        total += r[j] * (1.0 - p_jl(r, j, l) ** k)
    return float(total)


def expected_min_distance_bound(ratios: Sequence[float], k: int) -> float:
    """Upper bound on ``E[min_i d(s, t_i)]`` (Eq. just before Eq. 3)."""
    r = _validate_ratios(ratios)
    n = r.size
    bound = 0.0
    for l in range(1, 2 * n):
        bound += 1.0 - q_l(r, l, k)
    return bound


def response_time_upper_bound_ms(
    ratios: Sequence[float],
    k: int,
    c0: float = PAPER_C0,
    c1: float = PAPER_C1,
) -> float:
    """``E[tau] < c0 * E[min d] + c1`` (Eq. 3) — the Fig. 7 quantity."""
    if c0 < 0:
        raise ConfigurationError("c0 must be non-negative")
    return c0 * expected_min_distance_bound(ratios, k) + c1


@dataclass(frozen=True)
class AnalyticalModel:
    """Convenience wrapper binding one topology scenario's ratios."""

    name: str
    ratios: Tuple[float, ...]
    c0: float = PAPER_C0
    c1: float = PAPER_C1

    def __post_init__(self) -> None:
        _validate_ratios(self.ratios)

    @property
    def n_layers(self) -> int:
        return len(self.ratios)

    def bound_ms(self, k: int) -> float:
        """Response-time upper bound for K replicas."""
        return response_time_upper_bound_ms(self.ratios, k, self.c0, self.c1)

    def sweep(self, k_values: Sequence[int]) -> np.ndarray:
        """Bounds over a range of K — one Fig. 7 curve."""
        return np.asarray([self.bound_ms(k) for k in k_values], dtype=float)


def fit_constants(
    distances: Sequence[float], rtts_ms: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares fit of ``(c0, c1)`` from measured (distance, RTT)
    pairs — how the paper obtained 10.6 and 8.3 from its simulation."""
    d = np.asarray(list(distances), dtype=float)
    t = np.asarray(list(rtts_ms), dtype=float)
    if d.size != t.size or d.size < 2:
        raise ConfigurationError("need >= 2 matching (distance, rtt) samples")
    design = np.vstack([d, np.ones_like(d)]).T
    (c0, c1), *_ = np.linalg.lstsq(design, t, rcond=None)
    return float(c0), float(c1)
