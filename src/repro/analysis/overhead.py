"""Storage and update-traffic overhead model (§IV-A).

The paper's arithmetic, made explicit and parametric:

* a mapping entry is ``160 + 5*32 + 32 = 352`` bits (GUID + 5 locator
  slots + metadata);
* 5 billion GUIDs at replication K = 5, spread proportionally to
  announced address space, cost each AS a modest slice of storage
  (the paper reports 173 Mbit/AS for its AS count);
* 5 billion mobile hosts updating 100 times/day at K = 5 generate about
  10 Gb/s of update traffic worldwide — "a minute fraction" of total
  Internet traffic (~5 * 10^7 Gb/s in 2010).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.guid import ADDRESS_BITS, GUID_BITS, MAX_LOCATORS
from ..core.mapping import METADATA_BITS
from ..errors import ConfigurationError

#: §IV-A baseline assumptions.
PAPER_N_GUIDS = 5_000_000_000
PAPER_K = 5
PAPER_UPDATES_PER_DAY = 100.0
PAPER_INTERNET_TRAFFIC_GBPS = 50e6  # ~50 million Gb/s as of 2010 (§IV-A)


def entry_size_bits(
    guid_bits: int = GUID_BITS,
    max_locators: int = MAX_LOCATORS,
    locator_bits: int = ADDRESS_BITS,
    metadata_bits: int = METADATA_BITS,
) -> int:
    """Size of one mapping entry — 352 bits with paper defaults."""
    if min(guid_bits, max_locators, locator_bits, metadata_bits) < 0:
        raise ConfigurationError("entry size components must be non-negative")
    return guid_bits + max_locators * locator_bits + metadata_bits


@dataclass(frozen=True)
class OverheadModel:
    """Parametric §IV-A overhead calculator.

    Attributes mirror the paper's stated assumptions; override any of
    them to explore growth scenarios ("even if it is multiplied several
    times to include non-mobile devices as well as future growth").
    """

    n_guids: float = PAPER_N_GUIDS
    k: int = PAPER_K
    n_as: int = 26_424
    updates_per_day: float = PAPER_UPDATES_PER_DAY
    entry_bits: int = entry_size_bits()

    def __post_init__(self) -> None:
        if self.n_guids < 0 or self.k < 1 or self.n_as < 1:
            raise ConfigurationError("invalid overhead model parameters")
        if self.updates_per_day < 0 or self.entry_bits <= 0:
            raise ConfigurationError("invalid overhead model parameters")

    # -- storage ---------------------------------------------------------
    def total_storage_bits(self) -> float:
        """All replica copies worldwide."""
        return self.n_guids * self.k * self.entry_bits

    def storage_per_as_bits(self) -> float:
        """Mean per-AS storage under proportional distribution."""
        return self.total_storage_bits() / self.n_as

    def storage_per_as_mbits(self) -> float:
        """Per-AS storage in Mbit (the paper's 173 Mbit headline unit)."""
        return self.storage_per_as_bits() / 1e6

    # -- update traffic ----------------------------------------------------
    def updates_per_second(self) -> float:
        """Worldwide GUID Update rate."""
        return self.n_guids * self.updates_per_day / 86_400.0

    def update_traffic_gbps(self) -> float:
        """Worldwide update traffic: each update fans out to K replicas."""
        return self.updates_per_second() * self.k * self.entry_bits / 1e9

    def traffic_fraction_of_internet(
        self, internet_gbps: float = PAPER_INTERNET_TRAFFIC_GBPS
    ) -> float:
        """Update traffic as a share of total Internet traffic."""
        if internet_gbps <= 0:
            raise ConfigurationError("internet_gbps must be positive")
        return self.update_traffic_gbps() / internet_gbps

    # -- reporting ---------------------------------------------------------
    def report(self) -> Dict[str, float]:
        """All §IV-A quantities in one dict (drives the overhead bench)."""
        return {
            "entry_bits": float(self.entry_bits),
            "n_guids": float(self.n_guids),
            "k": float(self.k),
            "total_storage_tbits": self.total_storage_bits() / 1e12,
            "storage_per_as_mbits": self.storage_per_as_mbits(),
            "updates_per_second": self.updates_per_second(),
            "update_traffic_gbps": self.update_traffic_gbps(),
            "traffic_fraction_of_internet": self.traffic_fraction_of_internet(),
        }
