"""The three Internet-evolution scenarios of §V-C (Fig. 7).

The paper parameterizes its analytical bound with Jellyfish layer ratios
from three topologies:

* **present-day** — the iPlane PoP graph: 193,376 nodes in 8 layers with
  "more than 60% of the nodes residing in layers 3 and 4";
* **medium-term future** (5-10 years) — 20% more nodes, 6 layers (the
  CAIDA-observed flattening trend);
* **long-term future** (25-30 years) — double the nodes, 4 layers.

The exact per-layer ratios are not published; the vectors below are
synthesized to satisfy every stated constraint (layer counts, the 60%
mass in layers 3-4 for the present-day graph, a near-empty core, and
unimodal mass that shifts coreward as the topology flattens).  The Fig. 7
*shape* — bounds falling with K with diminishing returns, and flatter
topologies yielding uniformly lower bounds — is insensitive to the
within-constraint choice, which a sensitivity test in the suite verifies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .jellyfish_model import AnalyticalModel

#: Present-day Internet: 8 layers; layers 3+4 hold 62% of the nodes.
PRESENT_DAY_RATIOS: Tuple[float, ...] = (
    0.0001,
    0.0199,
    0.1400,
    0.3200,
    0.3000,
    0.1400,
    0.0500,
    0.0300,
)

#: Medium-term future (5-10 yr): +20% nodes, flattened to 6 layers.
MEDIUM_TERM_RATIOS: Tuple[float, ...] = (
    0.0001,
    0.0299,
    0.2100,
    0.3800,
    0.2700,
    0.1100,
)

#: Long-term future (25-30 yr): 2x nodes, flattened to 4 layers.
LONG_TERM_RATIOS: Tuple[float, ...] = (
    0.0002,
    0.1198,
    0.5200,
    0.3600,
)

#: Node counts used by the paper for each scenario (informational).
SCENARIO_NODE_COUNTS: Dict[str, int] = {
    "present": 193_376,
    "medium": int(193_376 * 1.2),
    "long": 193_376 * 2,
}


def present_day_model() -> AnalyticalModel:
    """The current-Internet scenario (iPlane-derived constraints)."""
    return AnalyticalModel("present-day Internet", PRESENT_DAY_RATIOS)


def medium_term_model() -> AnalyticalModel:
    """The 5-10 year flattening scenario."""
    return AnalyticalModel("medium-term future Internet", MEDIUM_TERM_RATIOS)


def long_term_model() -> AnalyticalModel:
    """The 25-30 year flattening scenario."""
    return AnalyticalModel("long-term future Internet", LONG_TERM_RATIOS)


def all_scenarios() -> List[AnalyticalModel]:
    """The three Fig. 7 curves, present → long term."""
    return [present_day_model(), medium_term_model(), long_term_model()]
