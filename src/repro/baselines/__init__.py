"""Baseline mapping schemes the paper compares DMap against (§II-B, §VI)."""

from .base import BaselineLookup, BaselineResolver
from .dht import ChordDHT, RING_BITS
from .dns_like import DNSLike
from .mobileip import MobileIP
from .onehop_dht import OneHopDHT

__all__ = [
    "BaselineLookup",
    "BaselineResolver",
    "ChordDHT",
    "RING_BITS",
    "DNSLike",
    "MobileIP",
    "OneHopDHT",
]
