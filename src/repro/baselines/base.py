"""Common interface for the baseline mapping schemes (§II-B, §VI).

The paper positions DMap against MobileIP, DNS and DHT-based mapping
systems.  Each baseline here implements the same minimal resolver surface
so the comparison benchmark can drive them interchangeably with DMap:

* :meth:`insert` — create/refresh a GUID→NA binding; returns the time (ms)
  until the binding is globally consistent;
* :meth:`lookup` — resolve a GUID from a querying AS; returns the
  locators and the round-trip response time (ms).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.guid import GUID, NetworkAddress


@dataclass(frozen=True)
class BaselineLookup:
    """Outcome of a baseline lookup."""

    locators: Tuple[NetworkAddress, ...]
    rtt_ms: float
    overlay_hops: int


class BaselineResolver(ABC):
    """A name-resolution scheme comparable to DMap."""

    #: Human-readable scheme name for benchmark tables.
    name: str = "baseline"

    @abstractmethod
    def insert(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> float:
        """Bind ``guid``; returns the update latency in ms."""

    @abstractmethod
    def lookup(self, guid: GUID, source_asn: int) -> BaselineLookup:
        """Resolve ``guid`` from ``source_asn``."""

    def maintenance_overhead_bps(self) -> float:
        """Steady-state per-node control traffic (bits/s) the scheme needs
        beyond insert/lookup — DHT stabilization, membership gossip, etc.
        DMap's headline advantage is that this is zero (§III-A)."""
        return 0.0
