"""Chord-style multi-hop DHT mapping baseline (§II-B, §VI).

The DHT-based identifier-to-locator schemes the paper compares against
(e.g. DHT-MAP) route a lookup through O(log N) overlay hops, each hop a
full underlay traversal between unrelated ASs — the paper cites "up to 8
logical hops introducing an average latency of about 900 ms".  This module
implements a faithful Chord ring over the ASs:

* node positions: hash of the ASN on a ``2**m`` ring;
* finger tables: node ``p`` points at ``successor(p + 2^j)``;
* greedy closest-preceding-finger routing, recursive style: the request
  travels hop by hop, the final node replies directly to the querier.

The latency of a lookup is the sum of the one-way underlay latencies along
the overlay path plus the direct reply — which is what makes multi-hop
DHTs slow even though each hop is "short" in overlay terms.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.guid import GUID, NetworkAddress
from ..core.mapping import MappingEntry, MappingStore
from ..errors import ConfigurationError, MappingNotFoundError
from ..topology.routing import Router
from .base import BaselineLookup, BaselineResolver

#: Ring size exponent; 2**48 positions is ample for 26k nodes.
RING_BITS = 48


def _ring_hash(data: bytes) -> int:
    digest = hashlib.sha256(b"chord-ring" + data).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - RING_BITS)


class ChordDHT(BaselineResolver):
    """A Chord ring over all ASs in the topology.

    Parameters
    ----------
    router:
        Underlay latency oracle (defines the participating ASs too).
    replication:
        Successor-list replication of stored mappings (the common Chord
        durability technique); lookups stop at the primary successor.
    stabilization_period_s:
        How often each node refreshes each finger (maintenance traffic).
    """

    name = "chord-dht"

    def __init__(
        self,
        router: Router,
        replication: int = 1,
        stabilization_period_s: float = 30.0,
    ) -> None:
        if replication < 1:
            raise ConfigurationError("replication must be >= 1")
        if stabilization_period_s <= 0:
            raise ConfigurationError("stabilization_period_s must be positive")
        self.router = router
        self.replication = replication
        self.stabilization_period_s = stabilization_period_s

        asns = router.topology.asns()
        if len(asns) < 2:
            raise ConfigurationError("Chord needs at least 2 nodes")
        positioned = sorted(
            (_ring_hash(str(asn).encode()), asn) for asn in asns
        )
        self._positions = [p for p, _ in positioned]
        self._position_asns = [a for _, a in positioned]
        self._position_of = {a: p for p, a in positioned}
        self.n = len(asns)
        self.m = RING_BITS
        self._fingers: Dict[int, List[int]] = {}
        self._build_fingers()
        self.stores: Dict[int, MappingStore] = {}

    # ------------------------------------------------------------------
    # Ring mechanics
    # ------------------------------------------------------------------
    def _successor_index(self, position: int) -> int:
        idx = bisect.bisect_left(self._positions, position)
        return idx % self.n

    def successor_asn(self, position: int) -> int:
        """The AS owning ring ``position``."""
        return self._position_asns[self._successor_index(position)]

    def _build_fingers(self) -> None:
        ring = 1 << self.m
        for idx, asn in enumerate(self._position_asns):
            position = self._positions[idx]
            fingers: List[int] = []
            seen = set()
            for j in range(self.m):
                target = (position + (1 << j)) % ring
                finger = self.successor_asn(target)
                if finger not in seen and finger != asn:
                    seen.add(finger)
                    fingers.append(finger)
            self._fingers[asn] = fingers

    def _owner_of(self, guid: GUID) -> int:
        return self.successor_asn(_ring_hash(guid.to_bytes()))

    def route(self, source_asn: int, guid: GUID) -> List[int]:
        """Overlay path from ``source_asn`` to the GUID's owner.

        Greedy Chord routing: at each node take the finger that gets
        closest to (without passing) the target position.
        """
        target = _ring_hash(guid.to_bytes())
        path = [source_asn]
        current = source_asn
        ring = 1 << self.m
        owner = self.successor_asn(target)
        for _hop in range(2 * self.m):  # safety bound; real paths are ~log N
            if current == owner:
                return path
            current_pos = self._position_of[current]
            gap = (target - current_pos) % ring
            best: Optional[int] = None
            best_gap = gap
            for finger in self._fingers[current]:
                finger_pos = self._position_of[finger]
                finger_gap = (target - finger_pos) % ring
                # A useful finger strictly reduces the remaining clockwise
                # distance to the target.
                if finger_gap < best_gap:
                    best_gap = finger_gap
                    best = finger
            if best is None:
                # No finger improves: the next node is the owner.
                path.append(owner)
                return path
            path.append(best)
            current = best
        path.append(owner)
        return path

    # ------------------------------------------------------------------
    # Resolver interface
    # ------------------------------------------------------------------
    def _store_at(self, asn: int) -> MappingStore:
        store = self.stores.get(asn)
        if store is None:
            store = MappingStore(owner_asn=asn)
            self.stores[asn] = store
        return store

    def _replica_asns(self, guid: GUID) -> List[int]:
        start = self._successor_index(_ring_hash(guid.to_bytes()))
        return [
            self._position_asns[(start + i) % self.n] for i in range(self.replication)
        ]

    def insert(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> float:
        """Route to the owner, then replicate along the successor list."""
        entry = MappingEntry(guid, tuple(locators))
        path = self.route(source_asn, guid)
        latency = self._path_latency(path)
        owner = path[-1]
        for asn in self._replica_asns(guid):
            self._store_at(asn).insert(entry)
        # Owner acks directly to the source.
        latency += self.router.one_way_ms(owner, source_asn)
        return latency

    def lookup(self, guid: GUID, source_asn: int) -> BaselineLookup:
        """Recursive lookup; the owner replies directly to the querier."""
        path = self.route(source_asn, guid)
        owner = path[-1]
        entry = self._store_at(owner).get(guid)
        if entry is None:
            raise MappingNotFoundError(guid, owner)
        rtt = self._path_latency(path) + self.router.one_way_ms(owner, source_asn)
        return BaselineLookup(entry.locators, rtt, overlay_hops=len(path) - 1)

    def _path_latency(self, path: List[int]) -> float:
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.router.one_way_ms(a, b)
        return total

    def mean_overlay_hops(self, guids: Sequence[GUID], sources: Sequence[int]) -> float:
        """Average overlay path length (the paper's "logical hops")."""
        hops = [len(self.route(s, g)) - 1 for g, s in zip(guids, sources)]
        return float(np.mean(hops)) if hops else 0.0

    def maintenance_overhead_bps(self) -> float:
        """Finger-refresh traffic per node (bits/s).

        Each node pings each finger once per stabilization period; a ping
        and its ack are ~512 bits together.  This is the table-maintenance
        overhead DMap eliminates (§III-A: "it does not require ... any
        additional state information").
        """
        mean_fingers = float(
            np.mean([len(f) for f in self._fingers.values()])
        )
        return mean_fingers * 512.0 / self.stabilization_period_s
