"""DNS-like hierarchical resolution baseline (§II-B).

"Since it relies on extensive caching, DNS cannot deal with fast updates"
(§II-B).  This baseline models an iterative hierarchical resolver:

* a small set of **root/TLD server ASs** (high-degree core networks);
* an **authoritative server** in the GUID's home AS;
* a per-source **resolver cache** with TTL.

A cache hit answers in the intra-AS round trip.  A miss performs the
iterative walk — resolver→root, resolver→TLD, resolver→authoritative —
three round trips from the querying AS.  The scheme's weakness under
mobility is *staleness*: a cached binding does not see updates until its
TTL expires, so the fraction of stale answers grows with the host's move
rate, which is exactly why the paper rules DNS out for dynamic GUIDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.guid import GUID, NetworkAddress
from ..core.mapping import MappingEntry, MappingStore
from ..errors import ConfigurationError, MappingNotFoundError
from ..topology.routing import Router
from .base import BaselineLookup, BaselineResolver


@dataclass
class _CacheSlot:
    entry: MappingEntry
    expires_at_ms: float


class DNSLike(BaselineResolver):
    """Iterative hierarchical resolver with TTL caches.

    Parameters
    ----------
    router:
        Underlay latency oracle.
    n_roots:
        Number of root/TLD anycast sites; the highest-degree ASs host
        them, and a querier uses the closest.
    ttl_ms:
        Cache lifetime of a resolved binding.
    """

    name = "dns-like"

    def __init__(
        self,
        router: Router,
        n_roots: int = 13,
        ttl_ms: float = 60_000.0,
    ) -> None:
        if n_roots < 1:
            raise ConfigurationError("need at least one root server")
        if ttl_ms < 0:
            raise ConfigurationError("ttl_ms must be non-negative")
        self.router = router
        self.ttl_ms = ttl_ms
        topo = router.topology
        by_degree = sorted(topo.asns(), key=lambda a: (-topo.degree(a), a))
        self.root_asns = by_degree[: min(n_roots, len(by_degree))]
        self._authoritative: Dict[GUID, int] = {}
        self.stores: Dict[int, MappingStore] = {}
        self._caches: Dict[int, Dict[GUID, _CacheSlot]] = {}
        self.now_ms = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.stale_answers = 0

    # ------------------------------------------------------------------
    def advance_time(self, delta_ms: float) -> None:
        """Advance the resolver's clock (drives TTL expiry)."""
        if delta_ms < 0:
            raise ConfigurationError("time cannot go backwards")
        self.now_ms += delta_ms

    def _store_at(self, asn: int) -> MappingStore:
        store = self.stores.get(asn)
        if store is None:
            store = MappingStore(owner_asn=asn)
            self.stores[asn] = store
        return store

    def _closest_root(self, source_asn: int) -> int:
        roots = np.asarray(self.root_asns, dtype=np.int64)
        asn, _latency = self.router.closest_of(source_asn, roots)
        return asn

    # ------------------------------------------------------------------
    def insert(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> float:
        """Write the authoritative record (home-AS anchored, like DNS
        zones).  Already-cached copies elsewhere stay stale until expiry."""
        auth = self._authoritative.setdefault(guid, source_asn)
        store = self._store_at(auth)
        previous = store.get(guid)
        version = 0 if previous is None else previous.version + 1
        store.insert(MappingEntry(guid, tuple(locators), version, self.now_ms))
        return self.router.rtt_ms(source_asn, auth)

    def lookup(self, guid: GUID, source_asn: int) -> BaselineLookup:
        """Resolve via cache or the iterative root→TLD→authoritative walk."""
        cache = self._caches.setdefault(source_asn, {})
        slot = cache.get(guid)
        if slot is not None and slot.expires_at_ms > self.now_ms:
            self.cache_hits += 1
            auth = self._authoritative.get(guid)
            live = self._store_at(auth).get(guid) if auth is not None else None
            if live is not None and live.version > slot.entry.version:
                self.stale_answers += 1
            rtt = 2.0 * self.router.topology.intra_latency(source_asn)
            return BaselineLookup(slot.entry.locators, rtt, overlay_hops=0)

        self.cache_misses += 1
        auth = self._authoritative.get(guid)
        if auth is None:
            raise MappingNotFoundError(guid)
        entry = self._store_at(auth).get(guid)
        if entry is None:
            raise MappingNotFoundError(guid, auth)
        root = self._closest_root(source_asn)
        # Iterative resolution: referral from the root tier (modelled as
        # two round trips — root + TLD at the same site class) and the
        # authoritative query.
        rtt = 2.0 * self.router.rtt_ms(source_asn, root) + self.router.rtt_ms(
            source_asn, auth
        )
        cache[guid] = _CacheSlot(entry, self.now_ms + self.ttl_ms)
        return BaselineLookup(entry.locators, rtt, overlay_hops=3)

    # ------------------------------------------------------------------
    def stale_answer_probability(
        self, mean_update_interval_ms: float
    ) -> float:
        """Analytic stale-read probability under mobility.

        With exponential update inter-arrivals (rate ``1/T_u``) and a
        cache entry aged uniformly within its TTL, the chance a cached
        answer predates the latest update is
        ``1 - (T_u / TTL) * (1 - exp(-TTL / T_u))``.  Grows toward 1 as
        hosts move faster than the TTL — the §II-B "low staleness"
        requirement DNS fails.
        """
        if mean_update_interval_ms <= 0:
            raise ConfigurationError("mean_update_interval_ms must be positive")
        if self.ttl_ms == 0:
            return 0.0
        ratio = mean_update_interval_ms / self.ttl_ms
        return 1.0 - ratio * (1.0 - float(np.exp(-1.0 / ratio)))
