"""MobileIP home-agent baseline (§II-B).

"The mapping scheme of MobileIP incurs high overhead since all mappings
are resolved by the home agent regardless of its distance to
correspondents.  A home agent acting as a relaying node on the data plane
in tunnelling mode makes MobileIP not scalable" (§II-B).  DMap explicitly
"does not require a home agent" (§I).

This baseline anchors each GUID at the AS where it was first registered
(its home network).  Two costs are modelled:

* **binding query** — a correspondent asks the home agent for the current
  care-of locator: one round trip to the home AS, however far it is;
* **triangle routing** — in tunnelling mode the data path is
  correspondent → home agent → current AS, versus the direct path; the
  stretch quantifies the data-plane penalty DMap avoids.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.guid import GUID, NetworkAddress
from ..core.mapping import MappingEntry, MappingStore
from ..errors import MappingNotFoundError
from ..topology.routing import Router
from .base import BaselineLookup, BaselineResolver


class MobileIP(BaselineResolver):
    """Home-agent mapping: first registration pins the home AS forever."""

    name = "mobile-ip"

    def __init__(self, router: Router) -> None:
        self.router = router
        self._home: Dict[GUID, int] = {}
        self._current: Dict[GUID, int] = {}
        self.stores: Dict[int, MappingStore] = {}

    def _store_at(self, asn: int) -> MappingStore:
        store = self.stores.get(asn)
        if store is None:
            store = MappingStore(owner_asn=asn)
            self.stores[asn] = store
        return store

    def home_of(self, guid: GUID) -> int:
        """The GUID's home AS (raises if never registered)."""
        try:
            return self._home[guid]
        except KeyError as exc:
            raise MappingNotFoundError(guid) from exc

    def insert(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> float:
        """Register (first call fixes the home) or update the binding.

        The update always travels to the home agent — a host that roamed
        far from home pays the full distance on every move, which is the
        scalability problem the paper highlights.
        """
        home = self._home.setdefault(guid, source_asn)
        self._current[guid] = source_asn
        self._store_at(home).insert(MappingEntry(guid, tuple(locators)))
        return self.router.rtt_ms(source_asn, home)

    def lookup(self, guid: GUID, source_asn: int) -> BaselineLookup:
        """Binding query to the home agent."""
        home = self.home_of(guid)
        entry = self._store_at(home).get(guid)
        if entry is None:
            raise MappingNotFoundError(guid, home)
        return BaselineLookup(
            entry.locators, self.router.rtt_ms(source_asn, home), overlay_hops=1
        )

    def triangle_stretch(self, guid: GUID, correspondent_asn: int) -> float:
        """Data-plane stretch of tunnelling mode.

        ``(correspondent→home→current) / (correspondent→current)`` one-way
        latencies; 1.0 means no penalty.  The GUID must be registered.
        """
        home = self.home_of(guid)
        current = self._current[guid]
        direct = self.router.one_way_ms(correspondent_asn, current)
        relayed = self.router.one_way_ms(correspondent_asn, home) + self.router.one_way_ms(
            home, current
        )
        if direct <= 0:
            return 1.0
        return relayed / direct
