"""One-hop DHT baseline (D1HT / one-hop-lookups style, §II-B).

One-hop DHTs give every node a complete membership table, so a lookup is
a single overlay hop — the same latency class as DMap — but the table
must be kept complete: every join/leave event is broadcast to all N
nodes.  The paper's argument (§II-B) is that such schemes "invariably
introduce a fundamental tradeoff between service latency and
table/maintenance overhead"; DMap gets the single hop *without* that
overhead by reusing BGP reachability state that routers already maintain.

This implementation hashes GUIDs onto the same ring as
:class:`~repro.baselines.dht.ChordDHT` but routes directly, and exposes
the membership-maintenance bandwidth formula so the tradeoff is
quantifiable.
"""

from __future__ import annotations

import bisect
from typing import Dict, Sequence

from ..core.guid import GUID, NetworkAddress
from ..core.mapping import MappingEntry, MappingStore
from ..errors import ConfigurationError, MappingNotFoundError
from ..topology.routing import Router
from .base import BaselineLookup, BaselineResolver
from .dht import _ring_hash


class OneHopDHT(BaselineResolver):
    """Full-membership single-hop DHT over all ASs.

    Parameters
    ----------
    router:
        Underlay latency oracle.
    churn_events_per_node_per_hour:
        Node join/leave rate driving membership broadcasts.
    """

    name = "one-hop-dht"

    def __init__(
        self,
        router: Router,
        churn_events_per_node_per_hour: float = 1.0,
    ) -> None:
        if churn_events_per_node_per_hour < 0:
            raise ConfigurationError("churn rate must be non-negative")
        self.router = router
        self.churn_rate = churn_events_per_node_per_hour
        asns = router.topology.asns()
        if len(asns) < 2:
            raise ConfigurationError("one-hop DHT needs at least 2 nodes")
        positioned = sorted((_ring_hash(str(a).encode()), a) for a in asns)
        self._positions = [p for p, _ in positioned]
        self._position_asns = [a for _, a in positioned]
        self.n = len(asns)
        self.stores: Dict[int, MappingStore] = {}

    def _owner_of(self, guid: GUID) -> int:
        idx = bisect.bisect_left(self._positions, _ring_hash(guid.to_bytes())) % self.n
        return self._position_asns[idx]

    def _store_at(self, asn: int) -> MappingStore:
        store = self.stores.get(asn)
        if store is None:
            store = MappingStore(owner_asn=asn)
            self.stores[asn] = store
        return store

    def insert(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> float:
        owner = self._owner_of(guid)
        self._store_at(owner).insert(MappingEntry(guid, tuple(locators)))
        return self.router.rtt_ms(source_asn, owner)

    def lookup(self, guid: GUID, source_asn: int) -> BaselineLookup:
        owner = self._owner_of(guid)
        entry = self._store_at(owner).get(guid)
        if entry is None:
            raise MappingNotFoundError(guid, owner)
        return BaselineLookup(
            entry.locators, self.router.rtt_ms(source_asn, owner), overlay_hops=1
        )

    def maintenance_overhead_bps(self) -> float:
        """Membership-broadcast traffic per node (bits/s).

        Every churn event (~256 bits: node id + address + signature
        fragment) must reach all N nodes; with event rate ``r`` per node
        per hour, each node receives ``N * r`` notifications per hour.
        Grows linearly with system size — the scalability wall the paper
        contrasts with DMap's zero-maintenance design.
        """
        events_per_second = self.n * self.churn_rate / 3600.0
        return events_per_second * 256.0
