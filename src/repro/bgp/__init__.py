"""BGP substrate: prefixes, the global prefix table, LPM and churn."""

from .allocation import (
    AllocationConfig,
    BuddyAllocator,
    DEFAULT_LENGTH_MIX,
    PAPER_ANNOUNCEMENT_RATIO,
    PAPER_PREFIX_COUNT,
    generate_global_prefix_table,
)
from .churn import (
    ChurnEvent,
    ChurnKind,
    ChurnScheduleGenerator,
    churned_fraction,
    perturb_view,
)
from .interval_index import HOLE, IntervalIndex
from .prefix import Announcement, Prefix
from .table import GlobalPrefixTable
from .trie import PrefixTrie

__all__ = [
    "AllocationConfig",
    "BuddyAllocator",
    "DEFAULT_LENGTH_MIX",
    "PAPER_ANNOUNCEMENT_RATIO",
    "PAPER_PREFIX_COUNT",
    "generate_global_prefix_table",
    "ChurnEvent",
    "ChurnKind",
    "ChurnScheduleGenerator",
    "churned_fraction",
    "perturb_view",
    "HOLE",
    "IntervalIndex",
    "Announcement",
    "Prefix",
    "GlobalPrefixTable",
    "PrefixTrie",
]
