"""Synthetic global prefix-table generation.

The paper drives its simulation with the APNIC DIX-IE BGP snapshot:
~330,000 IPv4 prefixes covering ~52% of the 32-bit space, announced by
~26,000 ASs (§IV-B.1).  That snapshot is not redistributable and this
environment is offline, so this module synthesizes a table with the same
aggregate statistics:

* a target *announcement ratio* (default 0.52) — the property that drives
  the IP-hole rate and therefore Algorithm 1's rehash behaviour;
* a */24-heavy prefix-length mix* matching published DFZ statistics;
* a *heavy-tailed per-AS address share* (a few ASs announce /8-equivalents,
  most announce a handful of /24s) — the property that drives the
  Normalized Load Ratio distribution (Fig. 6);
* *interleaved holes*: announced blocks are placed at random buddy-aligned
  positions so unannounced space is scattered, matching the fragmented
  real allocation.

Placement uses a buddy allocator over the address space, so generated
prefixes are disjoint.  (Real tables contain covering supernets; overlap
handling is still exercised throughout the test suite via hand-built
tables.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.guid import ADDRESS_BITS
from ..errors import ConfigurationError
from .prefix import Announcement, Prefix
from .table import GlobalPrefixTable

#: Prefix-length mix loosely matching published IPv4 DFZ statistics
#: (heavily /24-dominated, with a thin tail of short prefixes).
DEFAULT_LENGTH_MIX: Dict[int, float] = {
    8: 0.0004,
    9: 0.0004,
    10: 0.0008,
    11: 0.0015,
    12: 0.003,
    13: 0.005,
    14: 0.009,
    15: 0.012,
    16: 0.055,
    17: 0.020,
    18: 0.035,
    19: 0.060,
    20: 0.070,
    21: 0.060,
    22: 0.105,
    23: 0.070,
    24: 0.493,
}

#: Paper-scale defaults (§IV-B.1).
PAPER_PREFIX_COUNT = 330_000
PAPER_ANNOUNCEMENT_RATIO = 0.52


@dataclass
class AllocationConfig:
    """Parameters for :func:`generate_global_prefix_table`.

    Attributes
    ----------
    target_ratio:
        Desired announced fraction of the address space.
    prefixes_per_as:
        Mean number of prefixes per AS (paper: 330k / 26.4k ≈ 12.5).
    length_mix:
        Probability mass over prefix lengths.
    count_tail_exponent:
        Pareto exponent for the per-AS prefix-count distribution; smaller
        means heavier tail (a few ASs announcing very many prefixes).
    max_prefixes_per_as:
        Hard cap on prefixes announced by a single AS.
    bits:
        Address-family width.
    """

    target_ratio: float = PAPER_ANNOUNCEMENT_RATIO
    prefixes_per_as: float = 12.5
    length_mix: Dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_LENGTH_MIX)
    )
    count_tail_exponent: float = 1.35
    max_prefixes_per_as: int = 4000
    bits: int = ADDRESS_BITS

    def validate(self) -> None:
        if not 0.0 < self.target_ratio < 1.0:
            raise ConfigurationError("target_ratio must lie in (0, 1)")
        if self.prefixes_per_as <= 0:
            raise ConfigurationError("prefixes_per_as must be positive")
        if not self.length_mix:
            raise ConfigurationError("length_mix must be non-empty")
        for length in self.length_mix:
            if not 0 < length <= self.bits:
                raise ConfigurationError(f"length {length} outside (0, {self.bits}]")


class BuddyAllocator:
    """Random-placement buddy allocator over the address space.

    Blocks are always naturally aligned; a request for a ``/L`` block splits
    a random larger free block down to size.  Randomizing both which free
    block is split and which half survives scatters allocations — and hence
    the residual holes — across the space.
    """

    def __init__(self, bits: int, rng: np.random.Generator) -> None:
        self.bits = bits
        self.rng = rng
        # _free[L] = list of base addresses of free /L blocks.
        self._free: List[List[int]] = [[] for _ in range(bits + 1)]
        self._free[0].append(0)

    def allocate(self, length: int) -> Optional[int]:
        """Allocate a /``length`` block; returns its base, or ``None`` when
        no free block that large remains."""
        if not 0 <= length <= self.bits:
            raise ConfigurationError(f"block length {length} out of range")
        source = length
        while source >= 0 and not self._free[source]:
            source -= 1
        if source < 0:
            return None
        pool = self._free[source]
        pick = int(self.rng.integers(0, len(pool)))
        pool[pick], pool[-1] = pool[-1], pool[pick]
        base = pool.pop()
        # Split down to the requested size, keeping a random half each time.
        while source < length:
            source += 1
            half_span = 1 << (self.bits - source)
            if self.rng.integers(0, 2):
                self._free[source].append(base)
                base += half_span
            else:
                self._free[source].append(base + half_span)
        return base

    def free_span(self) -> int:
        """Total unallocated address count."""
        return sum(
            len(blocks) << (self.bits - length)
            for length, blocks in enumerate(self._free)
        )


def _draw_per_as_counts(
    n_as: int, config: AllocationConfig, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-tailed per-AS prefix counts with the configured mean."""
    raw = rng.pareto(config.count_tail_exponent, size=n_as) + 1.0
    raw = np.minimum(raw, config.max_prefixes_per_as)
    total_target = max(n_as, int(round(config.prefixes_per_as * n_as)))
    scaled = raw * (total_target / raw.sum())
    counts = np.maximum(1, np.round(scaled)).astype(np.int64)
    return np.minimum(counts, config.max_prefixes_per_as)


def _draw_lengths(
    count: int, config: AllocationConfig, rng: np.random.Generator
) -> np.ndarray:
    lengths = np.array(sorted(config.length_mix), dtype=np.int64)
    weights = np.array([config.length_mix[int(l)] for l in lengths], dtype=float)
    weights = weights / weights.sum()
    return rng.choice(lengths, size=count, p=weights)


def _fit_to_ratio(
    lengths: List[Tuple[int, int]],  # (length, asn)
    config: AllocationConfig,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Trim or pad the drawn prefix list so total span ≈ target ratio.

    Oversized tables drop random *large* prefixes first (preserving the
    /24-heavy count mix); undersized tables add /16 filler blocks to ASs
    sampled proportionally to their existing span (preserving the heavy
    per-AS tail).
    """
    space = 1 << config.bits
    target = int(config.target_ratio * space)
    span = sum(1 << (config.bits - length) for length, _ in lengths)

    if span > target:
        order = sorted(
            range(len(lengths)), key=lambda i: lengths[i][0]
        )  # shortest prefixes (largest spans) first
        keep = [True] * len(lengths)
        for i in order:
            if span <= target:
                break
            block = 1 << (config.bits - lengths[i][0])
            if span - block >= target or block >= (span - target) // 2:
                keep[i] = False
                span -= block
        lengths = [item for item, k in zip(lengths, keep) if k]

    if span < target:
        filler_len = 16
        filler_span = 1 << (config.bits - filler_len)
        spans_by_asn: Dict[int, int] = {}
        for length, asn in lengths:
            spans_by_asn[asn] = spans_by_asn.get(asn, 0) + (
                1 << (config.bits - length)
            )
        asns = np.array(sorted(spans_by_asn), dtype=np.int64)
        weights = np.array([spans_by_asn[int(a)] for a in asns], dtype=float)
        weights /= weights.sum()
        n_fillers = max(0, (target - span) // filler_span)
        for asn in rng.choice(asns, size=int(n_fillers), p=weights):
            lengths.append((filler_len, int(asn)))
            span += filler_span

    return lengths


def generate_global_prefix_table(
    asns: Sequence[int],
    config: Optional[AllocationConfig] = None,
    seed: int = 0,
    as_weights: Optional[Dict[int, float]] = None,
) -> GlobalPrefixTable:
    """Synthesize a DFZ-like prefix table for the given ASs.

    Parameters
    ----------
    asns:
        AS numbers participating (each receives at least one prefix).
    config:
        Aggregate statistics to hit; defaults to paper-scale parameters.
    seed:
        Seed for the private RNG — generation is fully deterministic.
    as_weights:
        Optional relative size weights (e.g. from topology tier/degree);
        larger weight biases an AS toward announcing more prefixes.

    Returns
    -------
    GlobalPrefixTable
        Disjoint announcements hitting the configured ratio within one
        /16 of address space.
    """
    if not asns:
        raise ConfigurationError("need at least one AS to allocate prefixes to")
    config = config or AllocationConfig()
    config.validate()
    rng = np.random.default_rng(seed)

    counts = _draw_per_as_counts(len(asns), config, rng)
    if as_weights:
        bias = np.array([max(as_weights.get(a, 1.0), 1e-9) for a in asns])
        bias = bias * (len(asns) / bias.sum())
        counts = np.maximum(1, np.round(counts * bias)).astype(np.int64)
        counts = np.minimum(counts, config.max_prefixes_per_as)

    drawn: List[Tuple[int, int]] = []
    for asn, count in zip(asns, counts.tolist()):
        for length in _draw_lengths(count, config, rng).tolist():
            drawn.append((int(length), int(asn)))

    drawn = _fit_to_ratio(drawn, config, rng)

    # Place largest blocks first so buddy alignment always succeeds.
    drawn.sort(key=lambda item: item[0])
    allocator = BuddyAllocator(config.bits, rng)
    announcements: List[Announcement] = []
    for length, asn in drawn:
        base = allocator.allocate(length)
        if base is None:
            continue  # space exhausted (cannot happen when ratio < 1)
        announcements.append(
            Announcement(Prefix(base, length, config.bits), asn)
        )

    table = GlobalPrefixTable(announcements, bits=config.bits)

    # Guarantee every AS announces something (the paper's NLR is undefined
    # for ASs with zero announced space).
    covered = set(table.asns())
    for asn in asns:
        if asn not in covered:
            base = allocator.allocate(24)
            if base is None:
                break
            table.announce(Announcement(Prefix(base, 24, config.bits), asn))

    return table
