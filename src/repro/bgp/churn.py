"""BGP churn: prefix announcements and withdrawals over time.

§III-D.1 analyzes how DMap copes with changes in the global prefix table:

* a **withdrawal** strands every mapping hosted under the withdrawn prefix
  ("orphan mappings"); the withdrawing AS migrates them to the deputy AS
  that the IP-hole protocol will now select;
* a **new announcement** captures hashed values that previously fell into
  a hole; the first query to the announcing AS triggers a one-time
  migration from the old deputy.

This module provides (a) a Poisson churn-schedule generator (announcements
dominating withdrawals, as the cited long-term churn study observed), and
(b) perturbed *inconsistent views* of the prefix table, modelling BGP
convergence lag at a query origin — the mechanism behind the Fig. 5
experiment, where a query that consults a stale table can reach an AS that
does not host the mapping and must retry the next replica.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .prefix import Announcement
from .table import GlobalPrefixTable


class ChurnKind(enum.Enum):
    """The two prefix-table mutations BGP churn produces."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True, order=True)
class ChurnEvent:
    """A timestamped prefix-table mutation."""

    time: float
    kind: ChurnKind
    announcement: Announcement

    def apply(self, table: GlobalPrefixTable) -> None:
        """Apply this mutation to ``table``."""
        if self.kind is ChurnKind.ANNOUNCE:
            table.announce(self.announcement)
        else:
            table.withdraw(self.announcement.prefix)


class ChurnScheduleGenerator:
    """Poisson process over announce/withdraw events.

    Parameters
    ----------
    table:
        The current table; withdrawals are drawn from it, announcements
        re-use withdrawn prefixes or mint fresh ones inside current holes.
    announce_rate, withdraw_rate:
        Events per simulated second.  The paper (citing the BGP-churn
        evolution study) notes new announcements dominate withdrawals,
        so the defaults keep ``announce_rate > withdraw_rate``.
    seed:
        Private RNG seed.
    """

    def __init__(
        self,
        table: GlobalPrefixTable,
        announce_rate: float = 0.02,
        withdraw_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        if announce_rate < 0 or withdraw_rate < 0:
            raise ConfigurationError("churn rates must be non-negative")
        if announce_rate + withdraw_rate == 0:
            raise ConfigurationError("at least one churn rate must be positive")
        self.table = table
        self.announce_rate = announce_rate
        self.withdraw_rate = withdraw_rate
        self.rng = np.random.default_rng(seed)
        # Withdrawn announcements become candidates for re-announcement,
        # which is the common churn pattern (flapping).
        self._withdrawn_pool: List[Announcement] = []

    def events(self, horizon: float) -> Iterator[ChurnEvent]:
        """Yield churn events with arrival times in ``[0, horizon)``.

        Events are generated lazily and are consistent: a withdrawal only
        targets a currently-announced prefix, an announcement only a
        currently-free one.  The caller is expected to ``apply`` each event
        (directly or through the simulation) before consuming the next.
        """
        total_rate = self.announce_rate + self.withdraw_rate
        time = 0.0
        while True:
            time += float(self.rng.exponential(1.0 / total_rate))
            if time >= horizon:
                return
            if self.rng.random() < self.withdraw_rate / total_rate:
                event = self._make_withdrawal(time)
            else:
                event = self._make_announcement(time)
            if event is not None:
                yield event

    def _make_withdrawal(self, time: float) -> Optional[ChurnEvent]:
        asns = self.table.asns()
        if not asns:
            return None
        asn = int(self.rng.choice(np.asarray(asns, dtype=np.int64)))
        prefixes = self.table.prefixes_of(asn)
        if not prefixes:
            return None
        prefix = prefixes[int(self.rng.integers(0, len(prefixes)))]
        ann = Announcement(prefix, asn)
        self._withdrawn_pool.append(ann)
        return ChurnEvent(time, ChurnKind.WITHDRAW, ann)

    def _make_announcement(self, time: float) -> Optional[ChurnEvent]:
        # Prefer re-announcing a previously withdrawn prefix (flap);
        # otherwise there is nothing safe to announce without a hole map,
        # so fall back to a withdrawal-driven flap only.
        while self._withdrawn_pool:
            pick = int(self.rng.integers(0, len(self._withdrawn_pool)))
            self._withdrawn_pool[pick], self._withdrawn_pool[-1] = (
                self._withdrawn_pool[-1],
                self._withdrawn_pool[pick],
            )
            ann = self._withdrawn_pool.pop()
            if ann.prefix not in self.table:
                return ChurnEvent(time, ChurnKind.ANNOUNCE, ann)
        return None


def perturb_view(
    table: GlobalPrefixTable,
    fraction: float,
    seed: int = 0,
) -> Tuple[GlobalPrefixTable, List[Announcement]]:
    """Build an *inconsistent view* of ``table`` for a lagging query origin.

    A random ``fraction`` of announcements is withdrawn from the copy —
    from the origin's point of view those prefixes moved (were withdrawn
    and possibly re-announced elsewhere) after its last BGP update, so any
    hashed value landing in them resolves to the wrong AS.

    Returns the perturbed copy and the list of announcements it is missing.
    Used by integration tests; the Fig. 5 experiment models the same effect
    with a per-replica failure probability, exactly as the paper's
    "percentage of prefixes that are newly announced or withdrawn" knob.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    view = table.copy()
    announcements = sorted(table)
    n_perturb = int(round(fraction * len(announcements)))
    if n_perturb == 0:
        return view, []
    picked_idx = rng.choice(len(announcements), size=n_perturb, replace=False)
    removed: List[Announcement] = []
    for idx in sorted(int(i) for i in picked_idx):
        ann = announcements[idx]
        view.withdraw(ann.prefix)
        removed.append(ann)
    return view, removed


def churned_fraction(
    reference: GlobalPrefixTable, view: GlobalPrefixTable
) -> float:
    """Fraction of reference announcements absent from ``view`` — a
    convergence-lag measure used in tests."""
    reference_set = set(reference)
    if not reference_set:
        return 0.0
    view_set = set(view)
    return len(reference_set - view_set) / len(reference_set)
