"""Vectorized longest-prefix matching over a frozen prefix table.

The storage-load experiment (Fig. 6) inserts up to 10^7 GUIDs × K replicas,
i.e. tens of millions of LPM operations.  A per-address trie walk in Python
is far too slow, so this module flattens the announced prefixes into a
sorted array of *disjoint ownership intervals* — each interval labelled
with the AS whose announcement is most specific there — and answers batch
lookups with one :func:`numpy.searchsorted` call.

The decomposition is exact under arbitrary prefix overlap (a covering /16
with more-specific /24s inside it) and is property-tested against the
reference :class:`repro.bgp.trie.PrefixTrie`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..core.guid import ADDRESS_BITS
from ..errors import EmptyPrefixTableError
from .prefix import Announcement

#: Owner label for address ranges covered by no announcement (IP holes).
HOLE = -1


class IntervalIndex:
    """Immutable, vectorized LPM index.

    Parameters
    ----------
    announcements:
        The frozen set of announcements to index.
    bits:
        Address-family width.

    Attributes
    ----------
    starts:
        ``uint64`` array of interval start addresses; ``starts[0] == 0`` and
        intervals partition the whole space.
    owners:
        ``int64`` array, same length: AS number owning each interval, or
        :data:`HOLE`.
    """

    def __init__(
        self, announcements: Iterable[Announcement], bits: int = ADDRESS_BITS
    ) -> None:
        self.bits = bits
        anns = list(announcements)
        self.starts, self.owners = _decompose(anns, bits)

    def __len__(self) -> int:
        return len(self.starts)

    def lookup_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Owner ASN for each address (``HOLE`` where unannounced).

        ``addresses`` may be any unsigned/signed integer array within the
        address space; the result is an ``int64`` array of the same shape.
        """
        addrs = np.asarray(addresses, dtype=np.uint64)
        idx = np.searchsorted(self.starts, addrs, side="right") - 1
        return self.owners[idx]

    def lookup_one(self, address: int) -> int:
        """Scalar convenience wrapper around :meth:`lookup_batch`."""
        return int(self.lookup_batch(np.array([address], dtype=np.uint64))[0])

    def is_announced_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Boolean array: does any announcement cover each address?"""
        return self.lookup_batch(addresses) != HOLE

    def announced_span(self) -> int:
        """Total number of announced addresses (holes excluded)."""
        ends = np.append(self.starts[1:], np.uint64(1) << np.uint64(self.bits))
        widths = (ends - self.starts).astype(np.float64)
        return int(widths[self.owners != HOLE].sum())

    def announced_fraction(self) -> float:
        """Announced share of the whole address space (paper: ~52-55%)."""
        return self.announced_span() / float(1 << self.bits)

    def effective_span_by_asn(self) -> Dict[int, int]:
        """Addresses *effectively owned* by each AS under LPM precedence.

        This is the denominator of the Normalized Load Ratio (Fig. 6): the
        share of address space for which a hashed value is stored at that
        AS.  Where prefixes overlap, only the most-specific announcement's
        AS owns the range, matching what LPM-based insertion actually does.
        """
        ends = np.append(self.starts[1:], np.uint64(1) << np.uint64(self.bits))
        widths = ends - self.starts
        spans: Dict[int, int] = {}
        for owner, width in zip(self.owners.tolist(), widths.tolist()):
            if owner == HOLE:
                continue
            spans[owner] = spans.get(owner, 0) + int(width)
        return spans


def _decompose(
    announcements: List[Announcement], bits: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sweep-line decomposition of overlapping prefixes into disjoint
    ownership intervals.

    Classic interval-stabbing sweep: prefix *start* and *end* events are
    processed in address order while a lazy max-heap keyed by prefix length
    tracks the currently most-specific active announcement.
    """
    if not announcements:
        raise EmptyPrefixTableError("cannot build an interval index from no announcements")

    space_end = 1 << bits
    events: List[Tuple[int, int, int, Announcement]] = []
    for order, ann in enumerate(announcements):
        # End events (kind 0) sort before start events (kind 1) at the same
        # address so a block ending exactly where another begins hands over
        # cleanly.
        events.append((ann.prefix.first, 1, order, ann))
        events.append((ann.prefix.last + 1, 0, order, ann))
    events.sort(key=lambda e: (e[0], e[1]))

    # Lazy-deletion max-heap of active prefixes, most specific first; ties
    # broken deterministically by insertion order.
    heap: List[Tuple[int, int, Announcement]] = []
    dead: Dict[int, int] = {}  # order -> pending removals

    starts: List[int] = []
    owners: List[int] = []

    def current_owner() -> int:
        while heap:
            neg_len, order, ann = heap[0]
            if dead.get(order, 0) > 0:
                dead[order] -= 1
                if dead[order] == 0:
                    del dead[order]
                heapq.heappop(heap)
                continue
            return ann.asn
        return HOLE

    def emit(position: int, owner: int) -> None:
        if owners and owners[-1] == owner:
            return  # merge equal-owner runs
        if starts and starts[-1] == position:
            owners[-1] = owner  # zero-width run: overwrite
            if len(owners) >= 2 and owners[-2] == owner:
                starts.pop()
                owners.pop()
            return
        starts.append(position)
        owners.append(owner)

    emit(0, HOLE)
    i = 0
    n = len(events)
    while i < n:
        position = events[i][0]
        while i < n and events[i][0] == position:
            _, kind, order, ann = events[i]
            if kind == 1:
                heapq.heappush(heap, (-ann.prefix.length, order, ann))
            else:
                dead[order] = dead.get(order, 0) + 1
            i += 1
        if position < space_end:
            emit(position, current_owner())

    return (
        np.asarray(starts, dtype=np.uint64),
        np.asarray(owners, dtype=np.int64),
    )
