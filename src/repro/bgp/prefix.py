"""IP prefixes and announcements.

A :class:`Prefix` is a CIDR block ``base/length``; an :class:`Announcement`
binds a prefix to the AS that originates it in BGP.  The global prefix table
(:mod:`repro.bgp.table`) is a set of announcements, mirroring the DFZ
snapshot the paper takes from APNIC's DIX-IE router (§IV-B.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.guid import ADDRESS_BITS, NetworkAddress
from ..errors import AddressError


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR address block.

    Ordering is (base, length) so sorted prefix lists group covering blocks
    before their more-specifics, which the interval index relies on.

    Parameters
    ----------
    base:
        Network address of the block; host bits must be zero.
    length:
        Prefix length in [0, bits].
    bits:
        Address-family width, default IPv4 (32).
    """

    base: int
    length: int
    bits: int = ADDRESS_BITS

    def __post_init__(self) -> None:
        if not 0 <= self.length <= self.bits:
            raise AddressError(
                f"prefix length {self.length} out of range for {self.bits}-bit space"
            )
        if not 0 <= self.base < (1 << self.bits):
            raise AddressError(f"prefix base {self.base:#x} out of range")
        if self.base & (self.span - 1):
            raise AddressError(
                f"prefix base {self.base:#x}/{self.length} has non-zero host bits"
            )

    @classmethod
    def from_cidr(cls, text: str, bits: int = ADDRESS_BITS) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or bare ``"a.b.c.d"`` as a host route)."""
        if "/" in text:
            addr_part, _, len_part = text.partition("/")
            try:
                length = int(len_part)
            except ValueError as exc:
                raise AddressError(f"bad prefix length in {text!r}") from exc
        else:
            addr_part, length = text, bits
        address = NetworkAddress.from_dotted(addr_part)
        span = 1 << (bits - length) if length < bits else 1
        return cls(address.value & ~(span - 1) & ((1 << bits) - 1), length, bits)

    @property
    def span(self) -> int:
        """Number of addresses covered: ``2**(bits - length)``."""
        return 1 << (self.bits - self.length)

    @property
    def first(self) -> int:
        """Lowest covered address value."""
        return self.base

    @property
    def last(self) -> int:
        """Highest covered address value."""
        return self.base + self.span - 1

    def contains(self, address: Union[int, NetworkAddress]) -> bool:
        """Whether the block covers ``address``."""
        value = int(address)
        return self.first <= value <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether this block covers all of ``other`` (is a supernet)."""
        return self.first <= other.first and other.last <= self.last

    def xor_distance_to(self, address: Union[int, NetworkAddress]) -> int:
        """Minimum IP (XOR) distance from ``address`` to any covered address.

        §III-B defines the distance between an address and a block as the
        minimum pairwise distance.  Under the XOR metric the host bits can
        always be matched exactly, so the minimum is the XOR of the prefix
        bits alone, shifted back into position — an O(1) computation.
        """
        value = int(address)
        if self.contains(value):
            return 0
        host_bits = self.bits - self.length
        return ((value >> host_bits) ^ (self.base >> host_bits)) << host_bits

    def fraction_of_space(self) -> float:
        """Fraction of the full address space this block covers."""
        return self.span / float(1 << self.bits)

    def __str__(self) -> str:
        if self.bits == 32:
            return f"{NetworkAddress(self.base).to_dotted()}/{self.length}"
        return f"{self.base:#x}/{self.length}"


@dataclass(frozen=True, order=True)
class Announcement:
    """A BGP origination: ``prefix`` is announced by AS ``asn``."""

    prefix: Prefix
    asn: int

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise AddressError(f"AS number must be non-negative, got {self.asn}")

    def __str__(self) -> str:
        return f"{self.prefix} via AS{self.asn}"
