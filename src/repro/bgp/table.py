"""The global BGP prefix table.

Models the Internet default-free-zone routing table that every DMap border
gateway consults: which AS announces which prefix (§III-A).  The paper uses
the APNIC DIX-IE snapshot (~330,000 prefixes covering ~52% of the IPv4
space, §IV-B.1); :mod:`repro.bgp.allocation` synthesizes an equivalent
table offline.

The table supports dynamic announce/withdraw so BGP-churn experiments
(§III-D.1, Fig. 5) can mutate it mid-simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..core.guid import ADDRESS_BITS, NetworkAddress
from ..errors import PrefixTableError
from .interval_index import IntervalIndex
from .prefix import Announcement, Prefix
from .trie import PrefixTrie


class GlobalPrefixTable:
    """Set of BGP announcements with LPM and nearest-prefix queries.

    Internally a :class:`~repro.bgp.trie.PrefixTrie` plus per-AS indexes.
    A frozen :class:`~repro.bgp.interval_index.IntervalIndex` snapshot can
    be built for vectorized bulk experiments.
    """

    def __init__(
        self,
        announcements: Iterable[Announcement] = (),
        bits: int = ADDRESS_BITS,
    ) -> None:
        self.bits = bits
        self._trie = PrefixTrie(bits)
        self._by_asn: Dict[int, Set[Prefix]] = {}
        for ann in announcements:
            self.announce(ann)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def announce(self, announcement: Announcement) -> None:
        """Add an origination.  Re-announcing a prefix from a different AS
        moves it (the old origin loses it), mirroring BGP origin changes."""
        previous = self._trie.insert(announcement)
        if previous is not None:
            owned = self._by_asn.get(previous.asn)
            if owned is not None:
                owned.discard(previous.prefix)
                if not owned:
                    del self._by_asn[previous.asn]
        self._by_asn.setdefault(announcement.asn, set()).add(announcement.prefix)

    def withdraw(self, prefix: Prefix) -> Announcement:
        """Remove an origination; raises if the prefix is not announced."""
        removed = self._trie.withdraw(prefix)
        if removed is None:
            raise PrefixTableError(f"prefix {prefix} is not announced")
        owned = self._by_asn.get(removed.asn)
        if owned is not None:
            owned.discard(prefix)
            if not owned:
                del self._by_asn[removed.asn]
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trie)

    def __iter__(self) -> Iterator[Announcement]:
        return iter(self._trie)

    def __contains__(self, prefix: Prefix) -> bool:
        return self._trie.exact_match(prefix) is not None

    def resolve(
        self, address: Union[int, NetworkAddress]
    ) -> Optional[Announcement]:
        """Longest-prefix match; ``None`` when the address is an IP hole."""
        return self._trie.longest_prefix_match(address)

    def owner_asn(self, address: Union[int, NetworkAddress]) -> Optional[int]:
        """AS that would host a mapping hashed to ``address`` (or ``None``)."""
        ann = self.resolve(address)
        return None if ann is None else ann.asn

    def nearest(
        self, address: Union[int, NetworkAddress]
    ) -> Tuple[Announcement, int]:
        """Nearest announced prefix under the XOR IP-distance metric —
        the deputy-AS selection of Algorithm 1."""
        return self._trie.nearest_prefix(address)

    def prefixes_of(self, asn: int) -> List[Prefix]:
        """All prefixes currently originated by ``asn`` (sorted)."""
        return sorted(self._by_asn.get(asn, ()))

    def asns(self) -> List[int]:
        """All ASs currently announcing at least one prefix (sorted)."""
        return sorted(self._by_asn)

    def announced_span(self) -> int:
        """Addresses covered by at least one announcement (overlaps counted
        once)."""
        return self._trie.announced_span()

    def announcement_ratio(self) -> float:
        """Fraction of the address space that is announced.

        The paper reports 55% for the full IPv4 space (§III-B) and ~52%
        for the DIX-IE snapshot used in simulation (§IV-B.1).
        """
        return self.announced_span() / float(1 << self.bits)

    def representative_address(self, asn: int) -> NetworkAddress:
        """A canonical address inside ``asn``'s announced space — the base
        of its lowest prefix.  Used to mint locators for hosts attached to
        that AS in examples and simulations."""
        prefixes = self.prefixes_of(asn)
        if not prefixes:
            raise PrefixTableError(f"AS {asn} announces no prefixes")
        return NetworkAddress(prefixes[0].base, self.bits)

    def build_interval_index(self) -> IntervalIndex:
        """Frozen vectorized snapshot for bulk LPM (Fig. 6 experiment).

        The snapshot does not track later announce/withdraw calls.
        """
        return IntervalIndex(list(self), bits=self.bits)

    def copy(self) -> "GlobalPrefixTable":
        """Independent copy (used to model inconsistent BGP views)."""
        return GlobalPrefixTable(list(self), bits=self.bits)
