"""Binary trie over announced prefixes: longest-prefix match and
nearest-prefix search under the paper's XOR "IP distance" metric.

This is the reference structure used by the resolver and the simulation.
The vectorized :mod:`repro.bgp.interval_index` gives the same answers for
bulk lookups and is property-tested for agreement with this trie.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

from ..core.guid import ADDRESS_BITS, NetworkAddress
from ..errors import AddressError, EmptyPrefixTableError
from .prefix import Announcement, Prefix


class _TrieNode:
    """One bit-level of the trie.  ``announcement`` is set when a prefix
    terminates exactly here."""

    __slots__ = ("children", "announcement")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.announcement: Optional[Announcement] = None


class PrefixTrie:
    """Binary trie keyed by prefix bits (most-significant bit first).

    Supports insert, withdraw, longest-prefix match, exact match, iteration
    and nearest-announced-prefix search under the XOR metric (the deputy-AS
    fallback of Algorithm 1, line 10).
    """

    def __init__(self, bits: int = ADDRESS_BITS) -> None:
        self.bits = bits
        self._root = _TrieNode()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Announcement]:
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _TrieNode) -> Iterator[Announcement]:
        if node.announcement is not None:
            yield node.announcement
        for child in node.children:
            if child is not None:
                yield from self._iter_node(child)

    def _check_prefix(self, prefix: Prefix) -> None:
        if prefix.bits != self.bits:
            raise AddressError(
                f"prefix width {prefix.bits} does not match trie width {self.bits}"
            )

    def _bit(self, value: int, depth: int) -> int:
        """Bit of ``value`` at trie depth ``depth`` (0 = most significant)."""
        return (value >> (self.bits - 1 - depth)) & 1

    def insert(self, announcement: Announcement) -> Optional[Announcement]:
        """Announce a prefix.  Returns the announcement it replaced, if any
        (the same prefix re-originated by another AS)."""
        prefix = announcement.prefix
        self._check_prefix(prefix)
        node = self._root
        for depth in range(prefix.length):
            bit = self._bit(prefix.base, depth)
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        previous = node.announcement
        node.announcement = announcement
        if previous is None:
            self._count += 1
        return previous

    def withdraw(self, prefix: Prefix) -> Optional[Announcement]:
        """Withdraw a prefix.  Returns the removed announcement, or ``None``
        if the prefix was not announced.  Empty branches are pruned."""
        self._check_prefix(prefix)
        path: List[Tuple[_TrieNode, int]] = []
        node = self._root
        for depth in range(prefix.length):
            bit = self._bit(prefix.base, depth)
            child = node.children[bit]
            if child is None:
                return None
            path.append((node, bit))
            node = child
        removed = node.announcement
        if removed is None:
            return None
        node.announcement = None
        self._count -= 1
        # Prune now-empty nodes bottom-up.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if (
                child is not None
                and child.announcement is None
                and child.children[0] is None
                and child.children[1] is None
            ):
                parent.children[bit] = None
            else:
                break
        return removed

    def exact_match(self, prefix: Prefix) -> Optional[Announcement]:
        """Return the announcement for exactly this prefix, if present."""
        self._check_prefix(prefix)
        node = self._root
        for depth in range(prefix.length):
            bit = self._bit(prefix.base, depth)
            node = node.children[bit]
            if node is None:
                return None
        return node.announcement

    def longest_prefix_match(
        self, address: Union[int, NetworkAddress]
    ) -> Optional[Announcement]:
        """Most-specific announcement covering ``address`` (or ``None``).

        This is the operation the border gateway runs on each hashed value
        (Algorithm 1, line 4).
        """
        value = int(address)
        if not 0 <= value < (1 << self.bits):
            raise AddressError(f"address {value:#x} out of range")
        node = self._root
        best = node.announcement
        for depth in range(self.bits):
            node = node.children[self._bit(value, depth)]
            if node is None:
                break
            if node.announcement is not None:
                best = node.announcement
        return best

    def nearest_prefix(
        self, address: Union[int, NetworkAddress]
    ) -> Tuple[Announcement, int]:
        """Announced prefix with minimum XOR distance to ``address``.

        Implements ``findNearestPrefix`` (Algorithm 1, line 10): after M
        failed rehashes the border gateway picks the deputy AS announcing
        the block closest to the hashed value under the IP-distance metric.

        Returns ``(announcement, distance)``; distance 0 means covered.
        Raises :class:`EmptyPrefixTableError` on an empty table.

        The search is a best-first trie descent: the branch matching the
        address bit costs 0, the other branch costs ``2**(bits-1-depth)``,
        and subtrees whose accumulated cost already exceeds the incumbent
        are pruned.  Expected cost is O(bits) on realistic tables.
        """
        value = int(address)
        if not 0 <= value < (1 << self.bits):
            raise AddressError(f"address {value:#x} out of range")
        if self._count == 0:
            raise EmptyPrefixTableError("nearest_prefix on an empty prefix table")

        best: Optional[Announcement] = None
        best_distance = 1 << (self.bits + 1)  # above any possible distance

        # Explicit stack of (node, depth, accumulated-distance); matching
        # branch pushed last so it is explored first.
        stack: List[Tuple[_TrieNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, depth, acc = stack.pop()
            if acc >= best_distance:
                continue
            if node.announcement is not None and acc < best_distance:
                best = node.announcement
                best_distance = acc
                if best_distance == 0:
                    break
            if depth >= self.bits:
                continue
            bit = self._bit(value, depth)
            weight = 1 << (self.bits - 1 - depth)
            other = node.children[1 - bit]
            if other is not None and acc + weight < best_distance:
                stack.append((other, depth + 1, acc + weight))
            same = node.children[bit]
            if same is not None:
                stack.append((same, depth + 1, acc))

        assert best is not None  # count > 0 guarantees a hit
        return best, best_distance

    def announced_span(self) -> int:
        """Number of addresses covered by at least one announcement.

        Overlapping announcements (a /16 plus a more-specific /24 inside
        it) are counted once.  Used for announcement-ratio accounting
        (the paper's 55%/52% coverage figures, §III-B and §IV-B.1).
        """
        return self._span_under(self._root, self.bits)

    def _span_under(self, node: _TrieNode, remaining_bits: int) -> int:
        if node.announcement is not None:
            return 1 << remaining_bits
        total = 0
        for child in node.children:
            if child is not None:
                total += self._span_under(child, remaining_bits - 1)
        return total
