"""DMap core: GUIDs, mapping entries, the resolver and its policies."""

from .cache import CacheStats, CachingResolver
from .consistency import (
    audit_placement,
    handle_new_announcement,
    is_stale,
    prepare_withdrawal,
    repair_mapping,
)
from .guid import (
    ADDRESS_BITS,
    GUID,
    GUID_BITS,
    MAX_LOCATORS,
    NetworkAddress,
    guid_like,
)
from .mapping import METADATA_BITS, MappingEntry, MappingStore, StoreStats
from .replication import SELECTION_POLICIES, ReplicaSelector, ReplicaSet
from .resolver import (
    Attempt,
    DEFAULT_TIMEOUT_MS,
    DMapResolver,
    LookupResult,
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
    WriteResult,
)

__all__ = [
    "CacheStats",
    "CachingResolver",
    "audit_placement",
    "handle_new_announcement",
    "is_stale",
    "prepare_withdrawal",
    "repair_mapping",
    "ADDRESS_BITS",
    "GUID",
    "GUID_BITS",
    "MAX_LOCATORS",
    "NetworkAddress",
    "guid_like",
    "METADATA_BITS",
    "MappingEntry",
    "MappingStore",
    "StoreStats",
    "SELECTION_POLICIES",
    "ReplicaSelector",
    "ReplicaSet",
    "Attempt",
    "DEFAULT_TIMEOUT_MS",
    "DMapResolver",
    "LookupResult",
    "OUTCOME_HIT",
    "OUTCOME_MISSING",
    "OUTCOME_TIMEOUT",
    "WriteResult",
]
