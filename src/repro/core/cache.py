"""In-network caching on top of basic DMap (§VII future work).

"We also plan to extend the scope of this work by studying a feasible
in-network caching method that builds on top of the basic DMap scheme."

Each AS gateway keeps a TTL-bounded cache of recently resolved bindings.
A cache hit answers in the intra-AS round trip; a miss resolves through
DMap and caches the result.  Because mobility makes cached bindings go
stale (the §II-B "low staleness" requirement that disqualifies DNS), the
cache is *version-aware*: a stale answer is detectable after the fact
(the locator stops working, §III-D.2), at which point the querier
invalidates and re-resolves — the cost model charges that round trip.

The ablation benchmark quantifies the resulting hit-rate / staleness /
latency triangle against the paper's no-cache baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..core.guid import GUID, guid_like
from ..core.mapping import MappingEntry
from ..errors import ConfigurationError
from .resolver import AvailabilityProbe, DMapResolver, LookupResult


@dataclass
class CacheStats:
    """Counters for one caching gateway layer."""

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def staleness_rate(self) -> float:
        """Fraction of cache hits that served an obsolete binding."""
        return self.stale_hits / self.hits if self.hits else 0.0


@dataclass
class _CacheSlot:
    entry: MappingEntry
    expires_at_ms: float


class CachingResolver:
    """Per-AS query cache layered over a :class:`DMapResolver`.

    Parameters
    ----------
    resolver:
        The underlying DMap resolver (shared; the cache adds no replicas).
    ttl_ms:
        Cache entry lifetime.  The TTL bounds staleness: with mean update
        interval T_u, the stale-hit probability is roughly
        ``1 - (T_u/TTL)(1 - exp(-TTL/T_u))`` — the same tradeoff the
        paper's §II-B holds against DNS, now tunable per deployment.

    Notes
    -----
    The wrapper keeps a virtual clock (``now_ms``) advanced by the caller,
    so experiments control the interleaving of queries and moves.
    """

    def __init__(self, resolver: DMapResolver, ttl_ms: float = 10_000.0) -> None:
        if ttl_ms < 0:
            raise ConfigurationError("ttl_ms must be non-negative")
        self.resolver = resolver
        self.ttl_ms = ttl_ms
        self.now_ms = 0.0
        self._caches: Dict[int, Dict[GUID, _CacheSlot]] = {}
        self.stats = CacheStats()

    def advance_time(self, delta_ms: float) -> None:
        """Advance the cache clock (drives TTL expiry)."""
        if delta_ms < 0:
            raise ConfigurationError("time cannot go backwards")
        self.now_ms += delta_ms

    def _cache_of(self, asn: int) -> Dict[GUID, _CacheSlot]:
        cache = self._caches.get(asn)
        if cache is None:
            cache = {}
            self._caches[asn] = cache
        return cache

    def lookup(
        self,
        guid: Union[GUID, int, str],
        source_asn: int,
        probe: Optional[AvailabilityProbe] = None,
    ) -> Tuple[LookupResult, bool]:
        """Resolve through the cache.

        Returns ``(result, was_cached)``.  A *fresh-but-stale* cache hit
        (binding superseded since it was cached) is detected when the
        caller tries to use the locator; this model charges the detection
        immediately: the stale hit pays its fast local answer, is counted
        in :attr:`CacheStats.stale_hits`, the slot is invalidated, and the
        authoritative re-resolution's RTT is added on top — the total is
        what a real querier would experience (§III-D.2 "mark the mapping
        as obsolete, and keep checking").
        """
        guid = guid_like(guid)
        cache = self._cache_of(source_asn)
        slot = cache.get(guid)
        intra_rtt = 2.0 * self.resolver.router.topology.intra_latency(source_asn)

        if slot is not None and slot.expires_at_ms > self.now_ms:
            fresh = self._authoritative_version(guid)
            if fresh is None or slot.entry.version >= fresh:
                self.stats.hits += 1
                result = LookupResult(
                    slot.entry, intra_rtt, source_asn, (), used_local=True
                )
                return result, True
            # Stale: fast wrong answer, then detect + re-resolve.
            self.stats.hits += 1
            self.stats.stale_hits += 1
            self.stats.invalidations += 1
            del cache[guid]
            authoritative = self.resolver.lookup(guid, source_asn, probe=probe)
            cache[guid] = _CacheSlot(
                authoritative.entry, self.now_ms + self.ttl_ms
            )
            combined = LookupResult(
                authoritative.entry,
                intra_rtt + authoritative.rtt_ms,
                authoritative.served_by,
                authoritative.attempts,
                authoritative.used_local,
            )
            return combined, True

        self.stats.misses += 1
        result = self.resolver.lookup(guid, source_asn, probe=probe)
        cache[guid] = _CacheSlot(result.entry, self.now_ms + self.ttl_ms)
        return result, False

    def _authoritative_version(self, guid: GUID) -> Optional[int]:
        """Current binding version, if the resolver tracks this GUID."""
        replica_set = self.resolver.replica_sets.get(guid)
        if replica_set is None:
            return None
        versions = [
            entry.version
            for asn in replica_set.all_asns
            if (entry := self.resolver.store_at(asn).get(guid)) is not None
        ]
        return max(versions) if versions else None

    def invalidate(self, guid: Union[GUID, int, str], asn: Optional[int] = None) -> int:
        """Drop cached copies of ``guid`` (everywhere, or at one AS)."""
        guid = guid_like(guid)
        removed = 0
        caches = [self._caches[asn]] if asn is not None and asn in self._caches else (
            list(self._caches.values()) if asn is None else []
        )
        for cache in caches:
            if cache.pop(guid, None) is not None:
                removed += 1
        self.stats.invalidations += removed
        return removed

    def cached_entries(self) -> int:
        """Total live cache slots across all ASs."""
        return sum(len(c) for c in self._caches.values())
