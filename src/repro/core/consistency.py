"""Consistency protocols for inconsistent GUID→NA mappings (§III-D).

Three sources of inconsistency and their remedies:

* **Prefix withdrawal** — mappings hosted under the withdrawn prefix would
  become unreachable *orphan mappings*.  Before withdrawing, the AS runs
  the IP-hole protocol against the post-withdrawal table to find the
  deputy AS each mapping will now hash to, transfers the entries, and
  deletes its copies (:func:`prepare_withdrawal`).  Subsequent queries hit
  the hole, follow the same protocol, and land on the deputy.
* **New announcement** — hashed values that used to fall in a hole (and
  therefore live at a deputy) now resolve to the announcing AS, which does
  not have them.  On the first missing query the announcing AS pulls the
  mapping over (:func:`repair_mapping` — "GUID migration message",
  a one-time cost).
* **Mobility** — a querier may read the pre-move binding in the window
  between the move and the update's completion.  The binding carries a
  version; :func:`is_stale` lets the querier detect and re-poll (§III-D.2).

All functions operate on a :class:`~repro.core.resolver.DMapResolver`,
whose ``replica_sets`` registry stands in for the per-router bookkeeping a
deployment would keep.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..bgp.prefix import Announcement, Prefix
from ..errors import PrefixTableError
from .guid import GUID, guid_like
from .mapping import MappingEntry
from .replication import ReplicaSet
from .resolver import DMapResolver


def prepare_withdrawal(resolver: DMapResolver, prefix: Prefix) -> int:
    """Withdraw ``prefix``, migrating affected mappings to their deputies.

    Implements the §III-D.1 withdrawal protocol.  Returns the number of
    replica copies migrated.  The resolver's prefix table is mutated (the
    prefix is withdrawn).

    Raises
    ------
    PrefixTableError
        If the prefix is not currently announced.
    """
    table = resolver.table
    if prefix not in table:
        raise PrefixTableError(f"prefix {prefix} is not announced")

    withdrawing_asn = table.withdraw(prefix).asn

    # Which replicas lived under the withdrawn block?  The withdrawing AS
    # scans its own store; the registry tells us which hash chain each
    # copy belongs to so it can be re-resolved independently.
    affected: List[Tuple[GUID, int]] = []
    store = resolver.store_at(withdrawing_asn)
    for entry in list(store):
        replica_set = resolver.replica_sets.get(entry.guid)
        if replica_set is None:
            continue
        for idx, res in enumerate(replica_set.global_replicas):
            if res.asn == withdrawing_asn and prefix.contains(res.address):
                affected.append((entry.guid, idx))

    migrated = 0
    for guid, idx in affected:
        migrated += _relocate_replica(resolver, guid, idx)
    return migrated


def handle_new_announcement(
    resolver: DMapResolver, announcement: Announcement, eager: bool = False
) -> int:
    """Announce a prefix; optionally migrate captured mappings eagerly.

    The paper's protocol is *lazy*: migration happens on the first missing
    query (:func:`repair_mapping`).  ``eager=True`` performs it immediately
    for all registered GUIDs — useful in tests and small deployments.
    Returns the number of replica copies migrated (0 when lazy).
    """
    resolver.table.announce(announcement)
    if not eager:
        return 0
    migrated = 0
    for guid in list(resolver.replica_sets):
        migrated += repair_mapping(resolver, guid)
    return migrated


def repair_mapping(resolver: DMapResolver, guid: Union[GUID, int, str]) -> int:
    """Re-derive ``guid``'s placement and move any mis-hosted replicas.

    This is the "GUID migration message" reaction (§III-D.1): when the
    table changed, a replica's correct host may differ from where the copy
    currently sits.  Each divergent replica is copied to its new host
    (using the freshest surviving version) and removed from the old one if
    no other replica or local copy keeps it there.

    Returns the number of replica copies moved.
    """
    guid = guid_like(guid)
    replica_set = resolver.replica_sets.get(guid)
    if replica_set is None:
        return 0
    moved = 0
    for idx, res in enumerate(replica_set.global_replicas):
        correct = resolver.placer.resolve_one(guid, idx)
        if correct.asn != res.asn or correct.address != res.address:
            moved += _relocate_replica(resolver, guid, idx)
    return moved


def _relocate_replica(resolver: DMapResolver, guid: GUID, index: int) -> int:
    """Move replica ``index`` of ``guid`` to its currently-correct host."""
    replica_set = resolver.replica_sets[guid]
    old = replica_set.global_replicas[index]
    new = resolver.placer.resolve_one(guid, index)
    if new.asn == old.asn and new.address == old.address:
        return 0

    entry = _freshest_entry(resolver, replica_set)
    if entry is not None:
        resolver.store_at(new.asn).insert(entry)

    replicas = list(replica_set.global_replicas)
    replicas[index] = new
    updated = ReplicaSet(guid, tuple(replicas), replica_set.local_asn)
    resolver.replica_sets[guid] = updated

    # Drop the old copy only if nothing else keeps the GUID at that AS.
    if old.asn not in updated.all_asns:
        resolver.store_at(old.asn).delete(guid)
    return 1


def _freshest_entry(
    resolver: DMapResolver, replica_set: ReplicaSet
) -> Union[MappingEntry, None]:
    best: Union[MappingEntry, None] = None
    for asn in replica_set.all_asns:
        entry = resolver.store_at(asn).get(replica_set.guid)
        if entry is not None and (best is None or entry.version > best.version):
            best = entry
    return best


def is_stale(entry: MappingEntry, observed_version: int) -> bool:
    """Whether a cached/fetched binding is older than one already seen.

    §III-D.2: a querier that reaches the host and fails should "mark the
    mapping as obsolete, and keep checking until it receives an updated
    one" — version counters make obsolescence detectable.
    """
    return entry.version < observed_version


def audit_placement(resolver: DMapResolver) -> Dict[str, int]:
    """Verify every registered replica is stored where the registry says.

    Returns counters: ``ok``, ``missing`` (registry says hosted, store
    disagrees), ``mislocated`` (current table maps the replica elsewhere).
    Tests use this to assert churn protocols restore full consistency.
    """
    ok = missing = mislocated = 0
    for guid, replica_set in resolver.replica_sets.items():
        for idx, res in enumerate(replica_set.global_replicas):
            if resolver.store_at(res.asn).get(guid) is None:
                missing += 1
                continue
            correct = resolver.placer.resolve_one(guid, idx)
            if correct.asn != res.asn:
                mislocated += 1
            else:
                ok += 1
    return {"ok": ok, "missing": missing, "mislocated": mislocated}
