"""Globally Unique Identifiers (GUIDs) and network addresses.

The paper assumes flat, location-independent identifiers: "A GUID is a long
bit sequence, such as a public key, that is globally unique" (§I).  We model
GUIDs as 160-bit unsigned integers (the length assumed in §IV-A) and network
addresses (NAs) as 32-bit IPv4 addresses, while keeping both widths
configurable so the scheme extends to other address families (§III-B).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional, Union

import numpy as np

from ..errors import AddressError, GUIDError

#: Default GUID width in bits (paper §IV-A assumes 160-bit flat GUIDs).
GUID_BITS = 160

#: Default network-address width in bits (IPv4).
ADDRESS_BITS = 32

#: Maximum number of locators a single GUID may carry (paper §IV-A assumes
#: up to 5 NAs per entry, accounting for multi-homed devices).
MAX_LOCATORS = 5


@dataclass(frozen=True, order=True)
class GUID:
    """A flat, globally unique identifier.

    Instances are immutable and totally ordered by value so they can be used
    as dictionary keys and sorted deterministically in reports.

    Parameters
    ----------
    value:
        Non-negative integer below ``2**bits``.
    bits:
        Identifier width; defaults to :data:`GUID_BITS`.
    """

    value: int
    bits: int = GUID_BITS

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise GUIDError(f"GUID width must be positive, got {self.bits}")
        if not 0 <= self.value < (1 << self.bits):
            raise GUIDError(
                f"GUID value {self.value:#x} out of range for {self.bits} bits"
            )

    @classmethod
    def from_name(cls, name: Union[str, bytes], bits: int = GUID_BITS) -> "GUID":
        """Derive a GUID by hashing an arbitrary human-readable name.

        Mirrors self-certifying identifiers: the GUID is the (truncated)
        SHA-256 digest of the public name.
        """
        data = name.encode("utf-8") if isinstance(name, str) else name
        digest = hashlib.sha256(data).digest()
        value = int.from_bytes(digest, "big") % (1 << bits)
        return cls(value, bits)

    @classmethod
    def random(cls, rng: np.random.Generator, bits: int = GUID_BITS) -> "GUID":
        """Draw a uniformly random GUID from ``rng``."""
        words = (bits + 63) // 64
        value = 0
        for _ in range(words):
            value = (value << 64) | int(rng.integers(0, 1 << 63) << 1 | rng.integers(0, 2))
        return cls(value % (1 << bits), bits)

    def to_bytes(self) -> bytes:
        """Big-endian byte representation, ``ceil(bits / 8)`` bytes long."""
        return self.value.to_bytes((self.bits + 7) // 8, "big")

    def __str__(self) -> str:
        width = (self.bits + 3) // 4
        return f"guid:{self.value:0{width}x}"

    def __int__(self) -> int:
        return self.value


@dataclass(frozen=True, order=True)
class NetworkAddress:
    """A routable locator (an IPv4 address in today's Internet).

    The paper denotes these NAs; a GUID maps to one or more of them.
    """

    value: int
    bits: int = ADDRESS_BITS

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise AddressError(f"address width must be positive, got {self.bits}")
        if not 0 <= self.value < (1 << self.bits):
            raise AddressError(
                f"address {self.value:#x} out of range for {self.bits} bits"
            )

    @classmethod
    def from_dotted(cls, text: str) -> "NetworkAddress":
        """Parse dotted-quad IPv4 notation, e.g. ``"67.10.12.1"``."""
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"not a dotted-quad IPv4 address: {text!r}")
        value = 0
        for part in parts:
            try:
                octet = int(part)
            except ValueError as exc:
                raise AddressError(f"bad octet {part!r} in {text!r}") from exc
            if not 0 <= octet <= 255:
                raise AddressError(f"octet {octet} out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def to_dotted(self) -> str:
        """Dotted-quad rendering (only meaningful for 32-bit addresses)."""
        if self.bits != 32:
            raise AddressError("dotted-quad rendering requires a 32-bit address")
        octets = [(self.value >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return ".".join(str(o) for o in octets)

    def xor_distance(self, other: "NetworkAddress") -> int:
        """The paper's *IP distance* metric (§III-B).

        ``IP distance[A, B] = sum_i |A_i - B_i| * 2**i`` over bit positions,
        which for binary digits is exactly the XOR metric ``A ^ B``.
        """
        if self.bits != other.bits:
            raise AddressError("cannot compare addresses of different widths")
        return self.value ^ other.value

    def __str__(self) -> str:
        if self.bits == 32:
            return self.to_dotted()
        width = (self.bits + 3) // 4
        return f"na:{self.value:0{width}x}"

    def __int__(self) -> int:
        return self.value


def iter_address_block(base: int, prefix_len: int, bits: int = ADDRESS_BITS) -> Iterator[int]:
    """Yield every address value inside the block ``base/prefix_len``.

    Intended for tests and small blocks only; a /8 has 2**24 members.
    """
    if not 0 <= prefix_len <= bits:
        raise AddressError(f"prefix length {prefix_len} out of range")
    span = 1 << (bits - prefix_len)
    start = base & ~(span - 1) & ((1 << bits) - 1)
    for offset in range(span):
        yield start + offset


def guid_like(value: Union[int, str, GUID], bits: Optional[int] = None) -> GUID:
    """Coerce ints, names or GUIDs into a :class:`GUID`.

    Accepting loose inputs at the public API keeps example code short while
    the internals always operate on proper :class:`GUID` instances.
    """
    if isinstance(value, GUID):
        return value
    if isinstance(value, int):
        return GUID(value, bits or GUID_BITS)
    if isinstance(value, str):
        return GUID.from_name(value, bits or GUID_BITS)
    raise GUIDError(f"cannot interpret {value!r} as a GUID")
