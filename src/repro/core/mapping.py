"""GUID→NA mapping entries and the per-AS mapping store.

A mapping entry binds one GUID to up to :data:`~repro.core.guid.MAX_LOCATORS`
network addresses plus metadata (§IV-A budgets 352 bits per entry:
160-bit GUID + 5×32-bit NAs + 32 bits of meta).  Each AS participating in
DMap runs a :class:`MappingStore` on its gateway-router compute layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError, MappingNotFoundError
from .guid import GUID, MAX_LOCATORS, NetworkAddress

#: Bits of per-entry metadata assumed by the paper's storage model (§IV-A):
#: "type of service, priority and other meta information".
METADATA_BITS = 32


@dataclass(frozen=True)
class MappingEntry:
    """An immutable GUID→NA binding with a version stamp.

    Parameters
    ----------
    guid:
        The identifier being bound.
    locators:
        One or more network addresses, ordered by preference.
    version:
        Monotonically increasing update counter; lets replicas and caches
        reject stale writes (§III-D.2).
    timestamp:
        Simulation time (seconds) the binding was produced.
    """

    guid: GUID
    locators: Tuple[NetworkAddress, ...]
    version: int = 0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.locators:
            raise ConfigurationError("a mapping entry needs at least one locator")
        if len(self.locators) > MAX_LOCATORS:
            raise ConfigurationError(
                f"at most {MAX_LOCATORS} locators per entry, got {len(self.locators)}"
            )
        if self.version < 0:
            raise ConfigurationError("version must be non-negative")

    @property
    def primary_locator(self) -> NetworkAddress:
        """The preferred (first) locator."""
        return self.locators[0]

    def with_locators(
        self, locators: Iterable[NetworkAddress], timestamp: float
    ) -> "MappingEntry":
        """Produce the successor entry after a move/update (version + 1)."""
        return replace(
            self,
            locators=tuple(locators),
            version=self.version + 1,
            timestamp=timestamp,
        )

    def size_bits(self) -> int:
        """Storage footprint following the paper's §IV-A accounting.

        The paper reserves space for the *maximum* number of locators per
        entry (5 × 32 bits) regardless of how many are in use, plus 32 bits
        of metadata: 160 + 160 + 32 = 352 bits.
        """
        return self.guid.bits + MAX_LOCATORS * self.locators[0].bits + METADATA_BITS


@dataclass
class StoreStats:
    """Operation counters for one :class:`MappingStore`."""

    inserts: int = 0
    updates: int = 0
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    deletes: int = 0
    rejected_stale: int = 0


class MappingStore:
    """The GUID→NA table hosted by a single AS.

    The store is deliberately simple — a dict keyed by GUID — because DMap's
    contribution is *where* entries live, not the local data structure.  It
    enforces version monotonicity so replica updates arriving out of order
    (parallel update fan-out, §III-A) cannot roll a binding back.
    """

    def __init__(self, owner_asn: Optional[int] = None) -> None:
        self.owner_asn = owner_asn
        self._entries: Dict[GUID, MappingEntry] = {}
        self.stats = StoreStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, guid: GUID) -> bool:
        return guid in self._entries

    def __iter__(self) -> Iterator[MappingEntry]:
        return iter(self._entries.values())

    def insert(self, entry: MappingEntry) -> bool:
        """Store ``entry``; returns ``False`` if a newer version was present.

        Both GUID Insert and GUID Update requests land here — the paper
        processes them identically (§III-A).
        """
        current = self._entries.get(entry.guid)
        if current is not None and current.version > entry.version:
            self.stats.rejected_stale += 1
            return False
        if current is None:
            self.stats.inserts += 1
        else:
            self.stats.updates += 1
        self._entries[entry.guid] = entry
        return True

    def lookup(self, guid: GUID) -> MappingEntry:
        """Return the stored entry or raise :class:`MappingNotFoundError`.

        A miss models the "GUID missing" reply an AS sends when a query
        reaches it but the mapping is absent (BGP churn, §IV-B.2b).
        """
        self.stats.lookups += 1
        entry = self._entries.get(guid)
        if entry is None:
            self.stats.misses += 1
            raise MappingNotFoundError(guid, self.owner_asn)
        self.stats.hits += 1
        return entry

    def get(self, guid: GUID) -> Optional[MappingEntry]:
        """Non-raising variant of :meth:`lookup` (does not touch stats)."""
        return self._entries.get(guid)

    def delete(self, guid: GUID) -> bool:
        """Remove a mapping; returns whether it was present."""
        if guid in self._entries:
            del self._entries[guid]
            self.stats.deletes += 1
            return True
        return False

    def pop_all(self) -> List[MappingEntry]:
        """Remove and return every entry (used for prefix-withdrawal
        migration to a deputy AS, §III-D.1)."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    def entries_for_guids(self, guids: Iterable[GUID]) -> List[MappingEntry]:
        """Return stored entries for the given GUIDs, skipping absentees."""
        return [self._entries[g] for g in guids if g in self._entries]

    def storage_bits(self) -> int:
        """Total storage footprint of this store per the §IV-A model."""
        return sum(entry.size_bits() for entry in self._entries.values())
