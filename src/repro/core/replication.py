"""Replica placement bookkeeping and replica-selection policies.

DMap stores K copies of each mapping at the ASs that Algorithm 1 derives,
plus (optionally) a *local* copy at the AS the GUID currently attaches to
(§III-C).  At lookup time the querying node picks the replica expected to
respond fastest; the paper evaluates two selection criteria:

* ``"latency"`` — lowest estimated response time (their headline results;
  they note "the querying node has sufficient information to choose the
  location with the lowest response time", §IV-B.2);
* ``"hops"`` — least AS-path hop count, which is what BGP actually exposes
  today; the paper reports "similar results albeit with marginally
  increased latencies".

``"random"`` is included as a null policy for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..hashing.rehash import HashResolution
from ..topology.routing import Router
from .guid import GUID

#: Selection policies understood by :class:`ReplicaSelector`.
SELECTION_POLICIES = ("latency", "hops", "random")


@dataclass(frozen=True)
class ReplicaSet:
    """Where the replicas of one GUID live right now.

    Attributes
    ----------
    guid:
        The mapped identifier.
    global_replicas:
        K resolutions in hash-function order (AS may repeat if two hash
        chains land in the same AS).
    local_asn:
        AS holding the additional local copy (§III-C), if enabled.
    """

    guid: GUID
    global_replicas: Tuple[HashResolution, ...]
    local_asn: Optional[int] = None

    @property
    def global_asns(self) -> Tuple[int, ...]:
        """Hosting AS numbers of the K global replicas, in replica order."""
        return tuple(res.asn for res in self.global_replicas)

    @property
    def all_asns(self) -> Tuple[int, ...]:
        """Global replica ASs plus the local-copy AS (deduplicated,
        preserving order)."""
        seen: Dict[int, None] = {}
        for asn in self.global_asns:
            seen.setdefault(asn, None)
        if self.local_asn is not None:
            seen.setdefault(self.local_asn, None)
        return tuple(seen)


class ReplicaSelector:
    """Orders candidate replica ASs for a querying node.

    Parameters
    ----------
    router:
        Latency/hop oracle over the topology.
    policy:
        One of :data:`SELECTION_POLICIES`.
    rng:
        Only used by the ``"random"`` policy.
    """

    def __init__(
        self,
        router: Router,
        policy: str = "latency",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if policy not in SELECTION_POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; expected one of {SELECTION_POLICIES}"
            )
        self.router = router
        self.policy = policy
        self.rng = rng or np.random.default_rng(0)

    def order_candidates(
        self, source_asn: int, candidate_asns: Sequence[int]
    ) -> List[int]:
        """Candidates sorted best-first under the policy.

        Duplicates are removed (two hash functions landing in one AS give
        a single queryable host).  The order determines the retry sequence
        after a timeout or a "GUID missing" reply (§III-D.3).
        """
        unique: List[int] = []
        seen = set()
        for asn in candidate_asns:
            if asn not in seen:
                seen.add(asn)
                unique.append(asn)
        if not unique:
            raise ConfigurationError("no candidate replicas to order")
        if self.policy == "random":
            order = self.rng.permutation(len(unique))
            return [unique[i] for i in order]
        if self.policy == "latency":
            latencies = self.router.one_way_to_many(
                source_asn, np.asarray(unique, dtype=np.int64)
            )
            ranked = np.argsort(latencies, kind="stable")
            return [unique[int(i)] for i in ranked]
        # hops
        row = self.router.hop_row(source_asn)
        topo = self.router.topology
        src_idx = topo.index_of(source_asn)
        hop_counts = []
        for asn in unique:
            idx = topo.index_of(asn)
            hop_counts.append(0.0 if idx == src_idx else float(row[idx]))
        ranked = np.argsort(np.asarray(hop_counts), kind="stable")
        return [unique[int(i)] for i in ranked]

    def best_rtt_ms(self, source_asn: int, candidate_asns: Sequence[int]) -> float:
        """Round-trip time to the best candidate under the policy."""
        best = self.order_candidates(source_asn, candidate_asns)[0]
        return self.router.rtt_ms(source_asn, best)
