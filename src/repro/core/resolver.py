"""The DMap resolver: GUID Insert / Update / Lookup over shared hosting.

This is the paper's contribution (§III).  A border gateway receiving a
request:

1. applies the K agreed-upon hash functions to the GUID;
2. resolves each hashed value to an announced prefix via its BGP table,
   re-hashing through IP holes (Algorithm 1);
3. sends the insert/update to all K hosting ASs *in parallel* — the update
   latency is the **max** of the K round trips — or sends the lookup to
   the best replica, falling back to the next ones on failure: the lookup
   latency is the round trip to the chosen replica, plus any failed
   attempts before it (§III-A, §III-D.3);
4. optionally maintains an extra *local* replica in the GUID's current
   attachment AS, queried in parallel with the global lookup (§III-C).

:class:`DMapResolver` executes this protocol instantly and *accounts* for
the time each step would take on the topology (the same arithmetic the
paper's event simulator performs); :mod:`repro.sim` replays the identical
protocol through a true discrete-event engine with queues and timeouts,
and the two are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bgp.table import GlobalPrefixTable
from ..errors import ConfigurationError, LookupFailedError, MappingNotFoundError
from ..hashing.hashers import HashFamily, Sha256Hasher
from ..hashing.rehash import DEFAULT_MAX_REHASHES, GuidPlacer
from ..obs.trace import (
    FAILURE_EXHAUSTED,
    NULL_TRACER,
    AttemptTrace,
    PlacementRecord,
    QueryTrace,
    Tracer,
    hash_index_of,
    placement_records,
)
from ..topology.routing import Router
from .guid import GUID, NetworkAddress, guid_like
from .mapping import MappingEntry, MappingStore
from .replication import ReplicaSelector, ReplicaSet

#: Lookup attempt outcomes (see :class:`Attempt`).
OUTCOME_HIT = "hit"
OUTCOME_MISSING = "missing"
OUTCOME_TIMEOUT = "timeout"

#: An availability oracle: maps (asn, guid) to one of the outcomes above.
#: Used to inject BGP-churn staleness and router failures (Fig. 5, §III-D).
AvailabilityProbe = Callable[[int, GUID], str]

#: Paper-informed retry timeout: WiFi/IP handoff protocols are "on the
#: order of 0.5-1 second" (§IV-B.2a); we time out a dead replica at 1 s.
DEFAULT_TIMEOUT_MS = 1000.0


@dataclass(frozen=True)
class Attempt:
    """One contact with a replica during a lookup."""

    asn: int
    outcome: str
    cost_ms: float


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a successful GUID lookup.

    Attributes
    ----------
    entry:
        The mapping that was found.
    rtt_ms:
        Full round-trip response time, including failed attempts.
    served_by:
        AS that answered.
    attempts:
        Every replica contacted, in order.
    used_local:
        Whether the parallel local-replica query won the race (§III-C).
    """

    entry: MappingEntry
    rtt_ms: float
    served_by: int
    attempts: Tuple[Attempt, ...]
    used_local: bool

    @property
    def locators(self) -> Tuple[NetworkAddress, ...]:
        """Locators bound to the GUID."""
        return self.entry.locators


@dataclass(frozen=True)
class WriteResult:
    """Outcome of an insert or update.

    ``rtt_ms`` is the slowest of the K parallel replica writes — the time
    after which the new binding is globally visible (§III-A).
    """

    replica_set: ReplicaSet
    rtt_ms: float
    per_replica_rtt_ms: Tuple[float, ...]


class DMapResolver:
    """In-memory execution of the DMap protocol over a topology + BGP table.

    Parameters
    ----------
    table:
        Global BGP prefix table (every gateway's routing view).
    router:
        Latency/hop oracle; also identifies the participating ASs.
    k:
        Replication factor (ignored if ``hash_family`` is given).
    hash_family:
        The pre-agreed hash functions; defaults to salted SHA-256.
    selection_policy:
        Replica-choice criterion: ``"latency"`` (paper default),
        ``"hops"`` or ``"random"``.
    local_replica:
        Maintain the extra attachment-AS copy of §III-C.
    max_rehashes:
        M of Algorithm 1.
    timeout_ms:
        Floor for the adaptive replica timeout (§III-D.3).
    placer:
        Override the placement scheme: anything exposing ``k``,
        ``resolve_one``, ``resolve_all`` and ``hosting_asns`` (e.g. the
        §VII variants in :mod:`repro.hashing.asnum_placer`).  Defaults to
        address-space hashing (Algorithm 1).
    tracer:
        Per-query trace sink (:mod:`repro.obs`).  Defaults to the shared
        no-op tracer, which the lookup path checks once per call.
    """

    def __init__(
        self,
        table: GlobalPrefixTable,
        router: Router,
        k: int = 5,
        hash_family: Optional[HashFamily] = None,
        selection_policy: str = "latency",
        local_replica: bool = True,
        max_rehashes: int = DEFAULT_MAX_REHASHES,
        timeout_ms: float = DEFAULT_TIMEOUT_MS,
        selection_rng: Optional[np.random.Generator] = None,
        placer=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if timeout_ms <= 0:
            raise ConfigurationError("timeout_ms must be positive")
        self.table = table
        self.router = router
        self.hash_family = hash_family or Sha256Hasher(k, address_bits=table.bits)
        self.placer = placer or GuidPlacer(self.hash_family, table, max_rehashes)
        self.selector = ReplicaSelector(router, selection_policy, selection_rng)
        self.local_replica = local_replica
        self.timeout_ms = timeout_ms
        # Explicit None check: an empty CollectingTracer is falsy (len 0).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stores: Dict[int, MappingStore] = {}
        # Instrumentation: current placement of every inserted GUID.  Real
        # DMap routers derive this statelessly; the registry exists so
        # experiments and the churn protocol can enumerate affected GUIDs.
        self.replica_sets: Dict[GUID, ReplicaSet] = {}

    # ------------------------------------------------------------------
    # Store plumbing
    # ------------------------------------------------------------------
    def store_at(self, asn: int) -> MappingStore:
        """The mapping store of ``asn`` (created on first use)."""
        store = self.stores.get(asn)
        if store is None:
            store = MappingStore(owner_asn=asn)
            self.stores[asn] = store
        return store

    @property
    def k(self) -> int:
        """Replication factor."""
        return self.placer.k

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def insert(
        self,
        guid: Union[GUID, int, str],
        locators: Sequence[NetworkAddress],
        source_asn: int,
        time: float = 0.0,
    ) -> WriteResult:
        """GUID Insert: create the binding at the K derived ASs.

        ``source_asn`` is the AS the host is attached to; with
        ``local_replica`` enabled it also receives a copy (§III-C).
        """
        guid = guid_like(guid)
        entry = MappingEntry(guid, tuple(locators), version=0, timestamp=time)
        return self._write(entry, source_asn)

    def update(
        self,
        guid: Union[GUID, int, str],
        locators: Sequence[NetworkAddress],
        source_asn: int,
        time: float = 0.0,
    ) -> WriteResult:
        """GUID Update: re-bind after a move / locator change.

        Processed like an insert (§III-A); the version is advanced past
        the newest replica we previously wrote so stale copies lose.
        """
        guid = guid_like(guid)
        version = 0
        previous = self.replica_sets.get(guid)
        if previous is not None:
            for asn in previous.all_asns:
                existing = self.store_at(asn).get(guid)
                if existing is not None:
                    version = max(version, existing.version + 1)
            if previous.local_asn is not None and previous.local_asn != source_asn:
                # The host left its old AS; the old local copy is retired.
                self.store_at(previous.local_asn).delete(guid)
        entry = MappingEntry(guid, tuple(locators), version=version, timestamp=time)
        return self._write(entry, source_asn)

    def _write(self, entry: MappingEntry, source_asn: int) -> WriteResult:
        resolutions = self.placer.resolve_all(entry.guid)
        rtts: List[float] = []
        for res in resolutions:
            self.store_at(res.asn).insert(entry)
            rtts.append(self.router.rtt_ms(source_asn, res.asn))
        local_asn: Optional[int] = None
        if self.local_replica:
            local_asn = source_asn
            self.store_at(source_asn).insert(entry)
            # Local write is intra-AS; it never dominates the parallel max.
        replica_set = ReplicaSet(entry.guid, tuple(resolutions), local_asn)
        self.replica_sets[entry.guid] = replica_set
        return WriteResult(replica_set, max(rtts), tuple(rtts))

    def delete(self, guid: Union[GUID, int, str]) -> int:
        """Remove a GUID's replicas everywhere; returns copies deleted."""
        guid = guid_like(guid)
        replica_set = self.replica_sets.pop(guid, None)
        removed = 0
        asns: Iterable[int]
        if replica_set is not None:
            asns = replica_set.all_asns
        else:  # stateless fallback: derive from hashing
            asns = set(self.placer.hosting_asns(guid))
        for asn in asns:
            if self.store_at(asn).delete(guid):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup(
        self,
        guid: Union[GUID, int, str],
        source_asn: int,
        probe: Optional[AvailabilityProbe] = None,
        is_down: Optional[Callable[[int], bool]] = None,
        time: float = 0.0,
    ) -> LookupResult:
        """GUID Lookup from a host attached to ``source_asn``.

        The local and global lookups race in parallel (§III-C); the global
        side walks replicas best-first, paying a full round trip for each
        "GUID missing" reply and ``timeout_ms`` for each dead AS
        (§III-D.3).  ``probe`` injects churn/failure outcomes; by default
        every replica that stores the mapping answers.  ``is_down`` marks
        ASs whose mapping service drops requests outright — it only
        affects the querier's own AS here (a down *replica* is expressed
        through ``probe`` returning a timeout), mirroring the DES where a
        down source swallows the local-branch request.

        The local branch is only launched when the source AS is not
        itself a global candidate (otherwise the global walk covers it),
        and ties go to the local reply — in the event simulation the
        local request is issued first, so at equal arrival times its
        response is scheduled, and therefore delivered, first.

        A "GUID missing" reply from a replica that *should* host the
        mapping triggers the §III-D.1 lazy migration pull, exactly like
        the DES's genuine-miss hook; the pull is asynchronous and adds no
        latency to this lookup.

        Raises
        ------
        LookupFailedError
            If every replica fails.  The elapsed time accounts for the
            slower of the two branches: the failed global walk and the
            local miss (or local timeout, when the source AS is down).
        """
        guid = guid_like(guid)
        tracing = self.tracer.enabled
        placement: Tuple[PlacementRecord, ...] = ()
        if tracing:
            # The placement records carry the Algorithm 1 provenance the
            # trace wants; their ASNs are exactly ``hosting_asns``.
            placement = placement_records(self.placer, guid)
            candidates: Sequence[int] = [record.asn for record in placement]
        else:
            candidates = self.placer.hosting_asns(guid)
        ordered = self.selector.order_candidates(source_asn, candidates)

        # Parallel local branch: a same-AS copy answers in the intra-AS RTT.
        local_end: Optional[float] = None
        local_entry: Optional[MappingEntry] = None
        local_outcome: Optional[str] = None
        # Churn staleness does not affect the local branch: the querier and
        # the local store share one BGP view (same convention as the DES).
        if self.local_replica and source_asn not in ordered:
            if is_down is not None and is_down(source_asn):
                # The querier's own mapping service is down: the local
                # request vanishes and its adaptive timer expires instead.
                local_end = max(
                    self.timeout_ms,
                    2.0 * self.router.rtt_ms(source_asn, source_asn),
                )
                local_outcome = OUTCOME_TIMEOUT
            else:
                local_entry = self.store_at(source_asn).get(guid)
                local_end = 2.0 * self.router.topology.intra_latency(source_asn)
                local_outcome = (
                    OUTCOME_HIT if local_entry is not None else OUTCOME_MISSING
                )

        attempts: List[Attempt] = []
        elapsed = 0.0
        for asn in ordered:
            if local_entry is not None and local_end <= elapsed:
                # The local reply arrived before this attempt was sent.
                if tracing:
                    self._emit_lookup_trace(
                        guid, source_asn, time, placement, attempts,
                        local_outcome, local_end, True, source_asn,
                        local_end, None,
                    )
                return LookupResult(
                    local_entry, local_end, source_asn, tuple(attempts), True
                )
            rtt = self.router.rtt_ms(source_asn, asn)
            outcome = OUTCOME_HIT
            if probe is not None:
                outcome = probe(asn, guid)
            if outcome == OUTCOME_HIT:
                try:
                    entry = self.store_at(asn).lookup(guid)
                except MappingNotFoundError:
                    outcome = OUTCOME_MISSING
                    self._lazy_migrate(guid, asn)
            if outcome == OUTCOME_HIT:
                elapsed += rtt
                attempts.append(Attempt(asn, OUTCOME_HIT, rtt))
                if local_entry is not None and local_end <= elapsed:
                    # The parallel local query answered first (§III-C).
                    if tracing:
                        self._emit_lookup_trace(
                            guid, source_asn, time, placement, attempts,
                            local_outcome, local_end, True, source_asn,
                            local_end, None,
                        )
                    return LookupResult(
                        local_entry, local_end, source_asn, tuple(attempts), True
                    )
                if tracing:
                    self._emit_lookup_trace(
                        guid, source_asn, time, placement, attempts,
                        local_outcome, local_end, False, asn, elapsed, None,
                    )
                return LookupResult(entry, elapsed, asn, tuple(attempts), False)
            if outcome == OUTCOME_MISSING:
                # The AS answers quickly with "GUID missing": one round trip.
                elapsed += rtt
                attempts.append(Attempt(asn, OUTCOME_MISSING, rtt))
            elif outcome == OUTCOME_TIMEOUT:
                # Adaptive timeout, mirroring the event simulation: never
                # below the floor, never below twice the expected RTT.
                timeout = max(self.timeout_ms, 2.0 * rtt)
                elapsed += timeout
                attempts.append(Attempt(asn, OUTCOME_TIMEOUT, timeout))
            else:
                raise ConfigurationError(f"probe returned unknown outcome {outcome!r}")

        if local_entry is not None:
            if tracing:
                self._emit_lookup_trace(
                    guid, source_asn, time, placement, attempts,
                    local_outcome, local_end, True, source_asn, local_end, None,
                )
            return LookupResult(
                local_entry, local_end, source_asn, tuple(attempts), True
            )
        if local_end is not None:
            # The local branch ran but answered "missing" (or its timer
            # expired): the lookup fails when the later branch ends.
            elapsed = max(elapsed, local_end)
        if tracing:
            self._emit_lookup_trace(
                guid, source_asn, time, placement, attempts,
                local_outcome, local_end, False, None, elapsed,
                FAILURE_EXHAUSTED,
            )
        raise LookupFailedError(guid, elapsed, len(attempts))

    def _emit_lookup_trace(
        self,
        guid: GUID,
        source_asn: int,
        issued_at: float,
        placement: Tuple[PlacementRecord, ...],
        attempts: Sequence[Attempt],
        local_outcome: Optional[str],
        local_end: Optional[float],
        used_local: bool,
        served_by: Optional[int],
        rtt_ms: float,
        failure_cause: Optional[str],
    ) -> None:
        """Build and record the :class:`QueryTrace` for one lookup."""
        self.tracer.record(
            QueryTrace(
                guid_value=guid.value,
                source_asn=source_asn,
                issued_at=issued_at,
                k=len(placement),
                placement=placement,
                attempts=tuple(
                    AttemptTrace(
                        attempt.asn,
                        hash_index_of(placement, attempt.asn),
                        attempt.outcome,
                        attempt.cost_ms,
                    )
                    for attempt in attempts
                ),
                local_launched=local_end is not None,
                local_outcome=local_outcome,
                local_end_ms=local_end,
                used_local=used_local,
                served_by=served_by,
                rtt_ms=rtt_ms,
                success=failure_cause is None,
                failure_cause=failure_cause,
            )
        )

    def _lazy_migrate(self, guid: GUID, asn: int) -> None:
        """§III-D.1 lazy pull after a genuine miss at a hosting AS.

        Mirrors the DES miss hook: the first query that reaches an AS the
        current table says should host the mapping — and finds it absent —
        makes that AS pull the entry from the closest AS still holding a
        copy.  The pull is a background migration message, so no latency
        is charged to the triggering lookup.
        """
        donors = sorted(
            donor
            for donor, store in self.stores.items()
            if donor != asn and store.get(guid) is not None
        )
        if not donors:
            return
        donor, _latency = self.router.closest_of(
            asn, np.asarray(donors, dtype=np.int64)
        )
        entry = self.store_at(int(donor)).get(guid)
        if entry is not None:
            self.store_at(asn).insert(entry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_load(self) -> Dict[int, int]:
        """Entries currently stored per AS (global + local copies)."""
        return {asn: len(store) for asn, store in self.stores.items() if len(store)}

    def total_entries(self) -> int:
        """Total replica copies stored across all ASs."""
        return sum(len(store) for store in self.stores.values())
