"""Exception hierarchy for the DMap reproduction.

All library-raised exceptions derive from :class:`DMapError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class DMapError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(DMapError):
    """A component was constructed or invoked with invalid parameters."""


class GUIDError(DMapError):
    """A GUID could not be parsed or is malformed."""


class AddressError(DMapError):
    """A network address or prefix is malformed or out of range."""


class PrefixTableError(DMapError):
    """An operation on the global prefix table failed."""


class EmptyPrefixTableError(PrefixTableError):
    """A lookup was attempted against a prefix table with no announcements."""


class MappingNotFoundError(DMapError):
    """A GUID lookup reached a host that does not store the mapping."""

    def __init__(self, guid: object, where: object = None) -> None:
        self.guid = guid
        self.where = where
        suffix = f" at AS {where}" if where is not None else ""
        super().__init__(f"no mapping stored for GUID {guid!r}{suffix}")


class StaleMappingError(DMapError):
    """A resolved locator is known to be obsolete (host moved; §III-D.2)."""


class LookupFailedError(DMapError):
    """Every replica failed to answer a lookup (all K copies lost/stale).

    Carries the time already spent so callers can account for it.
    """

    def __init__(self, guid: object, elapsed_ms: float, attempts: int) -> None:
        self.guid = guid
        self.elapsed_ms = elapsed_ms
        self.attempts = attempts
        super().__init__(
            f"lookup of {guid!r} failed after {attempts} attempts "
            f"({elapsed_ms:.1f} ms elapsed)"
        )


class TopologyError(DMapError):
    """The AS-level topology is malformed or missing required attributes."""


class RoutingError(TopologyError):
    """No route exists between two ASs, or a routing query was invalid."""


class SimulationError(DMapError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(DMapError):
    """A workload generator was configured or driven incorrectly."""


class WireProtocolError(DMapError):
    """A wire frame could not be encoded or decoded (:mod:`repro.net`)."""


class ClusterError(DMapError):
    """A live serving cluster was configured or driven incorrectly."""


class WriteFailedError(DMapError):
    """A live insert/update did not reach every replica (:mod:`repro.net`).

    Carries the replicas that did acknowledge so callers can reason
    about partial writes.
    """

    def __init__(self, guid: object, acked: int, expected: int) -> None:
        self.guid = guid
        self.acked = acked
        self.expected = expected
        super().__init__(
            f"write of {guid!r} acknowledged by {acked}/{expected} replicas"
        )
