"""Experiment drivers regenerating every table and figure of the paper.

| Id | Artifact | Driver |
|----|----------|--------|
| E1 | Fig. 4 — response-time CDF, K ∈ {1,3,5}     | :mod:`.fig4_response_time` |
| E2 | Table I — latency stats, K ∈ {1,5}          | :mod:`.table1_stats` |
| E3 | Fig. 5 — BGP-churn impact                   | :mod:`.fig5_churn` |
| E4 | Fig. 6 — Normalized Load Ratio CDF          | :mod:`.fig6_load` |
| E5 | Fig. 7 — analytical bound vs K              | :mod:`.fig7_analytical` |
| E6 | §IV-A — storage/traffic overhead            | :mod:`.storage_overhead` |
| E7 | §III-B — IP-hole rehash probabilities       | :mod:`.rehash_probe` |
| E8 | §II-B/§VI — baseline comparison             | :mod:`.baselines_compare` |

Run any of them: ``python -m repro.experiments <id|name> [--scale ...]``.
"""

from .baselines_compare import BaselineComparisonResult, run_baseline_comparison
from .common import Environment, SCALES, Scale, get_environment, resolve_scale
from .fig4_response_time import Fig4Result, run_fig4
from .fig5_churn import Fig5Result, run_fig5
from .fig6_load import Fig6Result, run_fig6
from .fig7_analytical import Fig7Result, calibrate_constants, run_fig7
from .rehash_probe import RehashResult, run_rehash_probe
from .storage_overhead import OverheadResult, run_storage_overhead
from .table1_stats import PAPER_TABLE1, Table1Result, run_table1

__all__ = [
    "BaselineComparisonResult",
    "run_baseline_comparison",
    "Environment",
    "SCALES",
    "Scale",
    "get_environment",
    "resolve_scale",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "calibrate_constants",
    "run_fig7",
    "RehashResult",
    "run_rehash_probe",
    "OverheadResult",
    "run_storage_overhead",
    "PAPER_TABLE1",
    "Table1Result",
    "run_table1",
]
