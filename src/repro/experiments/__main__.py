"""Command-line driver: ``python -m repro.experiments <experiment> [opts]``.

Examples::

    python -m repro.experiments fig4
    python -m repro.experiments table1 --scale medium
    python -m repro.experiments all --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from . import (
    baselines_compare,
    fig4_response_time,
    fig5_churn,
    fig6_load,
    fig7_analytical,
    rehash_probe,
    storage_overhead,
    table1_stats,
)

EXPERIMENTS: Dict[str, Callable[[Optional[str]], object]] = {
    "fig4": fig4_response_time.main,
    "table1": table1_stats.main,
    "fig5": fig5_churn.main,
    "fig6": fig6_load.main,
    "fig7": fig7_analytical.main,
    "overhead": storage_overhead.main,
    "rehash": rehash_probe.main,
    "baselines": baselines_compare.main,
}

ALIASES = {
    "e1": "fig4",
    "e2": "table1",
    "e3": "fig5",
    "e4": "fig6",
    "e5": "fig7",
    "e6": "overhead",
    "e7": "rehash",
    "e8": "baselines",
}


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="one of: %s, or 'all'" % ", ".join(sorted(EXPERIMENTS)),
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["small", "medium", "paper"],
        help="substrate/workload scale (default: REPRO_SCALE env var or small)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=["scalar", "fastpath", "bulk"],
        help="execution engine for fig4/fig6 (fig4: scalar|fastpath, "
        "default scalar; fig6: scalar|bulk|fastpath, default bulk)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the fastpath shard runner (fig4 only; "
        "0 = all cores)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write per-query JSONL traces (plus a run manifest) there "
        "(fig4 only; forces --jobs 1); summarize later with "
        "'python -m repro.obs summarize-traces PATH'",
    )
    args = parser.parse_args(argv)
    if args.jobs == 0:
        from ..fastpath.runner import default_jobs

        args.jobs = default_jobs()

    name = ALIASES.get(args.experiment, args.experiment)
    if args.trace is not None and name != "fig4":
        parser.error("--trace is only supported by fig4")
    if name == "all":
        for key in EXPERIMENTS:
            print(f"=== {key} ===")
            EXPERIMENTS[key](args.scale)
            print()
        return 0
    runner = EXPERIMENTS.get(name)
    if runner is None:
        parser.error(f"unknown experiment {args.experiment!r}")
    if name == "fig4":
        fig4_response_time.main(
            args.scale,
            engine=args.engine or "scalar",
            n_jobs=args.jobs,
            trace_path=args.trace,
        )
    elif name == "fig6":
        fig6_load.main(args.scale, engine=args.engine or "bulk")
    else:
        if args.engine is not None:
            parser.error(f"--engine is not supported by {name!r}")
        runner(args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
