"""E8 — DMap vs the §II-B/§VI baseline schemes (ablation comparison).

Not a numbered figure in the paper, but the quantitative backbone of its
related-work argument: multi-hop DHT mapping takes ~log N overlay hops
("up to 8 logical hops ... about 900 ms"), one-hop DHTs match DMap's
latency only by paying linear membership-maintenance traffic, MobileIP
binds every query to the home agent's location, and DNS-style caching
trades staleness for latency.  This experiment runs one workload through
all five schemes and reports latency, overlay hops, and maintenance
overhead side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines.base import BaselineResolver
from ..baselines.dht import ChordDHT
from ..baselines.dns_like import DNSLike
from ..baselines.mobileip import MobileIP
from ..baselines.onehop_dht import OneHopDHT
from ..core.resolver import DMapResolver
from ..sim.metrics import LatencySummary, summarize
from ..workload.generator import EventKind, WorkloadConfig, WorkloadGenerator
from .common import Environment, get_environment
from .reporting import format_table


@dataclass
class SchemeStats:
    """One comparison row."""

    name: str
    latency: LatencySummary
    mean_overlay_hops: float
    maintenance_bps: float


@dataclass
class BaselineComparisonResult:
    """All schemes over the same workload."""

    scale: str
    stats: List[SchemeStats]

    def render(self) -> str:
        rows = [
            [
                s.name,
                f"{s.latency.mean:.1f}",
                f"{s.latency.median:.1f}",
                f"{s.latency.p95:.1f}",
                f"{s.mean_overlay_hops:.2f}",
                f"{s.maintenance_bps:.0f}",
            ]
            for s in self.stats
        ]
        return "\n".join(
            [
                f"Baseline comparison ({self.scale} scale)",
                format_table(
                    [
                        "scheme",
                        "mean [ms]",
                        "median [ms]",
                        "95th [ms]",
                        "overlay hops",
                        "maintenance [bps/node]",
                    ],
                    rows,
                ),
            ]
        )

    def by_name(self) -> Dict[str, SchemeStats]:
        return {s.name: s for s in self.stats}


def run_baseline_comparison(
    scale: Optional[str] = None,
    k: int = 5,
    seed: int = 0,
    environment: Optional[Environment] = None,
    workload_override: Optional[WorkloadConfig] = None,
) -> BaselineComparisonResult:
    """Drive the identical insert+lookup stream through every scheme."""
    env = environment or get_environment(scale, seed)
    cfg = workload_override or WorkloadConfig(
        n_guids=min(env.scale.n_guids, 5_000),
        n_lookups=min(env.scale.n_lookups, 20_000),
        seed=seed,
    )
    workload = WorkloadGenerator(env.topology, cfg).generate()

    dmap = DMapResolver(env.table, env.router, k=k)
    baselines: List[BaselineResolver] = [
        ChordDHT(env.router),
        OneHopDHT(env.router),
        MobileIP(env.router),
        DNSLike(env.router),
    ]

    stats: List[SchemeStats] = []

    dmap_rtts = workload.run_through_resolver(dmap, env.table)
    stats.append(
        SchemeStats(f"dmap (K={k})", summarize(dmap_rtts), 1.0, 0.0)
    )

    for scheme in baselines:
        rtts: List[float] = []
        hops: List[int] = []
        for event in workload.events:
            if event.kind is EventKind.LOOKUP:
                if isinstance(scheme, DNSLike):
                    scheme.advance_time(5.0)  # TTLs tick between queries
                outcome = scheme.lookup(event.guid, event.source_asn)
                rtts.append(outcome.rtt_ms)
                hops.append(outcome.overlay_hops)
            else:
                locator = workload.locator_for(event.guid, env.table)
                scheme.insert(event.guid, [locator], event.source_asn)
        stats.append(
            SchemeStats(
                scheme.name,
                summarize(rtts),
                float(np.mean(hops)) if hops else 0.0,
                scheme.maintenance_overhead_bps(),
            )
        )
    return BaselineComparisonResult(env.scale.name, stats)


def main(scale: Optional[str] = None) -> BaselineComparisonResult:
    """CLI entry point: run and print."""
    result = run_baseline_comparison(scale)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
