"""Shared experiment infrastructure: scales, environments, caching.

Every evaluation artifact in the paper runs over the same substrate — the
DIMES-derived AS topology and the DIX-IE prefix table.  Experiments here
share one :class:`Environment` per (scale, seed), cached on disk so the
expensive paper-scale topology is generated once.

Three scales:

* ``small``  — 400 ASs; seconds; used by tests and quick looks.
* ``medium`` — 3,000 ASs; tens of seconds; the benchmark default.
* ``paper``  — 26,424 ASs / 330k prefixes / 10^5 GUIDs / 10^6 lookups,
  the paper's full configuration (§IV-B.1); minutes.

Pick with the ``REPRO_SCALE`` environment variable or an explicit
argument.  Latency *shapes* (CDF orderings, ratios between K values) are
stable across scales; absolute milliseconds drift slightly because paths
lengthen with graph size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from ..bgp.allocation import AllocationConfig, generate_global_prefix_table
from ..bgp.table import GlobalPrefixTable
from ..errors import ConfigurationError
from ..topology.datasets import cached_topology
from ..topology.generator import TopologyConfig, generate_internet_topology
from ..topology.graph import ASTopology
from ..topology.routing import Router

#: Where cached topologies/tables live (override with REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.path.join(os.path.expanduser("~"), ".cache", "repro-dmap")


@dataclass(frozen=True)
class Scale:
    """One experiment scale: substrate and workload sizes."""

    name: str
    n_as: int
    n_guids: int
    n_lookups: int
    prefixes_per_as: float
    total_endnodes: int


SCALES: Dict[str, Scale] = {
    "small": Scale("small", 400, 2_000, 20_000, 6.0, 400_000),
    "medium": Scale("medium", 3_000, 10_000, 100_000, 10.0, 3_000_000),
    "paper": Scale("paper", 26_424, 100_000, 1_000_000, 12.5, 50_000_000),
}


def resolve_scale(name: Optional[str] = None) -> Scale:
    """Scale by explicit name, else ``REPRO_SCALE`` env var, else small."""
    chosen = name or os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[chosen]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scale {chosen!r}; expected one of {sorted(SCALES)}"
        ) from exc


class Environment:
    """A substrate instance: topology + prefix table + router.

    Construction is deterministic in ``(scale, seed)``; the topology is
    cached on disk, the prefix table is cheap enough to regenerate.
    """

    def __init__(self, scale: Scale, seed: int = 0, cache_dir: Optional[str] = None):
        self.scale = scale
        self.seed = seed
        cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        cache_path = os.path.join(
            cache_dir, f"topology-{scale.name}-{scale.n_as}-seed{seed}.npz"
        )
        config = TopologyConfig(
            n_as=scale.n_as, total_endnodes=scale.total_endnodes
        )
        self.topology: ASTopology = cached_topology(
            cache_path, lambda: generate_internet_topology(config, seed=seed)
        )
        self.table: GlobalPrefixTable = generate_global_prefix_table(
            self.topology.asns(),
            AllocationConfig(prefixes_per_as=scale.prefixes_per_as),
            seed=seed + 1,
        )
        self.router = Router(self.topology)


_ENVIRONMENTS: Dict[tuple, Environment] = {}


def get_environment(scale_name: Optional[str] = None, seed: int = 0) -> Environment:
    """Process-wide memoized environment for ``(scale, seed)``."""
    scale = resolve_scale(scale_name)
    key = (scale.name, seed)
    env = _ENVIRONMENTS.get(key)
    if env is None:
        env = Environment(scale, seed)
        _ENVIRONMENTS[key] = env
    return env
