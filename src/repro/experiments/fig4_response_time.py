"""E1 — Figure 4: CDF of round-trip query response times for K ∈ {1,3,5}.

The paper inserts 10^5 GUIDs, issues 10^6 Mandelbrot-Zipf lookups from
population-weighted sources, and plots the response-time CDF per K
(§IV-B.2a).  Expected shape: each added replica shifts the CDF left;
K=5 roughly halves the 95th percentile relative to K=1 (86 ms vs 173 ms
in the paper); a long tail of queries from pathological-latency stub ASs
remains at every K.

Run: ``python -m repro.experiments fig4 [--scale small|medium|paper]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.resolver import DMapResolver
from ..sim.metrics import LatencySummary, summarize
from ..sim.simulation import DMapSimulation
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from .common import Environment, get_environment
from .reporting import ascii_cdf, format_cdf_table, format_table, percentile_row

#: The K values of Fig. 4.
FIG4_K_VALUES = (1, 3, 5)


@dataclass
class Fig4Result:
    """Response-time samples and summaries per replication factor."""

    scale: str
    rtts_by_k: Dict[int, np.ndarray]
    local_hit_fraction: Dict[int, float]
    failed_by_k: Dict[int, int] = field(default_factory=dict)

    def summaries(self) -> Dict[int, LatencySummary]:
        """Table-I-style stats per K (with the failed-lookup count)."""
        return {
            k: summarize(v, failed=self.failed_by_k.get(k, 0))
            for k, v in self.rtts_by_k.items()
        }

    def render(self) -> str:
        """The textual Fig. 4: CDF read-offs plus summary rows."""
        thresholds = (10, 20, 40, 60, 86, 100, 173, 250, 500, 1000)
        series = {f"K={k}": v for k, v in self.rtts_by_k.items()}
        parts = [
            f"Figure 4 — round-trip query response time CDF ({self.scale} scale)",
            format_cdf_table(series, thresholds),
            "",
            format_table(
                ["config", "mean [ms]", "median [ms]", "95th [ms]", "success"],
                [
                    percentile_row(
                        f"K={k}", v, failed=self.failed_by_k.get(k, 0)
                    )
                    for k, v in self.rtts_by_k.items()
                ],
            ),
        ]
        max_k = max(self.rtts_by_k)
        parts.append("")
        parts.append(ascii_cdf(self.rtts_by_k[max_k], label=f"(K={max_k})"))
        return "\n".join(parts)


def run_fig4(
    scale: Optional[str] = None,
    k_values: Sequence[int] = FIG4_K_VALUES,
    seed: int = 0,
    use_simulation: bool = False,
    local_replica: bool = True,
    selection_policy: str = "latency",
    environment: Optional[Environment] = None,
    workload_override: Optional[WorkloadConfig] = None,
    engine: str = "scalar",
    n_jobs: int = 1,
    trace_path: Optional[str] = None,
) -> Fig4Result:
    """Run the Fig. 4 experiment.

    ``use_simulation`` replays the workload through the discrete-event
    engine instead of the (equivalent, faster) instant resolver;
    ``local_replica`` and ``selection_policy`` expose the paper's §III-C
    and §IV-B.2a design knobs for ablation.  ``engine="fastpath"``
    batches the lookup pipeline through
    :class:`~repro.fastpath.engine.FastpathEngine` (bit-identical RTTs;
    ``n_jobs`` shards source-AS groups across processes).

    ``trace_path`` writes a canonical JSONL per-query trace file there
    (plus a run manifest at ``<trace_path>.manifest.json``), from which
    ``python -m repro.obs summarize-traces`` reconstructs this report.
    Tracing forces single-process execution: per-query traces cannot
    cross process shards.
    """
    from ..obs.export import metrics_report, write_traces
    from ..obs.manifest import RunManifest, manifest_path_for
    from ..obs.trace import NULL_TRACER, CollectingTracer

    env = environment or get_environment(scale, seed)
    workload_config = workload_override or WorkloadConfig(
        n_guids=env.scale.n_guids, n_lookups=env.scale.n_lookups, seed=seed
    )
    workload = WorkloadGenerator(env.topology, workload_config).generate()

    tracing = trace_path is not None
    tracer = CollectingTracer() if tracing else NULL_TRACER
    if tracing:
        n_jobs = 1
    manifest = RunManifest(
        experiment="fig4",
        config={
            "scale": env.scale.name,
            "seed": seed,
            "k_values": list(k_values),
            "engine": "simulation" if use_simulation else engine,
            "local_replica": local_replica,
            "selection_policy": selection_policy,
            "n_guids": workload_config.n_guids,
            "n_lookups": workload_config.n_lookups,
        },
    )

    rtts_by_k: Dict[int, np.ndarray] = {}
    local_hits: Dict[int, float] = {}
    failed_by_k: Dict[int, int] = {}
    for k in k_values:
        with manifest.phase(f"k={k}"):
            if use_simulation:
                sim = DMapSimulation(
                    env.topology,
                    env.table,
                    k=k,
                    router=env.router,
                    local_replica=local_replica,
                    selection_policy=selection_policy,
                    seed=seed,
                    tracer=tracer,
                )
                workload.apply_to_simulation(sim, env.table)
                sim.run()
                rtts_by_k[k] = sim.metrics.rtts()
                local_hits[k] = sim.metrics.local_hit_fraction()
                failed_by_k[k] = len(sim.metrics.failed)
            else:
                resolver = DMapResolver(
                    env.table,
                    env.router,
                    k=k,
                    local_replica=local_replica,
                    selection_policy=selection_policy,
                    tracer=tracer,
                )
                rtts = workload.run_through_resolver(
                    resolver, env.table, engine=engine, n_jobs=n_jobs
                )
                rtts_by_k[k] = np.asarray(rtts, dtype=float)
                local_hits[k] = float("nan")
                # The instant resolver retries whole replica-set rounds
                # until the lookup succeeds, so this path records no
                # failures.
                failed_by_k[k] = 0
    if tracing:
        with manifest.phase("export"):
            count = write_traces(trace_path, tracer.traces)
            manifest.extra["trace_file"] = trace_path
            manifest.extra["trace_count"] = count
            manifest.extra["metrics"] = metrics_report(tracer.traces)
        manifest.write(manifest_path_for(trace_path))
    return Fig4Result(env.scale.name, rtts_by_k, local_hits, failed_by_k)


def main(
    scale: Optional[str] = None,
    engine: str = "scalar",
    n_jobs: int = 1,
    trace_path: Optional[str] = None,
) -> Fig4Result:
    """CLI entry point: run and print."""
    result = run_fig4(scale, engine=engine, n_jobs=n_jobs, trace_path=trace_path)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
