"""E3 — Figure 5: effect of BGP churn on query response times (K = 5).

BGP views at different query origins can lag the true prefix table, so a
lookup may reach an AS that does not host the mapping, receive a "GUID
missing" reply, and retry the next replica (§IV-B.2b).  The paper sweeps
the per-lookup failure probability over {0%, 5%, 10%} and reports that 5%
failures shift the median only 40.5 → 41.3 ms but the 95th percentile
86.1 → 129.1 ms — churn hurts the tail, not the typical query.  That
median-stable / tail-heavy signature is the shape this experiment checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.resolver import DMapResolver
from ..sim.failures import ChurnFailureModel
from ..sim.metrics import LatencySummary, summarize
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from .common import Environment, get_environment
from .reporting import format_cdf_table, format_table, percentile_row

#: The failure rates of Fig. 5.
FIG5_FAILURE_RATES = (0.0, 0.05, 0.10)

#: Paper reference points (§IV-B.2b): rate -> (median, p95) in ms.
PAPER_FIG5 = {0.0: (40.5, 86.1), 0.05: (41.3, 129.1)}


@dataclass
class Fig5Result:
    """Response-time samples per injected failure rate."""

    scale: str
    k: int
    rtts_by_rate: Dict[float, np.ndarray]
    mean_attempts_by_rate: Dict[float, float]

    def summaries(self) -> Dict[float, LatencySummary]:
        return {rate: summarize(v) for rate, v in self.rtts_by_rate.items()}

    def render(self) -> str:
        thresholds = (20, 40, 60, 86, 100, 129, 173, 250, 500, 1000)
        series = {
            f"{rate:.0%} failure": rtts for rate, rtts in self.rtts_by_rate.items()
        }
        rows = [
            list(percentile_row(f"{rate:.0%}", rtts))
            + [f"{self.mean_attempts_by_rate[rate]:.2f}"]
            for rate, rtts in self.rtts_by_rate.items()
        ]
        return "\n".join(
            [
                f"Figure 5 — BGP churn impact, K={self.k} ({self.scale} scale)",
                format_cdf_table(series, thresholds),
                "",
                format_table(
                    ["failure rate", "mean [ms]", "median [ms]", "95th [ms]", "attempts"],
                    rows,
                ),
            ]
        )


def run_fig5(
    scale: Optional[str] = None,
    failure_rates: Sequence[float] = FIG5_FAILURE_RATES,
    k: int = 5,
    seed: int = 0,
    environment: Optional[Environment] = None,
    workload_override: Optional[WorkloadConfig] = None,
) -> Fig5Result:
    """Run the Fig. 5 sweep.

    Uses the instant resolver with a :class:`ChurnFailureModel` probe —
    identical retry arithmetic to the event simulation (cross-checked in
    the test suite).
    """
    env = environment or get_environment(scale, seed)
    workload_config = workload_override or WorkloadConfig(
        n_guids=env.scale.n_guids, n_lookups=env.scale.n_lookups, seed=seed
    )
    workload = WorkloadGenerator(env.topology, workload_config).generate()

    rtts_by_rate: Dict[float, np.ndarray] = {}
    attempts_by_rate: Dict[float, float] = {}
    for rate in failure_rates:
        resolver = DMapResolver(env.table, env.router, k=k)
        model = ChurnFailureModel(rate, seed=seed + 17)
        probe = model.lookup_outcome if rate > 0 else None
        rtts = workload.run_through_resolver(resolver, env.table, probe=probe)
        rtts_by_rate[rate] = np.asarray(rtts, dtype=float)
        attempts_by_rate[rate] = _estimate_mean_attempts(rate, k)
    return Fig5Result(env.scale.name, k, rtts_by_rate, attempts_by_rate)


def _estimate_mean_attempts(rate: float, k: int) -> float:
    """Expected replicas contacted per lookup at i.i.d. failure rate."""
    if rate <= 0:
        return 1.0
    # Truncated geometric over k replicas.
    total = 0.0
    for i in range(1, k + 1):
        total += i * (rate ** (i - 1)) * (1 - rate)
    total += k * rate**k  # all replicas failed
    return total / (1 - rate**k + (rate**k))


def main(scale: Optional[str] = None) -> Fig5Result:
    """CLI entry point: run and print."""
    result = run_fig5(scale)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
