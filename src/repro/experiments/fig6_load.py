"""E4 — Figure 6: CDF of the Normalized Load Ratio per AS, K = 5.

NLR(AS) = (% of GUIDs stored at the AS) / (% of announced IP space owned
by it); ideal proportional distribution gives NLR = 1 everywhere.  The
paper inserts 10^5, 10^6 and 10^7 GUIDs and finds (a) 93% of ASs inside
[0.4, 1.6] at 10^7 GUIDs, (b) the CDF sharpening around 1 as the system
grows, and (c) a median slightly above 1 (1.16) because IP-hole spillover
assigns some extra GUIDs to deputy ASs (§IV-B.2c).

This is the bulk-vectorized experiment: millions of GUID×K placements run
through the numpy hash family and the interval LPM index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..bgp.interval_index import HOLE
from ..errors import ConfigurationError
from ..fastpath.placement import resolve_batch
from ..hashing.hashers import FastHasher
from ..hashing.rehash import DEFAULT_MAX_REHASHES, GuidPlacer, place_guids_bulk
from ..sim.metrics import normalized_load_ratios
from .common import Environment, get_environment
from .reporting import format_cdf_table, format_table

#: The GUID population sizes of Fig. 6 (paper scale).
FIG6_N_GUIDS = (100_000, 1_000_000, 10_000_000)


@dataclass
class Fig6Result:
    """NLR samples per GUID population size."""

    scale: str
    k: int
    nlr_by_n: Dict[int, np.ndarray]
    deputy_fraction_by_n: Dict[int, float]

    def render(self) -> str:
        thresholds = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0, 4.0, 8.0)
        series = {f"{n:,} GUIDs": v for n, v in self.nlr_by_n.items()}
        rows = []
        for n, nlr in self.nlr_by_n.items():
            inside = float(((nlr >= 0.4) & (nlr <= 1.6)).mean())
            rows.append(
                [
                    f"{n:,}",
                    f"{np.median(nlr):.2f}",
                    f"{inside:.1%}",
                    f"{self.deputy_fraction_by_n[n]:.4%}",
                ]
            )
        return "\n".join(
            [
                f"Figure 6 — Normalized Load Ratio CDF, K={self.k} ({self.scale} scale)",
                format_cdf_table(series, thresholds, unit="NLR"),
                "",
                format_table(
                    ["GUIDs", "median NLR", "in [0.4,1.6]", "deputy fallback"],
                    rows,
                ),
            ]
        )


def _place_guids_scalar(folded: np.ndarray, placer: GuidPlacer):
    """Per-GUID Algorithm 1 over the same hash family as the batch engines.

    ``FastHasher.hash_one`` and ``hash_batch`` agree element-wise, so the
    placements (and hence the rendered output) are byte-identical to
    ``engine="bulk"`` — tested in ``tests/test_experiments.py``.  This is
    the reference oracle; it is ~100x slower and meant for small runs.
    """
    n, k = len(folded), placer.k
    asns = np.empty((n, k), dtype=np.int64)
    via_deputy = np.zeros((n, k), dtype=bool)
    for row, value in enumerate(folded.tolist()):
        for i, res in enumerate(placer.resolve_all(int(value))):
            asns[row, i] = res.asn
            via_deputy[row, i] = res.via_deputy
    return asns, via_deputy


def run_fig6(
    scale: Optional[str] = None,
    n_guids_list: Optional[Sequence[int]] = None,
    k: int = 5,
    seed: int = 0,
    max_rehashes: int = DEFAULT_MAX_REHASHES,
    environment: Optional[Environment] = None,
    engine: str = "bulk",
) -> Fig6Result:
    """Run the Fig. 6 storage-balance experiment.

    At non-paper scales the population sizes shrink proportionally to the
    AS count so the statistical regime (GUIDs-per-AS) matches the paper's.
    ``engine="fastpath"`` routes placement through the shared
    :func:`repro.fastpath.placement.resolve_batch` kernel (bit-identical
    to the original ``place_guids_bulk``; folding a uint64 is a no-op);
    ``engine="scalar"`` is the per-GUID :class:`GuidPlacer` oracle —
    slow, but its output is byte-identical to both batch engines.
    """
    env = environment or get_environment(scale, seed)
    if engine not in ("scalar", "bulk", "fastpath"):
        raise ConfigurationError(f"unknown engine {engine!r}")
    if n_guids_list is None:
        factor = env.scale.n_as / 26_424
        n_guids_list = [max(1000, int(n * factor)) for n in FIG6_N_GUIDS]

    index = env.table.build_interval_index()
    spans = index.effective_span_by_asn()
    hasher = FastHasher(k, address_bits=env.table.bits, seed=seed)
    rng = np.random.default_rng(seed)

    nlr_by_n: Dict[int, np.ndarray] = {}
    deputy_by_n: Dict[int, float] = {}
    for n in n_guids_list:
        folded = rng.integers(0, np.iinfo(np.uint64).max, size=n, dtype=np.uint64)
        if engine == "fastpath":
            placer = GuidPlacer(hasher, env.table, max_rehashes=max_rehashes)
            asns, _attempts, via_deputy = resolve_batch(placer, folded, index)
        elif engine == "scalar":
            placer = GuidPlacer(hasher, env.table, max_rehashes=max_rehashes)
            asns, via_deputy = _place_guids_scalar(folded, placer)
        else:
            asns, _attempts, via_deputy = place_guids_bulk(
                folded, hasher, index, env.table, max_rehashes=max_rehashes
            )
        flat = asns.ravel()
        unique, counts = np.unique(flat, return_counts=True)
        guid_counts = {int(a): int(c) for a, c in zip(unique, counts) if a != HOLE}
        nlr_by_n[n] = normalized_load_ratios(guid_counts, spans)
        deputy_by_n[n] = float(via_deputy.mean())
    return Fig6Result(env.scale.name, k, nlr_by_n, deputy_by_n)


def main(scale: Optional[str] = None, engine: str = "bulk") -> Fig6Result:
    """CLI entry point: run and print."""
    result = run_fig6(scale, engine=engine)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
