"""E5 — Figure 7: analytical response-time upper bound vs K.

Evaluates the §V Jellyfish bound for K = 1..20 over the three Internet
scenarios (present day, medium-term future, long-term future).  Expected
shape: every curve decreases in K with clearly diminishing returns past a
few replicas, and flatter (future) topologies sit uniformly lower —
"response time upper bounds for DMap queries become smaller with the
evolution" (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.jellyfish_model import AnalyticalModel, PAPER_C0, PAPER_C1
from ..analysis.scenarios import all_scenarios
from .reporting import format_table

#: Replica counts swept in Fig. 7.
FIG7_K_RANGE = tuple(range(1, 21))


@dataclass
class Fig7Result:
    """Bound curves per scenario."""

    k_values: Tuple[int, ...]
    bounds_by_scenario: Dict[str, np.ndarray]
    c0: float
    c1: float

    def render(self) -> str:
        headers = ["K"] + list(self.bounds_by_scenario)
        rows = []
        for i, k in enumerate(self.k_values):
            rows.append(
                [k] + [f"{curve[i]:.1f}" for curve in self.bounds_by_scenario.values()]
            )
        return "\n".join(
            [
                "Figure 7 — analytical RTT upper bound [ms] "
                f"(c0={self.c0}, c1={self.c1})",
                format_table(headers, rows),
            ]
        )

    def diminishing_returns_ratio(self, scenario: str) -> float:
        """Improvement from the last 10 replicas relative to the first few
        — small values confirm "diminishing returns beyond a few
        replicas" (§V-C)."""
        curve = self.bounds_by_scenario[scenario]
        early_gain = curve[0] - curve[4]  # K=1 → K=5
        late_gain = curve[9] - curve[-1]  # K=10 → K=20
        if early_gain <= 0:
            return 0.0
        return float(late_gain / early_gain)


def run_fig7(
    k_values: Sequence[int] = FIG7_K_RANGE,
    scenarios: Optional[Sequence[AnalyticalModel]] = None,
    c0: float = PAPER_C0,
    c1: float = PAPER_C1,
) -> Fig7Result:
    """Evaluate the Fig. 7 curves (pure closed-form, no simulation)."""
    models = list(scenarios) if scenarios is not None else all_scenarios()
    bounds = {}
    for model in models:
        fitted = AnalyticalModel(model.name, model.ratios, c0, c1)
        bounds[model.name] = fitted.sweep(k_values)
    return Fig7Result(tuple(k_values), bounds, c0, c1)


def calibrate_constants(
    environment,
    n_samples: int = 2000,
    k: int = 5,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Fit (c0, c1) from our own simulation, as the paper did (§V-C).

    The §V model assumes response time is affine in the hop distance to
    the closest replica: ``tau = c0 * min_i d(s, t_i) + c1``.  We sample
    (source, K-replica) pairs from the environment, measure both sides,
    and least-squares fit the constants.  Returns ``(c0, c1, pearson_r)``
    — the correlation quantifies how well the affine assumption holds on
    the synthetic topology.

    The fit uses the *inter-AS path* round trip (the component that is
    structurally affine in hop count); the heavy-tailed intra-AS terms
    are endpoint noise that the model folds into ``c1`` on average —
    including them drops the correlation to ~0.1 without changing the
    slope, which is worth knowing when comparing against the paper's
    PoP-level fit.
    """
    import numpy as np

    from ..analysis.jellyfish_model import fit_constants
    from ..core.resolver import DMapResolver
    from ..workload.sources import SourceSampler

    resolver = DMapResolver(environment.table, environment.router, k=k,
                            local_replica=False)
    rng = np.random.default_rng(seed)
    sampler = SourceSampler(environment.topology, rng)
    topo = environment.topology

    distances, rtts = [], []
    for i in range(n_samples):
        source = sampler.sample_one()
        candidates = resolver.placer.hosting_asns(i)
        hop_row = environment.router.hop_row(source)
        src_idx = topo.index_of(source)
        hops = min(
            0.0 if topo.index_of(a) == src_idx else float(hop_row[topo.index_of(a)])
            for a in set(candidates)
        )
        rtt = min(
            2.0 * environment.router.path_latency_ms(source, a)
            for a in set(candidates)
        )
        distances.append(hops)
        rtts.append(rtt)

    c0, c1 = fit_constants(distances, rtts)
    r = float(np.corrcoef(distances, rtts)[0, 1])
    return c0, c1, r


def main(scale: Optional[str] = None) -> Fig7Result:
    """CLI entry point (scale is ignored: the model is topology-free)."""
    result = run_fig7()
    print(result.render())
    return result


if __name__ == "__main__":
    main()
