"""E7 — IP-hole rehash behaviour (§III-B).

The paper's claim: with a 55% announcement ratio the probability that all
M = 10 hashes land in IP holes is 0.45^10 ≈ 0.034%, so the deputy-AS
fallback is rare and cannot skew storage load much.  This experiment
measures the empirical attempt distribution over random GUIDs and checks
it against the analytic geometric model at every M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..hashing.hashers import FastHasher
from ..hashing.rehash import hole_probability, place_guids_bulk
from .common import Environment, get_environment
from .reporting import format_table


@dataclass
class RehashResult:
    """Empirical vs analytic hole-exhaustion probabilities."""

    scale: str
    announcement_ratio: float
    n_samples: int
    deputy_fraction_by_m: Dict[int, float]
    analytic_by_m: Dict[int, float]
    mean_attempts: float

    def render(self) -> str:
        rows = []
        for m in sorted(self.deputy_fraction_by_m):
            rows.append(
                [
                    m,
                    f"{self.deputy_fraction_by_m[m]:.5%}",
                    f"{self.analytic_by_m[m]:.5%}",
                ]
            )
        return "\n".join(
            [
                "§III-B — IP-hole rehash probabilities "
                f"(announcement ratio {self.announcement_ratio:.1%}, "
                f"mean attempts {self.mean_attempts:.3f})",
                format_table(["M", "measured deputy fraction", "analytic (1-r)^M"], rows),
            ]
        )


def run_rehash_probe(
    scale: Optional[str] = None,
    m_values: Sequence[int] = (1, 2, 4, 6, 8, 10),
    n_samples: int = 200_000,
    seed: int = 0,
    environment: Optional[Environment] = None,
) -> RehashResult:
    """Sweep the M (max rehash) parameter and measure deputy fallbacks."""
    env = environment or get_environment(scale, seed)
    index = env.table.build_interval_index()
    ratio = index.announced_fraction()
    hasher = FastHasher(1, address_bits=env.table.bits, seed=seed)
    rng = np.random.default_rng(seed)
    folded = rng.integers(0, np.iinfo(np.uint64).max, size=n_samples, dtype=np.uint64)

    deputy_by_m: Dict[int, float] = {}
    analytic_by_m: Dict[int, float] = {}
    mean_attempts = 0.0
    for m in m_values:
        _asns, attempts, via_deputy = place_guids_bulk(
            folded, hasher, index, env.table, max_rehashes=m
        )
        deputy_by_m[m] = float(via_deputy.mean())
        analytic_by_m[m] = hole_probability(ratio, m)
        if m == max(m_values):
            mean_attempts = float(attempts.mean())
    return RehashResult(
        env.scale.name, ratio, n_samples, deputy_by_m, analytic_by_m, mean_attempts
    )


def main(scale: Optional[str] = None) -> RehashResult:
    """CLI entry point: run and print."""
    result = run_rehash_probe(scale)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
