"""Plain-text rendering of experiment results (tables and ASCII CDFs).

The harness prints the same rows and series the paper reports, in a form
that diffs cleanly in a terminal and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.metrics import cdf_points


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_cdf_table(
    series: Dict[str, Sequence[float]],
    thresholds: Sequence[float],
    unit: str = "ms",
) -> str:
    """Read each series' CDF at fixed thresholds — a textual Fig. 4/5/6.

    Read-offs are inclusive (``P[X <= t]``), the standard CDF convention:
    a sample exactly at the threshold counts as answered within it.
    """
    headers = [f"P(x <= t)  t [{unit}]"] + [name for name in series]
    rows: List[List[object]] = []
    arrays = {name: np.sort(np.asarray(list(v), dtype=float)) for name, v in series.items()}
    for t in thresholds:
        row: List[object] = [f"{t:g}"]
        for name in series:
            arr = arrays[name]
            row.append(f"{(arr <= t).mean():.3f}")
        rows.append(row)
    return format_table(headers, rows)


def ascii_cdf(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
    log_x: bool = True,
) -> str:
    """A small ASCII CDF plot (x = value, y = cumulative fraction)."""
    xs, ys = cdf_points(values, n_points=512)
    lo, hi = float(xs[0]), float(xs[-1])
    if log_x:
        lo = max(lo, 1e-3)
        grid_x = np.logspace(np.log10(lo), np.log10(max(hi, lo * 1.001)), width)
    else:
        grid_x = np.linspace(lo, hi, width)
    fractions = np.searchsorted(xs, grid_x, side="right") / len(xs)
    canvas = [[" "] * width for _ in range(height)]
    for col, frac in enumerate(fractions):
        row = height - 1 - int(round(frac * (height - 1)))
        canvas[row][col] = "*"
    lines = ["".join(row) for row in canvas]
    footer = f"x: {lo:.1f} .. {hi:.1f}" + (" (log)" if log_x else "")
    title = f"CDF {label}".rstrip()
    return "\n".join([title] + lines + [footer])


def percentile_row(
    name: str, values: Sequence[float], failed: Optional[int] = None
) -> Tuple[str, ...]:
    """(name, mean, median, p95) formatted like Table I.

    With ``failed`` (count of lookups that exhausted every replica) the
    row gains a success-rate cell, so tables never report latencies of
    the survivors without saying how many queries died.
    """
    arr = np.asarray(list(values), dtype=float)
    row = (
        name,
        f"{arr.mean():.1f}",
        f"{np.median(arr):.1f}",
        f"{np.percentile(arr, 95):.1f}",
    )
    if failed is None:
        return row
    success_rate = arr.size / (arr.size + failed)
    return row + (f"{success_rate:.1%} ({failed} failed)",)
