"""E6 — §IV-A storage and update-traffic overhead.

Reproduces the paper's arithmetic: 352-bit entries, 5 billion GUIDs at
K = 5 spread proportionally over ASs, and 100 updates/host/day yielding
~10 Gb/s of worldwide update traffic — a ~2×10^-7 fraction of total
Internet traffic.

The paper reports 173 Mbit/AS; dividing its own totals by its own DIMES
AS count (26,424) gives 333 Mbit/AS, so the published figure corresponds
to a denominator of ≈50,900 ASs (roughly the allocated AS-number pool
rather than the DFZ-visible one).  Both denominators are reported here;
the qualitative claim — "quite modest" per-AS storage — holds for either.

The experiment also validates the analytic model against an actual
simulated insert batch: measured bits per AS must match the model's
prediction once scaled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..analysis.overhead import OverheadModel
from ..core.resolver import DMapResolver
from ..workload.generator import WorkloadConfig, WorkloadGenerator
from .common import Environment, get_environment
from .reporting import format_table

#: The implied AS count behind the paper's 173 Mbit/AS figure.
PAPER_IMPLIED_N_AS = 50_900


@dataclass
class OverheadResult:
    """Analytic report plus an empirical per-AS storage check."""

    analytic: Dict[str, float]
    analytic_paper_denominator_mbits: float
    measured_mean_entry_bits: float
    measured_mean_entries_per_as: float

    def render(self) -> str:
        rows = [
            ["entry size", f"{self.analytic['entry_bits']:.0f} bits", "352 bits"],
            [
                "storage per AS (26,424 ASs)",
                f"{self.analytic['storage_per_as_mbits']:.0f} Mbit",
                "—",
            ],
            [
                "storage per AS (paper's implied ~50.9k ASs)",
                f"{self.analytic_paper_denominator_mbits:.0f} Mbit",
                "173 Mbit",
            ],
            [
                "update traffic",
                f"{self.analytic['update_traffic_gbps']:.1f} Gb/s",
                "~10 Gb/s",
            ],
            [
                "fraction of Internet traffic",
                f"{self.analytic['traffic_fraction_of_internet']:.1e}",
                "minute",
            ],
            [
                "measured entry size (simulated batch)",
                f"{self.measured_mean_entry_bits:.0f} bits",
                "352 bits",
            ],
        ]
        return "\n".join(
            [
                "§IV-A — storage and traffic overhead",
                format_table(["quantity", "computed", "paper"], rows),
            ]
        )


def run_storage_overhead(
    scale: Optional[str] = None,
    seed: int = 0,
    environment: Optional[Environment] = None,
) -> OverheadResult:
    """Compute the §IV-A overhead figures and cross-check empirically."""
    model = OverheadModel()
    analytic = model.report()
    paper_model = OverheadModel(n_as=PAPER_IMPLIED_N_AS)

    # Empirical check: insert a modest GUID batch and measure actual
    # per-entry and per-AS storage through the mapping stores.
    env = environment or get_environment(scale, seed)
    workload = WorkloadGenerator(
        env.topology,
        WorkloadConfig(n_guids=min(2000, env.scale.n_guids), n_lookups=0, seed=seed),
    ).generate()
    resolver = DMapResolver(env.table, env.router, k=5, local_replica=False)
    workload.run_through_resolver(resolver, env.table)
    total_bits = sum(store.storage_bits() for store in resolver.stores.values())
    total_entries = resolver.total_entries()
    loads = list(resolver.storage_load().values())

    return OverheadResult(
        analytic=analytic,
        analytic_paper_denominator_mbits=paper_model.storage_per_as_mbits(),
        measured_mean_entry_bits=total_bits / max(total_entries, 1),
        measured_mean_entries_per_as=float(np.mean(loads)) if loads else 0.0,
    )


def main(scale: Optional[str] = None) -> OverheadResult:
    """CLI entry point: run and print."""
    result = run_storage_overhead(scale)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
