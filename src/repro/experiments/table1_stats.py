"""E2 — Table I: query response time statistics for K = 1 and K = 5.

Paper values (§IV-B.2a, ms)::

    K   mean   median   95th percentile
    1   74.5   57.1     172.8
    5   49.1   40.5     86.1

Our reproduction reports the same rows over the synthetic substrate; the
shape targets are (a) every statistic improves with K, and (b) the tail
(95th) improves by roughly a factor of two while the median improves much
less.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.metrics import LatencySummary
from .common import Environment
from .fig4_response_time import run_fig4
from .reporting import format_table

#: Published Table I rows: K -> (mean, median, p95).
PAPER_TABLE1 = {
    1: (74.5, 57.1, 172.8),
    5: (49.1, 40.5, 86.1),
}


@dataclass
class Table1Result:
    """Measured statistics next to the published values."""

    scale: str
    measured: Dict[int, LatencySummary]

    def render(self) -> str:
        rows = []
        for k, summary in sorted(self.measured.items()):
            paper = PAPER_TABLE1.get(k)
            paper_text = (
                f"{paper[0]:.1f} / {paper[1]:.1f} / {paper[2]:.1f}"
                if paper
                else "—"
            )
            rows.append(
                [
                    f"K={k}",
                    f"{summary.mean:.1f}",
                    f"{summary.median:.1f}",
                    f"{summary.p95:.1f}",
                    paper_text,
                ]
            )
        return "\n".join(
            [
                f"Table I — query response time statistics ({self.scale} scale)",
                format_table(
                    [
                        "config",
                        "mean [ms]",
                        "median [ms]",
                        "95th [ms]",
                        "paper (mean/median/95th)",
                    ],
                    rows,
                ),
            ]
        )


def run_table1(
    scale: Optional[str] = None,
    seed: int = 0,
    environment: Optional[Environment] = None,
) -> Table1Result:
    """Run the Table I experiment (K = 1 and 5 over the Fig. 4 workload)."""
    fig4 = run_fig4(
        scale, k_values=tuple(PAPER_TABLE1), seed=seed, environment=environment
    )
    return Table1Result(fig4.scale, fig4.summaries())


def main(scale: Optional[str] = None) -> Table1Result:
    """CLI entry point: run and print."""
    result = run_table1(scale)
    print(result.render())
    return result


if __name__ == "__main__":
    main()
