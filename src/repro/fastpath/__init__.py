"""Vectorized batch execution engine for the DMap insert/lookup pipeline.

The scalar :class:`~repro.core.resolver.DMapResolver` replays the paper's
workload (10^5 inserts, 10^6 Mandelbrot-Zipf lookups, §IV-B.1) one GUID at
a time through Python; at paper scale that loop dominates wall-clock.
This package executes the *same protocol arithmetic* as whole numpy
arrays:

* :mod:`repro.fastpath.placement` — batch Algorithm 1 (GUID hashing,
  interval-index LPM, vectorized IP-hole rehash, deputy fallback) plus the
  §VII AS-number / weighted placement variants;
* :mod:`repro.fastpath.engine` — :class:`FastpathEngine`: lookups grouped
  by source AS, replica selection as a fancy-indexed min-of-K over one
  cached Dijkstra row, with the §III-C local-replica race and §III-D.3
  failed-attempt accounting expressed as row-wise prefix sums;
* :mod:`repro.fastpath.runner` — an optional ``multiprocessing`` shard
  runner that splits source-AS groups across workers for paper scale.

The scalar resolver remains the semantic *oracle*: the engine is checked
against it per query (bit-identical chosen replicas, 1e-9-relative RTTs)
in ``tests/test_fastpath.py`` and continuously by the
``repro.validation`` differential harness's fastpath lane.
"""

from .engine import BatchLookupResult, FastpathEngine, FastpathUnsupportedError
from .placement import batch_hosting_asns, resolve_batch

__all__ = [
    "BatchLookupResult",
    "FastpathEngine",
    "FastpathUnsupportedError",
    "batch_hosting_asns",
    "resolve_batch",
]
