"""The batched lookup/insert engine (semantically identical to the resolver).

:class:`FastpathEngine` executes the DMap protocol arithmetic of
:class:`~repro.core.resolver.DMapResolver` over whole workloads at once:

* GUIDs are placed **once** per unique identifier (the scalar resolver
  re-derives the K hosting ASs on every lookup);
* lookups are grouped by source AS, so each group needs exactly one
  cached Dijkstra row; replica selection is a fancy-indexed row-wise
  ``argmin`` whose tie-breaking provably matches the stable sort in
  :class:`~repro.core.replication.ReplicaSelector`;
* the §III-C local-replica race and the §III-D.3 failed-attempt
  accounting (one RTT per "GUID missing", an adaptive timeout per dead
  replica) become row-wise prefix sums over the walk-cost matrix.

Latency arithmetic reproduces the scalar path bit for bit: selection
keys use the same float32-row + float64-intra expression as
``Router.one_way_to_many``, and final RTTs widen the row to float64
before the identical left-to-right sum (see ``Router.rtt_to_many``), so
equivalence tests can assert exact equality, not just closeness.

Deliberate limits (the scalar resolver stays the oracle):

* the prefix table must not mutate between placement and lookup — BGP
  churn replays belong to :class:`DMapResolver` / :mod:`repro.sim`;
* the engine models the *converged* post-write state: every global
  replica of an inserted GUID holds the mapping (availability models can
  still inject timeouts/stale misses per (AS, GUID) pair);
* the ``"random"`` selection policy draws from a per-lookup RNG stream
  whose consumption order is inherently sequential, and is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bgp.table import GlobalPrefixTable
from ..core.guid import GUID, guid_like
from ..core.resolver import (
    DEFAULT_TIMEOUT_MS,
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
)
from ..errors import ConfigurationError, DMapError, RoutingError
from ..hashing.hashers import HashFamily, Sha256Hasher
from ..hashing.rehash import DEFAULT_MAX_REHASHES, GuidPlacer
from ..obs.trace import (
    FAILURE_EXHAUSTED,
    NULL_TRACER,
    AttemptTrace,
    PlacementRecord,
    QueryTrace,
    Tracer,
    hash_index_of,
)
from ..topology.routing import Router
from .placement import batch_resolutions

#: Selection policies the batch engine reproduces exactly.
SUPPORTED_POLICIES = ("latency", "hops")

#: Integer outcome codes for the vectorized walk.
_HIT, _MISSING, _TIMEOUT = 0, 1, 2
_OUTCOME_CODES = {
    OUTCOME_HIT: _HIT,
    OUTCOME_MISSING: _MISSING,
    OUTCOME_TIMEOUT: _TIMEOUT,
}
_CODE_OUTCOMES = {code: name for name, code in _OUTCOME_CODES.items()}


class FastpathUnsupportedError(DMapError):
    """The requested configuration needs the scalar oracle."""


class _ProbeAdapter:
    """Wrap a bare ``(asn, guid) -> outcome`` probe as a failure model."""

    def __init__(self, probe: Callable[[int, GUID], str]) -> None:
        self._probe = probe

    def lookup_outcome(self, asn: int, guid: GUID) -> str:
        """Fate of a global lookup arriving at ``asn``."""
        return self._probe(asn, guid)

    def is_down(self, asn: int) -> bool:
        """Bare probes cannot mark a querier's own AS as down."""
        return False


@dataclass
class GuidBatch:
    """A workload's unique GUIDs with their (frozen) placements.

    Attributes
    ----------
    guids:
        Unique identifiers, in workload order.
    placements:
        ``(len(guids), K)`` hosting ASNs in replica order.
    local_asns:
        Current attachment AS per GUID (where the §III-C local copy
        lives), or ``-1`` when the GUID has no local copy.
    hash_attempts / via_deputy:
        ``(len(guids), K)`` Algorithm 1 provenance planes (hash
        applications per chain; deputy-fallback flag), matching the
        scalar placer's ``resolve_all`` exactly.
    """

    guids: List[GUID]
    placements: np.ndarray
    local_asns: np.ndarray
    hash_attempts: Optional[np.ndarray] = None
    via_deputy: Optional[np.ndarray] = None

    def placement_records(self, guid_index: int) -> Tuple[PlacementRecord, ...]:
        """The trace-layer placement view of one indexed GUID."""
        asns = self.placements[guid_index]
        if self.hash_attempts is None or self.via_deputy is None:
            return tuple(PlacementRecord(int(asn), 1, False) for asn in asns)
        return tuple(
            PlacementRecord(
                int(asn),
                int(self.hash_attempts[guid_index, j]),
                bool(self.via_deputy[guid_index, j]),
            )
            for j, asn in enumerate(asns)
        )


@dataclass
class BatchLookupResult:
    """Per-lookup outcomes, aligned with the query arrays passed in."""

    rtt_ms: np.ndarray
    served_by: np.ndarray
    used_local: np.ndarray
    attempts: np.ndarray
    success: np.ndarray

    def __len__(self) -> int:
        return len(self.rtt_ms)


class FastpathEngine:
    """Vectorized twin of :class:`~repro.core.resolver.DMapResolver`.

    Constructor parameters mirror the resolver's; ``placer`` may be any
    scheme :mod:`repro.fastpath.placement` knows how to batch.
    """

    def __init__(
        self,
        table: GlobalPrefixTable,
        router: Router,
        k: int = 5,
        hash_family: Optional[HashFamily] = None,
        selection_policy: str = "latency",
        local_replica: bool = True,
        max_rehashes: int = DEFAULT_MAX_REHASHES,
        timeout_ms: float = DEFAULT_TIMEOUT_MS,
        placer=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if timeout_ms <= 0:
            raise ConfigurationError("timeout_ms must be positive")
        if selection_policy not in SUPPORTED_POLICIES:
            raise FastpathUnsupportedError(
                f"selection policy {selection_policy!r} is not batchable; "
                f"use the scalar resolver (supported: {SUPPORTED_POLICIES})"
            )
        self.table = table
        self.router = router
        self.hash_family = hash_family or Sha256Hasher(k, address_bits=table.bits)
        self.placer = placer or GuidPlacer(self.hash_family, table, max_rehashes)
        self.selection_policy = selection_policy
        self.local_replica = local_replica
        self.timeout_ms = timeout_ms
        # Explicit None check: an empty CollectingTracer is falsy (len 0).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._interval = None

    @classmethod
    def from_resolver(cls, resolver) -> "FastpathEngine":
        """Build an engine sharing a resolver's exact configuration."""
        return cls(
            resolver.table,
            resolver.router,
            selection_policy=resolver.selector.policy,
            local_replica=resolver.local_replica,
            timeout_ms=resolver.timeout_ms,
            placer=resolver.placer,
            tracer=resolver.tracer,
        )

    @property
    def k(self) -> int:
        """Replication factor."""
        return self.placer.k

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def index_guids(
        self,
        guids: Sequence[Union[GUID, int, str]],
        local_asns: Optional[Sequence[int]] = None,
    ) -> GuidBatch:
        """Resolve every GUID's K hosting ASs once, up front.

        ``local_asns`` records where each GUID's local copy currently
        lives (its latest insert/update source); omit it when the
        engine's ``local_replica`` is off.
        """
        glist = [guid_like(g) for g in guids]
        values = [g.value for g in glist]
        if self._interval is None and isinstance(self.placer, GuidPlacer):
            self._interval = self.placer.table.build_interval_index()
        placements, hash_attempts, via_deputy = batch_resolutions(
            self.placer, values, self._interval
        )
        if local_asns is None:
            local = np.full(len(glist), -1, dtype=np.int64)
        else:
            local = np.asarray(local_asns, dtype=np.int64)
            if local.shape != (len(glist),):
                raise ConfigurationError(
                    "local_asns must align one-to-one with guids"
                )
        return GuidBatch(glist, placements, local, hash_attempts, via_deputy)

    # ------------------------------------------------------------------
    # Write path (accounting only — the engine keeps no stores)
    # ------------------------------------------------------------------
    def write_rtts(
        self,
        batch: GuidBatch,
        guid_idx: np.ndarray,
        sources: np.ndarray,
    ) -> np.ndarray:
        """Insert/update RTTs: the max of the K parallel replica writes."""
        guid_idx = np.asarray(guid_idx, dtype=np.int64)
        sources = np.asarray(sources, dtype=np.int64)
        out = np.empty(len(guid_idx), dtype=np.float64)
        for src, rows in _iter_source_groups(sources):
            cand = batch.placements[guid_idx[rows]]
            rtts = self.router.rtt_to_many(int(src), cand.ravel())
            out[rows] = rtts.reshape(cand.shape).max(axis=1)
        return out

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def lookup_batch(
        self,
        batch: GuidBatch,
        guid_idx: np.ndarray,
        sources: np.ndarray,
        availability=None,
        n_jobs: int = 1,
        issued_at: Optional[np.ndarray] = None,
    ) -> BatchLookupResult:
        """Resolve many lookups; row ``i`` queries ``batch.guids[guid_idx[i]]``
        from AS ``sources[i]``.

        ``availability`` is either a failure model exposing
        ``lookup_outcome(asn, guid)`` / ``is_down(asn)`` (as in
        :mod:`repro.validation.scenarios`) or a bare probe callable; it
        must be deterministic per (AS, GUID) so batch evaluation order
        cannot change outcomes.  ``n_jobs > 1`` shards source-AS groups
        across worker processes (availability-free workloads only).
        ``issued_at`` stamps each lookup's issue time onto its emitted
        trace (tracing only; the arithmetic itself is time-free).
        """
        guid_idx = np.asarray(guid_idx, dtype=np.int64)
        sources = np.asarray(sources, dtype=np.int64)
        if guid_idx.shape != sources.shape or guid_idx.ndim != 1:
            raise ConfigurationError("guid_idx and sources must be 1-D and aligned")
        model = availability
        if model is not None and not hasattr(model, "lookup_outcome"):
            model = _ProbeAdapter(model)
        if n_jobs > 1:
            if model is not None:
                raise FastpathUnsupportedError(
                    "sharded execution supports availability-free workloads only"
                )
            if self.tracer.enabled:
                raise FastpathUnsupportedError(
                    "per-query traces cannot cross process shards; "
                    "run tracing with n_jobs=1"
                )
            from .runner import run_sharded

            return run_sharded(self, batch, guid_idx, sources, n_jobs)
        return self._lookup_serial(batch, guid_idx, sources, model, issued_at)

    def _lookup_serial(
        self,
        batch: GuidBatch,
        guid_idx: np.ndarray,
        sources: np.ndarray,
        model=None,
        issued_at: Optional[np.ndarray] = None,
    ) -> BatchLookupResult:
        n = len(guid_idx)
        rtt = np.empty(n, dtype=np.float64)
        served = np.full(n, -1, dtype=np.int64)
        used_local = np.zeros(n, dtype=bool)
        attempts = np.zeros(n, dtype=np.int64)
        success = np.zeros(n, dtype=bool)
        tracing = self.tracer.enabled
        trace_slots: List[Optional[QueryTrace]] = [None] * n if tracing else []
        times = None
        if tracing:
            times = (
                np.zeros(n, dtype=np.float64)
                if issued_at is None
                else np.asarray(issued_at, dtype=np.float64)
            )
            if times.shape != (n,):
                raise ConfigurationError(
                    "issued_at must align one-to-one with guid_idx"
                )
        placement_cache: Dict[int, Tuple[PlacementRecord, ...]] = {}
        for src, rows in _iter_source_groups(sources):
            group = self._lookup_group(
                int(src),
                batch,
                guid_idx[rows],
                model,
                issued_at=times[rows] if tracing else None,
                placement_cache=placement_cache if tracing else None,
            )
            rtt[rows], served[rows], used_local[rows], attempts[rows], success[rows] = group[:5]
            if tracing:
                for offset, row in enumerate(rows):
                    trace_slots[int(row)] = group[5][offset]
        if not np.all(np.isfinite(rtt)):
            bad = int(np.flatnonzero(~np.isfinite(rtt))[0])
            raise RoutingError(
                f"lookup {bad} reached an unreachable replica "
                f"(source AS {int(sources[bad])})"
            )
        # Emit in input-row order so raw emission order matches the
        # workload's issue order (the canonical JSONL sort is on top).
        for trace in trace_slots:
            if trace is not None:
                self.tracer.record(trace)
        return BatchLookupResult(rtt, served, used_local, attempts, success)

    # -- one source-AS group -------------------------------------------
    def _selection_keys(self, src: int, cand_idx: np.ndarray) -> np.ndarray:
        """Ordering keys, identical to ``ReplicaSelector.order_candidates``."""
        router = self.router
        src_idx = router.topology.index_of(src)
        if self.selection_policy == "latency":
            # Same expression as Router.one_way_to_many (float32 row +
            # float64 intra), so ranking ties break identically.
            row = router.latency_row(src)
            intra = router.intra_array
            key = intra[src_idx] + row[cand_idx] + intra[cand_idx]
            key[cand_idx == src_idx] = intra[src_idx]
            return key
        row = router.hop_row(src)
        key = row[cand_idx].astype(np.float64)
        key[cand_idx == src_idx] = 0.0
        return key

    def _local_branch(
        self,
        src: int,
        cand: np.ndarray,
        local_of_rows: np.ndarray,
        model=None,
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """(branch_launched, local_entry, local_end) for one group.

        ``branch_launched`` marks rows whose querier fired the parallel
        local request (§III-C); ``local_entry`` the subset whose local
        store actually holds the mapping; ``local_end`` when the local
        reply (or its timeout) lands.
        """
        m = len(cand)
        if not self.local_replica:
            zeros = np.zeros(m, dtype=bool)
            return zeros, zeros, 0.0
        branch = ~(cand == src).any(axis=1)
        if model is not None and model.is_down(src):
            local_end = max(self.timeout_ms, 2.0 * self.router.rtt_ms(src, src))
            return branch, np.zeros(m, dtype=bool), local_end
        local_end = 2.0 * self.router.topology.intra_latency(src)
        return branch, branch & (local_of_rows == src), local_end

    def _lookup_group(
        self,
        src: int,
        batch: GuidBatch,
        gidx: np.ndarray,
        model=None,
        issued_at: Optional[np.ndarray] = None,
        placement_cache: Optional[Dict[int, Tuple[PlacementRecord, ...]]] = None,
    ) -> Tuple[object, ...]:
        cand = batch.placements[gidx]
        m, k = cand.shape
        cand_idx = self.router.indices_of(cand)
        key = self._selection_keys(src, cand_idx)
        rtt_all = self.router.rtt_to_many(src, cand.ravel(), strict=False)
        rtt_all = rtt_all.reshape(m, k)
        branch, local_entry, local_end = self._local_branch(
            src, cand, batch.local_asns[gidx], model
        )
        rows = np.arange(m)
        tracing = placement_cache is not None

        if model is None:
            # Converged, failure-free: the best-ranked replica answers on
            # the first attempt; only the local race remains.
            choice = np.argmin(key, axis=1)
            global_rtt = rtt_all[rows, choice]
            won = local_entry & (local_end <= global_rtt)
            rtt = np.where(won, local_end, global_rtt)
            served = np.where(won, src, cand[rows, choice])
            attempts = np.where(won & (local_end <= 0.0), 0, 1)
            result = (rtt, served, won, attempts, np.ones(m, dtype=bool))
            if not tracing:
                return result
            traces = self._group_traces_converged(
                src, batch, gidx, cand, choice, global_rtt, branch,
                local_entry, local_end, won, rtt, served,
                issued_at, placement_cache,
            )
            return result + (traces,)

        outcome = self._outcome_matrix(src, batch, gidx, cand, model)
        order = np.argsort(key, axis=1, kind="stable")
        s_cand = np.take_along_axis(cand, order, axis=1)
        s_out = np.take_along_axis(outcome, order, axis=1)
        s_rtt = np.take_along_axis(rtt_all, order, axis=1)
        # Duplicate hash chains landing in one AS are a single queryable
        # host: later occurrences are skipped at zero cost.
        dup = np.zeros((m, k), dtype=bool)
        for j in range(1, k):
            dup[:, j] = (s_cand[:, :j] == s_cand[:, j : j + 1]).any(axis=1)
        cost = np.where(
            s_out == _TIMEOUT, np.maximum(self.timeout_ms, 2.0 * s_rtt), s_rtt
        )
        cost = np.where(dup, 0.0, cost)
        hit = (~dup) & (s_out == _HIT)
        has_hit = hit.any(axis=1)
        first_hit = np.argmax(hit, axis=1)
        cols = np.arange(k)
        after = has_hit[:, None] & (cols[None, :] > first_hit[:, None])
        walk_cost = np.where(after, 0.0, cost)
        elapsed = np.cumsum(walk_cost, axis=1)
        elapsed_before = elapsed - walk_cost
        executed = (~dup) & ~after
        walk_len = executed.sum(axis=1)

        global_rtt = elapsed[rows, first_hit]
        fail_elapsed = elapsed[:, -1]
        won = local_entry & (~has_hit | (local_end <= global_rtt))
        success = has_hit | local_entry
        rtt = np.where(
            won,
            local_end,
            np.where(
                has_hit,
                global_rtt,
                np.where(branch, np.maximum(fail_elapsed, local_end), fail_elapsed),
            ),
        )
        served = np.where(
            won, src, np.where(has_hit, s_cand[rows, first_hit], -1)
        )
        early = (executed & (elapsed_before < local_end)).sum(axis=1)
        attempts = np.where(won, early, walk_len)
        result = (rtt, served, won, attempts, success)
        if not tracing:
            return result
        traces = self._group_traces_walk(
            src, batch, gidx, s_cand, s_out, cost, executed, elapsed_before,
            won, branch, local_entry, local_end, rtt, served, success, model,
            issued_at, placement_cache,
        )
        return result + (traces,)

    # -- trace reconstruction (tracing runs only) ----------------------
    def _placement_of(
        self,
        batch: GuidBatch,
        guid_index: int,
        cache: Dict[int, Tuple[PlacementRecord, ...]],
    ) -> Tuple[PlacementRecord, ...]:
        placement = cache.get(guid_index)
        if placement is None:
            placement = batch.placement_records(guid_index)
            cache[guid_index] = placement
        return placement

    def _group_traces_converged(
        self,
        src: int,
        batch: GuidBatch,
        gidx: np.ndarray,
        cand: np.ndarray,
        choice: np.ndarray,
        global_rtt: np.ndarray,
        branch: np.ndarray,
        local_entry: np.ndarray,
        local_end: float,
        won: np.ndarray,
        rtt: np.ndarray,
        served: np.ndarray,
        issued_at: np.ndarray,
        placement_cache: Dict[int, Tuple[PlacementRecord, ...]],
    ) -> List[QueryTrace]:
        """Traces for the model-free fast path (one hit, plus the race).

        Mirrors the scalar walk exactly: the best-ranked replica's hit is
        the only attempt, and it is part of the trace unless the local
        reply landed before the walk could even start (``local_end <= 0``).
        """
        traces: List[QueryTrace] = []
        for r in range(len(gidx)):
            gi = int(gidx[r])
            placement = self._placement_of(batch, gi, placement_cache)
            launched = bool(branch[r])
            won_r = bool(won[r])
            if won_r and local_end <= 0.0:
                attempt_records: Tuple[AttemptTrace, ...] = ()
            else:
                asn = int(cand[r, choice[r]])
                attempt_records = (
                    AttemptTrace(
                        asn,
                        hash_index_of(placement, asn),
                        OUTCOME_HIT,
                        float(global_rtt[r]),
                    ),
                )
            local_outcome = None
            if launched:
                local_outcome = (
                    OUTCOME_HIT if bool(local_entry[r]) else OUTCOME_MISSING
                )
            traces.append(
                QueryTrace(
                    guid_value=batch.guids[gi].value,
                    source_asn=src,
                    issued_at=float(issued_at[r]),
                    k=len(placement),
                    placement=placement,
                    attempts=attempt_records,
                    local_launched=launched,
                    local_outcome=local_outcome,
                    local_end_ms=float(local_end) if launched else None,
                    used_local=won_r,
                    served_by=int(served[r]),
                    rtt_ms=float(rtt[r]),
                    success=True,
                    failure_cause=None,
                )
            )
        return traces

    def _group_traces_walk(
        self,
        src: int,
        batch: GuidBatch,
        gidx: np.ndarray,
        s_cand: np.ndarray,
        s_out: np.ndarray,
        cost: np.ndarray,
        executed: np.ndarray,
        elapsed_before: np.ndarray,
        won: np.ndarray,
        branch: np.ndarray,
        local_entry: np.ndarray,
        local_end: float,
        rtt: np.ndarray,
        served: np.ndarray,
        success: np.ndarray,
        model,
        issued_at: np.ndarray,
        placement_cache: Dict[int, Tuple[PlacementRecord, ...]],
    ) -> List[QueryTrace]:
        """Traces for the availability-model walk.

        An attempt made it into the scalar trace iff the walk issued it:
        non-duplicate, at or before the first hit, and — when the local
        race won — issued strictly before the local reply landed.  That
        is exactly ``executed`` (and the ``elapsed_before < local_end``
        refinement for won rows), so the reconstructed streams match the
        scalar resolver's record for record.
        """
        m, k = s_cand.shape
        src_down = (
            self.local_replica and model is not None and model.is_down(src)
        )
        traces: List[QueryTrace] = []
        for r in range(m):
            gi = int(gidx[r])
            placement = self._placement_of(batch, gi, placement_cache)
            exec_mask = executed[r]
            if bool(won[r]):
                exec_mask = exec_mask & (elapsed_before[r] < local_end)
            attempt_records = tuple(
                AttemptTrace(
                    int(s_cand[r, j]),
                    hash_index_of(placement, int(s_cand[r, j])),
                    _CODE_OUTCOMES[int(s_out[r, j])],
                    float(cost[r, j]),
                )
                for j in range(k)
                if exec_mask[j]
            )
            launched = bool(branch[r])
            local_outcome = None
            if launched:
                if src_down:
                    local_outcome = OUTCOME_TIMEOUT
                elif bool(local_entry[r]):
                    local_outcome = OUTCOME_HIT
                else:
                    local_outcome = OUTCOME_MISSING
            ok = bool(success[r])
            traces.append(
                QueryTrace(
                    guid_value=batch.guids[gi].value,
                    source_asn=src,
                    issued_at=float(issued_at[r]),
                    k=len(placement),
                    placement=placement,
                    attempts=attempt_records,
                    local_launched=launched,
                    local_outcome=local_outcome,
                    local_end_ms=float(local_end) if launched else None,
                    used_local=bool(won[r]),
                    served_by=int(served[r]) if ok else None,
                    rtt_ms=float(rtt[r]),
                    success=ok,
                    failure_cause=None if ok else FAILURE_EXHAUSTED,
                )
            )
        return traces

    def _outcome_matrix(
        self,
        src: int,
        batch: GuidBatch,
        gidx: np.ndarray,
        cand: np.ndarray,
        model,
    ) -> np.ndarray:
        """Outcome codes per (row, replica), memoized per (AS, GUID)."""
        m, k = cand.shape
        out = np.empty((m, k), dtype=np.int8)
        memo: Dict[Tuple[int, int], int] = {}
        for r in range(m):
            gi = int(gidx[r])
            guid = batch.guids[gi]
            for c in range(k):
                asn = int(cand[r, c])
                cached = memo.get((asn, gi))
                if cached is None:
                    raw = model.lookup_outcome(asn, guid)
                    cached = _OUTCOME_CODES.get(raw)
                    if cached is None:
                        raise ConfigurationError(
                            f"probe returned unknown outcome {raw!r}"
                        )
                    memo[(asn, gi)] = cached
                out[r, c] = cached
        return out


def _iter_source_groups(sources: np.ndarray):
    """Yield ``(source_asn, row_indices)`` per distinct source AS.

    Grouping is by sorted source value; within a group the original row
    order is preserved (stable sort), so per-row outcomes land back on
    the right queries.
    """
    order = np.argsort(sources, kind="stable")
    sorted_src = sources[order]
    if len(sorted_src) == 0:
        return
    boundaries = np.flatnonzero(
        np.r_[True, sorted_src[1:] != sorted_src[:-1]]
    )
    ends = np.r_[boundaries[1:], len(sorted_src)]
    for start, end in zip(boundaries, ends):
        yield int(sorted_src[start]), order[start:end]
