"""Batched replica placement: vectorized Algorithm 1 and §VII variants.

Mirrors the scalar placers bit for bit:

* :class:`~repro.hashing.rehash.GuidPlacer` — hash, longest-prefix match
  through a frozen :class:`~repro.bgp.interval_index.IntervalIndex`
  (exact vs. the trie by construction), re-hash the IP-hole residue with
  the same function index, deputy-AS fallback for exhausted chains;
* :class:`~repro.hashing.asnum_placer.ASNumberPlacer` — hash modulo the
  participant roster;
* :class:`~repro.hashing.asnum_placer.WeightedASPlacer` — hash mapped
  through the cumulative weight distribution.

The hash layer dispatches on the family: :class:`FastHasher` uses its
native ``hash_batch``; any other :class:`HashFamily` (e.g. the salted
SHA-256 reference family the resolver defaults to) falls back to a
per-value loop, which is still cheap because each GUID is hashed once
per replica chain instead of once per *lookup*.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bgp.interval_index import HOLE, IntervalIndex
from ..errors import ConfigurationError
from ..hashing.asnum_placer import ASNumberPlacer, WeightedASPlacer
from ..hashing.hashers import FastHasher, HashFamily
from ..hashing.rehash import GuidPlacer

#: Loose GUID input: raw integer identifier values.
GuidValues = Union[Sequence[int], np.ndarray]


def _hash_many(family: HashFamily, values: GuidValues, index: int) -> np.ndarray:
    """Apply hash function ``index`` to every value; returns ``uint64``.

    Bit-identical to looping :meth:`HashFamily.hash_one`; the
    :class:`FastHasher` branch uses the vectorized kernel.
    """
    if isinstance(family, FastHasher):
        arr = np.asarray(values)
        if arr.dtype == np.uint64:
            folded = arr  # already 64-bit: folding is the identity
        else:
            folded = FastHasher.fold_guids([int(v) for v in values])
        return family.hash_batch(folded, index)
    return np.asarray(
        [family.hash_one(int(v), index) for v in values], dtype=np.uint64
    )


def _rehash_many(
    family: HashFamily, addresses: np.ndarray, index: int
) -> np.ndarray:
    """Vectorized :meth:`HashFamily.rehash` over an address array."""
    if isinstance(family, FastHasher):
        return family.rehash_batch(addresses, index)
    return np.asarray(
        [family.rehash(int(v), index) for v in addresses], dtype=np.uint64
    )


def resolve_batch(
    placer: GuidPlacer,
    guid_values: GuidValues,
    index: Optional[IntervalIndex] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`GuidPlacer.resolve_all` over many GUIDs.

    Returns ``(asns, attempts, via_deputy)`` of shape ``(n, K)`` — the
    hosting AS per replica chain, the number of hash applications used,
    and the deputy-fallback flag, exactly as the scalar placer computes
    them.  ``index`` is a frozen snapshot of ``placer.table``; the batch
    is only valid while the table does not mutate (BGP churn requires the
    scalar oracle).
    """
    if index is None:
        index = placer.table.build_interval_index()
    values = (
        guid_values
        if isinstance(guid_values, np.ndarray)
        else list(guid_values)
    )
    n = len(values)
    k = placer.k
    family = placer.hash_family
    max_rehashes = placer.max_rehashes
    asns = np.full((n, k), HOLE, dtype=np.int64)
    attempts = np.zeros((n, k), dtype=np.int64)
    via_deputy = np.zeros((n, k), dtype=bool)

    for i in range(k):
        addresses = _hash_many(family, values, i)
        unresolved = np.arange(n)
        for attempt in range(1, max_rehashes + 1):
            owners = index.lookup_batch(addresses[unresolved])
            hit = owners != HOLE
            hit_rows = unresolved[hit]
            asns[hit_rows, i] = owners[hit]
            attempts[hit_rows, i] = attempt
            unresolved = unresolved[~hit]
            if len(unresolved) == 0:
                break
            if attempt < max_rehashes:
                addresses[unresolved] = _rehash_many(
                    family, addresses[unresolved], i
                )
        # Deputy fallback (≈0.03% of chains at M=10): the scalar
        # nearest-prefix trie search is fine at this volume.
        for row in unresolved.tolist():
            announcement, _dist = placer.table.nearest(int(addresses[row]))
            asns[row, i] = announcement.asn
            attempts[row, i] = max_rehashes
            via_deputy[row, i] = True
    return asns, attempts, via_deputy


def _asnum_batch(placer: ASNumberPlacer, values: List[int]) -> np.ndarray:
    roster = np.asarray(placer.asns, dtype=np.int64)
    out = np.empty((len(values), placer.k), dtype=np.int64)
    for i in range(placer.k):
        slots = _hash_many(placer.hash_family, values, i) % np.uint64(len(roster))
        out[:, i] = roster[slots.astype(np.int64)]
    return out


def _weighted_batch(placer: WeightedASPlacer, values: List[int]) -> np.ndarray:
    roster = np.asarray(placer.asns, dtype=np.int64)
    cumulative = placer._cumulative
    out = np.empty((len(values), placer.k), dtype=np.int64)
    for i in range(placer.k):
        draws = _hash_many(placer.hash_family, values, i).astype(np.float64)
        draws /= float(1 << 64)
        slots = np.searchsorted(cumulative, draws, side="right")
        slots = np.minimum(slots, len(roster) - 1)
        out[:, i] = roster[slots]
    return out


def batch_hosting_asns(
    placer: object,
    guid_values: GuidValues,
    index: Optional[IntervalIndex] = None,
) -> np.ndarray:
    """Hosting AS numbers for many GUIDs: ``(n, K)`` in replica order.

    Dispatches on the placer type; an unrecognized placer falls back to
    its scalar ``hosting_asns`` per GUID, so any object satisfying the
    placer interface stays usable (just not vectorized).
    """
    asns, _attempts, _deputy = batch_resolutions(placer, guid_values, index)
    return asns


def batch_resolutions(
    placer: object,
    guid_values: GuidValues,
    index: Optional[IntervalIndex] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(asns, hash_attempts, via_deputy)`` for many GUIDs, shape ``(n, K)``.

    The full Algorithm 1 provenance :meth:`GuidPlacer.resolve_all`
    carries, batched.  Roster-based placers (§VII variants) resolve
    every chain in one hash application and never need a deputy, so
    their provenance planes are constant; an unrecognized placer goes
    through its scalar ``resolve_all``/``hosting_asns`` per GUID.
    """
    values = [int(v) for v in guid_values]
    if isinstance(placer, GuidPlacer):
        return resolve_batch(placer, values, index)
    if isinstance(placer, ASNumberPlacer):
        asns = _asnum_batch(placer, values)
    elif isinstance(placer, WeightedASPlacer):
        asns = _weighted_batch(placer, values)
    else:
        resolve_all = getattr(placer, "resolve_all", None)
        if resolve_all is not None:
            rows = [resolve_all(v) for v in values]
            asns = np.asarray(
                [[res.asn for res in row] for row in rows], dtype=np.int64
            )
            attempts = np.asarray(
                [[getattr(res, "attempts", 1) for res in row] for row in rows],
                dtype=np.int64,
            )
            deputy = np.asarray(
                [
                    [getattr(res, "via_deputy", False) for res in row]
                    for row in rows
                ],
                dtype=bool,
            )
            return asns, attempts, deputy
        hosting = getattr(placer, "hosting_asns", None)
        if hosting is None:
            raise ConfigurationError(
                f"object {placer!r} does not expose a placer interface"
            )
        asns = np.asarray([hosting(v) for v in values], dtype=np.int64)
    return asns, np.ones_like(asns), np.zeros(asns.shape, dtype=bool)
