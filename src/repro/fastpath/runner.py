"""Optional multiprocessing shard runner for paper-scale batches.

Lookups grouped by source AS are embarrassingly parallel: each group
touches one Dijkstra row and never mutates shared state (the engine keeps
no stores).  The runner splits the source-AS groups of a batch into
``n_jobs`` row-balanced shards and fans them out over a fork-based
``multiprocessing.Pool``:

* the engine and :class:`~repro.fastpath.engine.GuidBatch` are published
  through a module global *before* forking, so workers inherit them
  copy-on-write and nothing heavyweight (trie, topology, CSR matrices)
  is ever pickled;
* each worker runs the same serial group loop the in-process path uses,
  and its per-row results are scattered back by explicit row indices —
  output is therefore bit-identical to ``n_jobs=1`` regardless of worker
  scheduling;
* platforms without the ``fork`` start method (or ``n_jobs=1``, or a
  single source group) silently fall back to the serial path.

Availability models are not supported here: probe callables may close
over unpicklable scenario state and their memoization is per-process, so
the engine only dispatches availability-free workloads to this runner.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Tuple

import numpy as np

from .engine import BatchLookupResult, FastpathEngine, GuidBatch

#: (engine, batch) inherited by forked workers; set only around a Pool run.
_SHARED: Optional[Tuple[FastpathEngine, GuidBatch]] = None


def _run_shard(
    shard: Tuple[np.ndarray, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Worker body: run the serial engine over one shard's rows."""
    guid_idx, sources = shard
    engine, batch = _SHARED
    result = engine._lookup_serial(batch, guid_idx, sources, None)
    return (
        result.rtt_ms,
        result.served_by,
        result.used_local,
        result.attempts,
        result.success,
    )


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def _shard_rows(sources: np.ndarray, n_shards: int) -> List[np.ndarray]:
    """Split row indices into ≤ ``n_shards`` row-balanced shards, cutting
    only at source-AS group boundaries (each group needs its Dijkstra row
    in exactly one worker)."""
    order = np.argsort(sources, kind="stable")
    sorted_src = sources[order]
    boundaries = np.flatnonzero(np.r_[True, sorted_src[1:] != sorted_src[:-1]])
    n_groups = len(boundaries)
    n_shards = max(1, min(n_shards, n_groups))
    # Cut the group-start offsets at evenly spaced row targets: groups are
    # contiguous in `order`, so each shard is one slice of it.
    targets = (np.arange(1, n_shards) * len(sources)) // n_shards
    cut_idx = np.searchsorted(boundaries, targets, side="left")
    cuts = np.unique(boundaries[np.clip(cut_idx, 0, n_groups - 1)])
    starts = np.r_[0, cuts[cuts > 0]]
    ends = np.r_[starts[1:], len(sources)]
    return [order[s:e] for s, e in zip(starts, ends) if e > s]


def run_sharded(
    engine: FastpathEngine,
    batch: GuidBatch,
    guid_idx: np.ndarray,
    sources: np.ndarray,
    n_jobs: int,
) -> BatchLookupResult:
    """Execute a lookup batch across ``n_jobs`` worker processes.

    Falls back to the serial path when sharding cannot help (one group,
    one job) or fork is unavailable.
    """
    shards = _shard_rows(sources, n_jobs)
    if len(shards) <= 1:
        return engine._lookup_serial(batch, guid_idx, sources, None)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return engine._lookup_serial(batch, guid_idx, sources, None)

    n = len(sources)
    rtt = np.empty(n, dtype=np.float64)
    served = np.empty(n, dtype=np.int64)
    used_local = np.empty(n, dtype=bool)
    attempts = np.empty(n, dtype=np.int64)
    success = np.empty(n, dtype=bool)

    global _SHARED
    _SHARED = (engine, batch)
    try:
        with ctx.Pool(processes=len(shards)) as pool:
            payloads = [(guid_idx[rows], sources[rows]) for rows in shards]
            for rows, parts in zip(shards, pool.map(_run_shard, payloads)):
                rtt[rows], served[rows], used_local[rows] = parts[0], parts[1], parts[2]
                attempts[rows], success[rows] = parts[3], parts[4]
    finally:
        _SHARED = None
    return BatchLookupResult(rtt, served, used_local, attempts, success)
