"""Consistent hashing of GUIDs into announced address space (§III-A/B)."""

from .asnum_placer import ASNumberPlacer, WeightedASPlacer
from .bucketing import BucketIndex, BucketResolution
from .hashers import FastHasher, HashFamily, Sha256Hasher
from .rehash import (
    DEFAULT_MAX_REHASHES,
    GuidPlacer,
    HashResolution,
    hole_probability,
    place_guids_bulk,
)

__all__ = [
    "ASNumberPlacer",
    "WeightedASPlacer",
    "BucketIndex",
    "BucketResolution",
    "FastHasher",
    "HashFamily",
    "Sha256Hasher",
    "DEFAULT_MAX_REHASHES",
    "GuidPlacer",
    "HashResolution",
    "hole_probability",
    "place_guids_bulk",
]
