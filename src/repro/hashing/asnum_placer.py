"""Alternative placement schemes from the paper's future-work list (§VII).

"In further work, we plan to consider other variations of the proposed
DMap distribution scheme — for example GUIDs can be hashed directly to AS
numbers or allocation sizes can be varied to reflect economic incentives
at ASs."

Two placers implementing the same interface as
:class:`~repro.hashing.rehash.GuidPlacer` (``k``, ``resolve_one``,
``resolve_all``, ``hosting_asns``), so the resolver and the simulation can
swap them in:

* :class:`ASNumberPlacer` — hash the GUID directly onto the participant
  list.  No IP holes, no rehashing; storage load becomes uniform *per AS*
  instead of proportional to announced address space.
* :class:`WeightedASPlacer` — hash onto an explicit weight distribution
  over ASs (e.g. negotiated hosting contracts), implemented with
  rendezvous-free cumulative-weight hashing.  Setting weights proportional
  to announced space recovers baseline DMap's load profile; setting them
  to payment tiers realizes the economic-incentive variant.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.guid import GUID
from ..errors import ConfigurationError
from .hashers import HashFamily, Sha256Hasher
from .rehash import HashResolution

GuidLike = Union[GUID, int]


class ASNumberPlacer:
    """Hash GUIDs directly to AS numbers (uniformly over participants).

    Each of the K hash functions selects one AS from the sorted
    participant list.  The ``address`` recorded in the resolution is the
    participant *index* — there is no underlying IP address, which is
    exactly the variant's point: placement no longer depends on the BGP
    table at all (at the cost of needing an agreed participant roster).
    """

    def __init__(
        self,
        asns: Sequence[int],
        k: int = 5,
        hash_family: Optional[HashFamily] = None,
    ) -> None:
        if not asns:
            raise ConfigurationError("need at least one participating AS")
        self.asns = sorted(set(int(a) for a in asns))
        self.hash_family = hash_family or Sha256Hasher(
            k, address_bits=64, salt=b"dmap-asnum"
        )
        if self.hash_family.k != k:
            raise ConfigurationError("hash_family.k must equal k")

    @property
    def k(self) -> int:
        """Replication factor."""
        return self.hash_family.k

    def resolve_one(self, guid: GuidLike, index: int) -> HashResolution:
        """Pick the AS for replica ``index`` of ``guid``."""
        slot = self.hash_family.hash_one(guid, index) % len(self.asns)
        return HashResolution(
            address=slot, asn=self.asns[slot], attempts=1, via_deputy=False
        )

    def resolve_all(self, guid: GuidLike) -> List[HashResolution]:
        """All K replica placements."""
        return [self.resolve_one(guid, i) for i in range(self.k)]

    def hosting_asns(self, guid: GuidLike) -> List[int]:
        """Hosting AS numbers in replica order."""
        return [res.asn for res in self.resolve_all(guid)]


class WeightedASPlacer:
    """Hash GUIDs to ASs proportionally to explicit hosting weights.

    A 64-bit hash is mapped through the cumulative weight distribution, so
    AS ``i`` receives a ``w_i / sum(w)`` share of replicas in expectation.
    Deterministic, locally computable from the agreed (asn, weight) list.
    """

    def __init__(
        self,
        weights: Dict[int, float],
        k: int = 5,
        hash_family: Optional[HashFamily] = None,
    ) -> None:
        if not weights:
            raise ConfigurationError("need at least one weighted AS")
        if any(w < 0 for w in weights.values()):
            raise ConfigurationError("weights must be non-negative")
        total = float(sum(weights.values()))
        if total <= 0:
            raise ConfigurationError("total weight must be positive")
        self.asns = sorted(weights)
        cumulative = np.cumsum([weights[a] / total for a in self.asns])
        cumulative[-1] = 1.0  # guard against float drift
        self._cumulative = cumulative
        self.hash_family = hash_family or Sha256Hasher(
            k, address_bits=64, salt=b"dmap-weighted"
        )
        if self.hash_family.k != k:
            raise ConfigurationError("hash_family.k must equal k")

    @property
    def k(self) -> int:
        """Replication factor."""
        return self.hash_family.k

    def share_of(self, asn: int) -> float:
        """Expected replica share of ``asn``."""
        idx = bisect.bisect_left(self.asns, asn)
        if idx >= len(self.asns) or self.asns[idx] != asn:
            raise ConfigurationError(f"AS {asn} is not a participant")
        lower = self._cumulative[idx - 1] if idx > 0 else 0.0
        return float(self._cumulative[idx] - lower)

    def resolve_one(self, guid: GuidLike, index: int) -> HashResolution:
        """Pick the AS for replica ``index`` of ``guid``."""
        draw = self.hash_family.hash_one(guid, index) / float(1 << 64)
        slot = int(np.searchsorted(self._cumulative, draw, side="right"))
        slot = min(slot, len(self.asns) - 1)
        return HashResolution(
            address=slot, asn=self.asns[slot], attempts=1, via_deputy=False
        )

    def resolve_all(self, guid: GuidLike) -> List[HashResolution]:
        """All K replica placements."""
        return [self.resolve_one(guid, i) for i in range(self.k)]

    def hosting_asns(self, guid: GuidLike) -> List[int]:
        """Hosting AS numbers in replica order."""
        return [res.asn for res in self.resolve_all(guid)]
