"""Two-level bucketing for very sparse address spaces (§III-B, Fig. 3).

IPv6-like spaces are almost entirely holes, so rehashing until an announced
address is hit would rarely terminate.  The paper instead indexes each
*announced address segment* by a ``(bucket ID, segment ID)`` pair: the GUID
is hashed once to choose a bucket out of N, and once more to choose one of
the (at most S) segments registered in that bucket.  N is made large so S
stays small.

This module implements that scheme over arbitrary announced segments.  The
segment registry is the analogue of the BGP prefix table: every router
derives the same bucket layout from the same announced-segment list, so the
mapping host remains locally computable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from ..bgp.prefix import Announcement
from ..core.guid import GUID
from ..errors import ConfigurationError, EmptyPrefixTableError
from .hashers import Sha256Hasher


@dataclass(frozen=True)
class BucketResolution:
    """Outcome of a bucketed placement: which segment hosts the replica."""

    bucket_id: int
    segment_index: int
    announcement: Announcement


class BucketIndex:
    """Deterministic two-level (bucket, segment) index over announcements.

    Parameters
    ----------
    announcements:
        The announced address segments of the sparse space.
    n_buckets:
        N in the paper — "We make N large so that S can be kept small."
    k:
        Replication factor; each of the K placement functions uses its own
        pair of hash draws so replicas land in independent buckets.
    seed_salt:
        Salt shared by all routers (part of the pre-agreed configuration).

    Notes
    -----
    Buckets are filled by hashing each segment itself, so every router that
    knows the announcement list derives the identical layout with no
    coordination.  Empty buckets are skipped by deterministic linear
    probing, guaranteeing every GUID resolves as long as at least one
    segment is announced.
    """

    def __init__(
        self,
        announcements: Sequence[Announcement],
        n_buckets: int = 4096,
        k: int = 1,
        seed_salt: bytes = b"dmap-bucket",
    ) -> None:
        if n_buckets < 1:
            raise ConfigurationError("n_buckets must be >= 1")
        if not announcements:
            raise EmptyPrefixTableError("bucket index needs at least one segment")
        self.n_buckets = n_buckets
        self.k = k
        # Hash function pair per replica: one for the bucket draw, one for
        # the segment draw.  Wide output (64-bit) then reduced mod N / S.
        self._bucket_hashers = Sha256Hasher(k, address_bits=64, salt=seed_salt + b"/b")
        self._segment_hashers = Sha256Hasher(k, address_bits=64, salt=seed_salt + b"/s")
        self._segment_placer = Sha256Hasher(1, address_bits=64, salt=seed_salt + b"/p")

        self._buckets: List[List[Announcement]] = [[] for _ in range(n_buckets)]
        for ann in sorted(announcements):
            bucket = self._segment_placer.hash_one(ann.prefix.base, 0) % n_buckets
            self._buckets[bucket].append(ann)
        self._non_empty = [i for i, b in enumerate(self._buckets) if b]

    @property
    def max_segments_per_bucket(self) -> int:
        """S — the realized worst-case bucket occupancy."""
        return max(len(b) for b in self._buckets)

    @property
    def occupancy(self) -> float:
        """Fraction of buckets holding at least one segment."""
        return len(self._non_empty) / self.n_buckets

    def bucket_contents(self, bucket_id: int) -> List[Announcement]:
        """Segments registered in ``bucket_id`` (deterministic order)."""
        return list(self._buckets[bucket_id])

    def resolve_one(self, guid: Union[GUID, int], index: int) -> BucketResolution:
        """Place replica ``index`` of ``guid``.

        The first hash picks the bucket; empty buckets are skipped by
        linear probing (deterministic, so all routers agree).  The second
        hash picks the segment inside the bucket.
        """
        if not 0 <= index < self.k:
            raise ConfigurationError(f"replica index {index} out of range [0, {self.k})")
        start = self._bucket_hashers.hash_one(guid, index) % self.n_buckets
        bucket_id = start
        while not self._buckets[bucket_id]:
            bucket_id = (bucket_id + 1) % self.n_buckets
        segments = self._buckets[bucket_id]
        seg_idx = self._segment_hashers.hash_one(guid, index) % len(segments)
        return BucketResolution(bucket_id, seg_idx, segments[seg_idx])

    def resolve_all(self, guid: Union[GUID, int]) -> List[BucketResolution]:
        """All K replica placements for ``guid``."""
        return [self.resolve_one(guid, i) for i in range(self.k)]

    def hosting_asns(self, guid: Union[GUID, int]) -> List[int]:
        """Hosting AS numbers for all K replicas, in replica order."""
        return [res.announcement.asn for res in self.resolve_all(guid)]

    def load_by_asn(self, guids: Sequence[Union[GUID, int]]) -> Dict[int, int]:
        """Replica count hosted per AS for a batch of GUIDs (load studies)."""
        loads: Dict[int, int] = {}
        for guid in guids:
            for asn in self.hosting_asns(guid):
                loads[asn] = loads.get(asn, 0) + 1
        return loads
