"""Families of K independent consistent hash functions GUID → address.

DMap applies ``K > 1`` predefined hash functions to a GUID to obtain K
network addresses (§III-A).  The functions must be (a) deterministic and
agreed upon by every router in advance, (b) pairwise independent enough that
the K replicas land at unrelated ASs, and (c) near-uniform over the address
space so storage load is proportional to announced space (§IV-B.2c).

Two interchangeable implementations are provided:

* :class:`Sha256Hasher` — the reference implementation: SHA-256 over the
  GUID bytes with a per-function salt.  Cryptographic quality, used by the
  resolver and the discrete-event simulation.
* :class:`FastHasher` — a vectorized numpy implementation (splitmix64-style
  integer mixing) used by the storage-load experiment, which hashes up to
  10^7 GUIDs × K replicas (Fig. 6).  Statistically uniform, not
  cryptographic.

Both satisfy the :class:`HashFamily` interface and are property-tested for
determinism and uniformity.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import List, Sequence, Union

import numpy as np

from ..core.guid import ADDRESS_BITS, GUID, NetworkAddress
from ..errors import ConfigurationError

GuidLike = Union[GUID, int]


def _guid_value(guid: GuidLike) -> int:
    return guid.value if isinstance(guid, GUID) else int(guid)


class HashFamily(ABC):
    """K deterministic hash functions from GUID space to address space."""

    def __init__(self, k: int, address_bits: int = ADDRESS_BITS) -> None:
        if k < 1:
            raise ConfigurationError(f"replication factor K must be >= 1, got {k}")
        if address_bits < 1:
            raise ConfigurationError("address_bits must be positive")
        self.k = k
        self.address_bits = address_bits

    @abstractmethod
    def hash_one(self, guid: GuidLike, index: int) -> int:
        """Apply hash function ``index`` (0-based, < K) to ``guid``."""

    def hash_all(self, guid: GuidLike) -> List[int]:
        """Apply all K functions; returns K address values."""
        return [self.hash_one(guid, i) for i in range(self.k)]

    def addresses(self, guid: GuidLike) -> List[NetworkAddress]:
        """Convenience wrapper returning :class:`NetworkAddress` objects."""
        return [NetworkAddress(v, self.address_bits) for v in self.hash_all(guid)]

    def rehash(self, address_value: int, index: int) -> int:
        """Re-hash an address value (IP-hole protocol, Algorithm 1 line 7).

        The re-hash keeps the same function index so the K replica chains
        stay independent.
        """
        return self.hash_one(address_value, index)


class Sha256Hasher(HashFamily):
    """Salted SHA-256 hash family (reference implementation).

    Function ``i`` computes ``SHA256(salt || i || value-bytes)`` and keeps
    the top ``address_bits`` bits.  All routers agree on ``salt`` and K out
    of band, as the paper requires for its "predefined consistent hash
    function" (§III-A).
    """

    def __init__(
        self,
        k: int,
        address_bits: int = ADDRESS_BITS,
        salt: bytes = b"dmap",
    ) -> None:
        super().__init__(k, address_bits)
        self.salt = salt
        self._prefixes = [salt + i.to_bytes(4, "big") for i in range(k)]

    def hash_one(self, guid: GuidLike, index: int) -> int:
        if not 0 <= index < self.k:
            raise ConfigurationError(f"hash index {index} out of range [0, {self.k})")
        value = _guid_value(guid)
        payload = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        digest = hashlib.sha256(self._prefixes[index] + payload).digest()
        word = int.from_bytes(digest[:8], "big")
        return word >> (64 - self.address_bits)


# splitmix64 constants — the standard finalizer from Vigna's splitmix64,
# a well-mixed bijection on 64-bit integers.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    x = (x + _SM64_GAMMA).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _SM64_M1
    x ^= x >> np.uint64(27)
    x *= _SM64_M2
    x ^= x >> np.uint64(31)
    return x


class FastHasher(HashFamily):
    """Vectorized hash family for bulk experiments (Fig. 6 scale).

    GUIDs wider than 64 bits are first folded to 64 bits by XOR-ing their
    64-bit words; the fold is uniform when the input is uniform, which is
    the regime of the storage-load experiment (GUIDs drawn at random).
    """

    def __init__(
        self,
        k: int,
        address_bits: int = ADDRESS_BITS,
        seed: int = 0x0D_AB,
    ) -> None:
        super().__init__(k, address_bits)
        self.seed = seed
        # One independent 64-bit key per function, derived deterministically.
        keys = _splitmix64(
            np.arange(1, k + 1, dtype=np.uint64) * np.uint64(seed * 2 + 1)
        )
        self._keys = keys

    @staticmethod
    def fold_guids(values: Sequence[int]) -> np.ndarray:
        """Fold arbitrary-width integer GUIDs into a uint64 array."""
        mask = (1 << 64) - 1
        folded = np.empty(len(values), dtype=np.uint64)
        for i, raw in enumerate(values):
            v = int(raw)
            acc = 0
            while True:
                acc ^= v & mask
                v >>= 64
                if v == 0:
                    break
            folded[i] = acc
        return folded

    def hash_one(self, guid: GuidLike, index: int) -> int:
        if not 0 <= index < self.k:
            raise ConfigurationError(f"hash index {index} out of range [0, {self.k})")
        folded = self.fold_guids([_guid_value(guid)])
        return int(self.hash_batch(folded, index)[0])

    def hash_batch(self, folded_guids: np.ndarray, index: int) -> np.ndarray:
        """Hash a uint64 array with function ``index``; returns address values.

        This is the bulk path: ~10^7 hashes per call complete in tens of
        milliseconds, which is what makes the Fig. 6 experiment tractable
        in pure Python.
        """
        if not 0 <= index < self.k:
            raise ConfigurationError(f"hash index {index} out of range [0, {self.k})")
        mixed = _splitmix64(folded_guids.astype(np.uint64) ^ self._keys[index])
        return (mixed >> np.uint64(64 - self.address_bits)).astype(np.uint64)

    def rehash_batch(self, address_values: np.ndarray, index: int) -> np.ndarray:
        """Vectorized counterpart of :meth:`rehash` for the IP-hole sweep."""
        return self.hash_batch(address_values.astype(np.uint64), index)
