"""Algorithm 1: hashing a GUID into *announced* address space.

About 45-48% of the IPv4 space is unannounced (§III-B), so a hashed value
frequently lands in an *IP hole*.  The border gateway then re-hashes up to
``M - 1`` times; if every attempt still lands in a hole it falls back to
the *deputy AS* — the AS announcing the prefix with minimum IP (XOR)
distance to the final hashed value.  The paper reports the probability of
exhausting M = 10 rehashes is ≈ 0.034% at a 55% announcement ratio
(0.45^10), so deputy fallback is rare; the residual load skew it causes is
what keeps the median NLR slightly above 1 (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from ..bgp.interval_index import HOLE, IntervalIndex
from ..bgp.table import GlobalPrefixTable
from ..core.guid import GUID
from ..errors import ConfigurationError
from .hashers import FastHasher, HashFamily

#: Default maximum number of hash attempts (M in Algorithm 1).
DEFAULT_MAX_REHASHES = 10


@dataclass(frozen=True)
class HashResolution:
    """Outcome of resolving one GUID through one hash function.

    Attributes
    ----------
    address:
        The final hashed address value.
    asn:
        The AS that will host this replica.
    attempts:
        Number of hash applications used (1 = first hash announced).
    via_deputy:
        Whether the deputy-AS fallback (nearest prefix) was needed.
    """

    address: int
    asn: int
    attempts: int
    via_deputy: bool


class GuidPlacer:
    """Applies Algorithm 1 for each of the K hash functions.

    This is the component every border gateway runs locally: it needs only
    the hash family (agreed upon beforehand) and the local BGP view, so any
    network entity can deterministically derive the K hosting ASs of any
    GUID — the paper's key "direct mapping" property.
    """

    def __init__(
        self,
        hash_family: HashFamily,
        table: GlobalPrefixTable,
        max_rehashes: int = DEFAULT_MAX_REHASHES,
    ) -> None:
        if max_rehashes < 1:
            raise ConfigurationError(f"max_rehashes must be >= 1, got {max_rehashes}")
        self.hash_family = hash_family
        self.table = table
        self.max_rehashes = max_rehashes

    @property
    def k(self) -> int:
        """Replication factor (number of hash functions)."""
        return self.hash_family.k

    def resolve_one(self, guid: Union[GUID, int], index: int) -> HashResolution:
        """Algorithm 1 for hash function ``index``."""
        value = self.hash_family.hash_one(guid, index)
        for attempt in range(1, self.max_rehashes + 1):
            announcement = self.table.resolve(value)
            if announcement is not None:
                return HashResolution(value, announcement.asn, attempt, False)
            if attempt < self.max_rehashes:
                value = self.hash_family.rehash(value, index)
        announcement, _distance = self.table.nearest(value)
        return HashResolution(value, announcement.asn, self.max_rehashes, True)

    def resolve_all(self, guid: Union[GUID, int]) -> List[HashResolution]:
        """Hosting resolution for every replica of ``guid``.

        The K resolutions are independent: replica ``i`` re-hashes with
        function ``i`` only, so a hole in one chain does not perturb the
        others.  Duplicate ASs across replicas are possible (two hash
        functions may land in the same AS) and are preserved — the caller
        decides whether to de-duplicate storage.
        """
        return [self.resolve_one(guid, i) for i in range(self.k)]

    def hosting_asns(self, guid: Union[GUID, int]) -> List[int]:
        """Just the K hosting AS numbers, in replica order."""
        return [res.asn for res in self.resolve_all(guid)]


def place_guids_bulk(
    folded_guids: np.ndarray,
    hasher: FastHasher,
    index: IntervalIndex,
    table: GlobalPrefixTable,
    max_rehashes: int = DEFAULT_MAX_REHASHES,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized Algorithm 1 over millions of GUIDs (Fig. 6 scale).

    Parameters
    ----------
    folded_guids:
        ``uint64`` array of folded GUID values (see
        :meth:`FastHasher.fold_guids`).
    hasher:
        The K-function vectorized hash family.
    index:
        Frozen interval snapshot of ``table`` for batch LPM.
    table:
        The live table, consulted only for the rare deputy-AS fallback.
    max_rehashes:
        M in Algorithm 1.

    Returns
    -------
    (asns, attempts, via_deputy):
        ``asns`` has shape ``(len(folded_guids), K)`` — hosting AS per
        replica; ``attempts`` the matching number of hash applications;
        ``via_deputy`` marks replicas that exhausted all M rehashes and
        fell back to the nearest-prefix deputy AS.
    """
    n = len(folded_guids)
    k = hasher.k
    asns = np.full((n, k), HOLE, dtype=np.int64)
    attempts = np.zeros((n, k), dtype=np.int64)
    via_deputy = np.zeros((n, k), dtype=bool)

    for i in range(k):
        addresses = hasher.hash_batch(folded_guids, i)
        unresolved = np.arange(n)
        for attempt in range(1, max_rehashes + 1):
            owners = index.lookup_batch(addresses[unresolved])
            hit = owners != HOLE
            hit_rows = unresolved[hit]
            asns[hit_rows, i] = owners[hit]
            attempts[hit_rows, i] = attempt
            unresolved = unresolved[~hit]
            if len(unresolved) == 0:
                break
            if attempt < max_rehashes:
                addresses[unresolved] = hasher.rehash_batch(
                    addresses[unresolved], i
                )
        # Deputy fallback for the stragglers (≈0.03% of GUIDs at M=10):
        # scalar nearest-prefix search on the trie is fine at this volume.
        for row in unresolved.tolist():
            announcement, _dist = table.nearest(int(addresses[row]))
            asns[row, i] = announcement.asn
            attempts[row, i] = max_rehashes
            via_deputy[row, i] = True

    return asns, attempts, via_deputy


def hole_probability(announcement_ratio: float, max_rehashes: int) -> float:
    """Probability all M hashes land in holes: ``(1 - ratio)**M``.

    Matches the paper's example: ratio 0.55, M = 10 → ≈ 0.034%.
    """
    if not 0.0 <= announcement_ratio <= 1.0:
        raise ConfigurationError("announcement_ratio must lie in [0, 1]")
    if max_rehashes < 1:
        raise ConfigurationError("max_rehashes must be >= 1")
    return (1.0 - announcement_ratio) ** max_rehashes
