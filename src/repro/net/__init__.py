"""Live asyncio serving runtime: DMap over real sockets.

The offline engines (:mod:`repro.core`, :mod:`repro.fastpath`,
:mod:`repro.sim`) *account* for the time the DMap protocol would take;
this package actually runs it.  One asyncio datagram server per hosting
AS answers LOOKUP / INSERT / UPDATE frames from the same
:class:`~repro.core.mapping.MappingStore` the analytic resolver uses,
an in-process cluster shapes every response by the topology's RTT
matrix (plus optional packet loss), and a client issues the paper's K
parallel replica queries with per-attempt timeouts, bounded
exponential-backoff retry and first-success cancellation — so the
wire-measured latency distribution reproduces the Fig. 4 analytic
distribution on the same seed.

Submodules
----------
:mod:`.protocol`
    The compact versioned binary wire codec (pure, event-loop-free).
:mod:`.node`
    The per-AS asyncio datagram server, including Algorithm-1 deputy
    forwarding when a queried AS is not the true holder.
:mod:`.cluster`
    The loopback multi-node harness plus the RTT/loss
    :class:`~repro.net.cluster.LatencyShaper`.
:mod:`.client`
    :class:`~repro.net.client.DMapClient`: K-parallel lookups, retries,
    deterministic backoff schedules, :mod:`repro.obs` traces.
:mod:`.loadgen`
    Open-loop asyncio load generator reporting QPS and latency
    percentiles.

Run ``python -m repro.net selftest`` for the end-to-end proof: boot a
seeded cluster, measure wire RTTs, compare against the analytic
resolver's predictions.
"""

from .client import ClientConfig, DMapClient, LiveLookupResult, LiveWriteResult
from .cluster import ClusterConfig, LatencyShaper, LocalCluster
from .loadgen import BenchReport, LoadgenConfig, run_loadgen
from .node import DMapNode
from .protocol import (
    ErrorFrame,
    LookupFrame,
    ResponseFrame,
    WriteFrame,
    decode,
    encode,
)

__all__ = [
    "BenchReport",
    "ClientConfig",
    "ClusterConfig",
    "DMapClient",
    "DMapNode",
    "ErrorFrame",
    "LatencyShaper",
    "LiveLookupResult",
    "LiveWriteResult",
    "LoadgenConfig",
    "LocalCluster",
    "LookupFrame",
    "ResponseFrame",
    "WriteFrame",
    "decode",
    "encode",
    "run_loadgen",
]
