"""CLI for the live serving runtime.

Usage::

    python -m repro.net selftest [--queries 200 --tolerance 0.25 ...]
    python -m repro.net bench    [--qps 200 --queries 1000 --json PATH]
    python -m repro.net serve    [--nodes 50 ...]

``selftest`` is the end-to-end proof: boot a seeded in-process cluster,
measure wire lookup latencies, and assert the distribution matches the
analytic resolver's Fig.-4 prediction within the pinned tolerance (exit
1 otherwise).  ``bench`` drives the cluster with the open-loop load
generator and can emit the ``BENCH_net.json`` artifact.  ``serve``
boots the cluster and keeps it bound for interactive poking.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Sequence

from .client import ClientConfig
from .cluster import DEFAULT_TIME_SCALE, ClusterConfig, LocalCluster
from .loadgen import LoadgenConfig, run_loadgen


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="small", help="substrate scale name")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--nodes", type=int, default=50, help="max nodes to boot")
    parser.add_argument("--guids", type=int, default=200, help="workload GUIDs")
    parser.add_argument(
        "--lookups", type=int, default=2_000, help="workload lookup pool size"
    )
    parser.add_argument("--k", type=int, default=5, help="replication factor")
    parser.add_argument(
        "--loss", type=float, default=0.0, help="deterministic packet-loss rate"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=DEFAULT_TIME_SCALE,
        help="wire seconds per virtual millisecond",
    )


def _cluster_config(args: argparse.Namespace) -> ClusterConfig:
    return ClusterConfig(
        scale=args.scale,
        seed=args.seed,
        k=args.k,
        max_nodes=args.nodes,
        n_guids=args.guids,
        n_lookups=args.lookups,
        time_scale=args.time_scale,
        loss_rate=args.loss,
    )


def _cmd_selftest(args: argparse.Namespace) -> int:
    from ..validation.live import run_live_check

    comparison = run_live_check(
        seed=args.seed,
        queries=args.queries,
        scale=args.scale,
        max_nodes=args.nodes,
        n_guids=args.guids,
        k=args.k,
        loss_rate=args.loss,
        time_scale=args.time_scale,
        tolerance=args.tolerance,
        min_success_rate=args.min_success,
    )
    if args.json:
        print(json.dumps(comparison.as_dict(), indent=2, sort_keys=True))
    else:
        print(comparison.render())
    return 0 if comparison.ok else 1


async def _bench(args: argparse.Namespace):
    cluster = LocalCluster.build(_cluster_config(args))
    await cluster.start()
    try:
        return await run_loadgen(
            cluster,
            LoadgenConfig(qps=args.qps, n_queries=args.queries),
            client_config=ClientConfig(seed=args.seed),
        )
    finally:
        await cluster.stop()


def _cmd_bench(args: argparse.Namespace) -> int:
    report = asyncio.run(_bench(args))
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0 if report.success_rate >= args.min_success else 1


async def _serve(args: argparse.Namespace) -> None:
    cluster = LocalCluster.build(_cluster_config(args))
    await cluster.start()
    print(
        f"{len(cluster.nodes)} nodes bound "
        f"({len(cluster.servable)} servable workload lookups); Ctrl-C to stop"
    )
    for asn in cluster.node_asns:
        host, port = cluster.peers[asn]
        print(f"  AS {asn:>6} -> {host}:{port}")
    try:
        await asyncio.Event().wait()
    finally:
        await cluster.stop()


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Live asyncio DMap serving cluster over shaped loopback UDP.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    selftest = sub.add_parser(
        "selftest", help="boot a seeded cluster and assert live == analytic"
    )
    _add_cluster_args(selftest)
    selftest.add_argument(
        "--queries", type=int, default=200, help="lookups to measure"
    )
    selftest.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed |median live/analytic ratio - 1| (default: pinned)",
    )
    selftest.add_argument(
        "--min-success",
        type=float,
        default=None,
        help="required lookup success rate (default: pinned)",
    )
    selftest.add_argument("--json", action="store_true", help="JSON report on stdout")
    selftest.set_defaults(func=_cmd_selftest)

    bench = sub.add_parser("bench", help="open-loop load generation -> BENCH_net.json")
    _add_cluster_args(bench)
    bench.add_argument("--qps", type=float, default=200.0, help="offered load")
    bench.add_argument("--queries", type=int, default=1_000, help="queries to issue")
    bench.add_argument(
        "--min-success", type=float, default=0.99, help="required success rate"
    )
    bench.add_argument("--json", help="write the report to this path")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser("serve", help="boot the cluster and keep it bound")
    _add_cluster_args(serve)
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    if args.command == "selftest":
        from ..validation.live import DEFAULT_MIN_SUCCESS_RATE, DEFAULT_TOLERANCE

        if args.tolerance is None:
            args.tolerance = DEFAULT_TOLERANCE
        if args.min_success is None:
            args.min_success = DEFAULT_MIN_SUCCESS_RATE
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
