"""The querying gateway: K parallel replica probes over the live wire.

:class:`DMapClient` is the network twin of
:meth:`repro.core.resolver.DMapResolver.lookup`.  Where the analytic
resolver walks replicas best-first and *accounts* for each round trip,
the client actually races all K replicas in parallel over UDP — the
paper's §III-A read path — and takes the first successful answer,
cancelling the rest.  With no packet loss, the first answer is by
construction the replica with the smallest shaped RTT, which is exactly
the replica the analytic walk charges for: the two latency
distributions coincide, and the selftest asserts it.

Failure handling per replica (§III-D.3):

* per-attempt timeout ``max(timeout_floor_ms, 2 × expected RTT)`` — the
  resolver's adaptive timeout, sized in virtual ms and converted to wire
  seconds by the shaper;
* bounded exponential-backoff retry with deterministic seeded jitter —
  the whole schedule is the *pure function* :func:`attempt_schedule`, so
  tests can assert byte-equal schedules without running a clock;
* a "GUID missing" reply is authoritative: the replica answered
  honestly, retrying it cannot help, so the probe stops there.

Every lookup emits a :class:`repro.obs.trace.QueryTrace` when a tracer
is attached, using the same schema as the offline engines.
"""

from __future__ import annotations

import asyncio
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.guid import GUID, NetworkAddress, guid_like
from ..core.resolver import DEFAULT_TIMEOUT_MS
from ..errors import ClusterError, LookupFailedError, WriteFailedError
from ..obs.counters import MetricsRegistry
from ..obs.trace import (
    FAILURE_EXHAUSTED,
    NULL_TRACER,
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
    AttemptTrace,
    QueryTrace,
    Tracer,
    hash_index_of,
    placement_records,
)
from .node import Addr
from .protocol import (
    FLAG_FORWARDED,
    STATUS_OK,
    T_INSERT,
    T_RESPONSE,
    T_UPDATE,
    Frame,
    LookupFrame,
    ResponseFrame,
    WriteFrame,
    decode,
    encode,
)
from ..errors import WireProtocolError


@dataclass(frozen=True)
class ClientConfig:
    """Retry/timeout policy of one querying gateway.

    All randomness (backoff jitter) is a pure hash of ``seed`` and the
    attempt coordinates, so two clients with equal configs produce
    byte-identical schedules.
    """

    timeout_floor_ms: float = DEFAULT_TIMEOUT_MS
    max_attempts: int = 4
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_cap_ms: float = 400.0
    jitter_fraction: float = 0.1
    hop_budget: int = 1
    seed: int = 0


@dataclass(frozen=True)
class AttemptPlan:
    """One slot of a replica's retry schedule (virtual milliseconds)."""

    timeout_ms: float
    backoff_ms: float


def _jitter_unit(seed: int, trace_id: int, k_index: int, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for backoff jitter."""
    digest = hashlib.sha256(
        struct.pack(
            ">qQBB",
            seed,
            trace_id & 0xFFFFFFFFFFFFFFFF,
            k_index & 0xFF,
            attempt & 0xFF,
        )
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def attempt_schedule(
    config: ClientConfig, rtt_ms: float, trace_id: int = 0, k_index: int = 0
) -> Tuple[AttemptPlan, ...]:
    """The full per-replica retry schedule, as a pure function.

    Attempt ``i`` waits ``max(timeout_floor_ms, 2 × rtt_ms)`` (the
    §III-D.3 adaptive timeout), then backs off
    ``min(cap, base × factor^i)`` stretched by up to ``jitter_fraction``
    of deterministic seeded jitter before attempt ``i + 1``.  The last
    attempt carries no backoff.  Determinism tests compare this function
    against itself under equal seeds — the client has no other clock
    input.
    """
    plans: List[AttemptPlan] = []
    timeout = max(config.timeout_floor_ms, 2.0 * rtt_ms)
    for attempt in range(config.max_attempts):
        if attempt + 1 >= config.max_attempts:
            backoff = 0.0
        else:
            backoff = min(
                config.backoff_cap_ms,
                config.backoff_base_ms * config.backoff_factor ** attempt,
            )
            backoff *= 1.0 + config.jitter_fraction * _jitter_unit(
                config.seed, trace_id, k_index, attempt
            )
        plans.append(AttemptPlan(timeout, backoff))
    return tuple(plans)


@dataclass(frozen=True)
class LiveLookupResult:
    """A successful wire lookup.

    ``rtt_ms`` is in *virtual* milliseconds (wire seconds mapped back
    through the shaper), directly comparable to
    :attr:`repro.core.resolver.LookupResult.rtt_ms`.
    """

    guid_value: int
    locators: Tuple[int, ...]
    version: int
    served_by: int
    rtt_ms: float
    forwarded: bool
    attempts: Tuple[AttemptTrace, ...]
    trace_id: int


@dataclass(frozen=True)
class LiveWriteResult:
    """A fully acknowledged wire insert/update.

    ``rtt_ms`` is the slowest replica acknowledgement — the paper's
    parallel-write latency (§III-A) — in virtual milliseconds.
    """

    guid_value: int
    replicas: Tuple[int, ...]
    rtt_ms: float
    per_replica_rtt_ms: Tuple[float, ...]
    trace_id: int


class _ClientProtocol(asyncio.DatagramProtocol):
    """Datagram glue: routes responses to their pending futures."""

    def __init__(self, client: "DMapClient") -> None:
        self.client = client

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        pass

    def datagram_received(self, data: bytes, addr: Addr) -> None:
        self.client._on_datagram(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable from a killed node's port: the probe's
        # timeout handles it, exactly like a silently dead replica.
        self.client._count("net.client.socket_errors")


class DMapClient:
    """A live querying gateway bound to one cluster's peer table."""

    def __init__(
        self,
        placer,
        shaper,
        peers: Dict[int, Addr],
        config: Optional[ClientConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.placer = placer
        self.shaper = shaper
        self.peers = peers
        self.config = config or ClientConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._pending: Dict[Tuple[int, int], "asyncio.Future[ResponseFrame]"] = {}
        self._trace_counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the client's own datagram socket."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _ClientProtocol(self), local_addr=("127.0.0.1", 0)
        )
        self._transport = transport  # type: ignore[assignment]

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    async def __aenter__(self) -> "DMapClient":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _count(self, name: str, label=None) -> None:
        self.registry.counter(name).inc(label=label)

    def _next_trace_id(self) -> int:
        self._trace_counter += 1
        return ((self.config.seed & 0xFFFFFFFF) << 32) | (
            self._trace_counter & 0xFFFFFFFF
        )

    def _send(self, frame: Frame, asn: int) -> None:
        if self._transport is None:
            raise ClusterError("client not started (call await start())")
        addr = self.peers.get(asn)
        if addr is None:
            raise ClusterError(f"no serving node registered for AS {asn}")
        self._transport.sendto(encode(frame), addr)

    def _on_datagram(self, data: bytes) -> None:
        try:
            frame = decode(data)
        except WireProtocolError:
            self._count("net.client.malformed")
            return
        if not isinstance(frame, ResponseFrame):
            self._count("net.client.protocol_errors")
            return
        future = self._pending.get((frame.trace_id, frame.k_index))
        if future is None or future.done():
            # A late reply from a retried or cancelled attempt.
            self._count("net.client.late_responses")
            return
        future.set_result(frame)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    async def lookup(
        self,
        guid: Union[GUID, int, str],
        source_asn: int,
        issued_at: float = 0.0,
    ) -> LiveLookupResult:
        """§III-A wire lookup: race all K replicas, first answer wins.

        Raises :class:`~repro.errors.LookupFailedError` when every
        replica's retry schedule is exhausted without a hit.
        """
        guid = guid_like(guid)
        trace_id = self._next_trace_id()
        tracing = self.tracer.enabled
        placement = placement_records(self.placer, guid) if tracing else ()
        if tracing:
            chains: Sequence[int] = [record.asn for record in placement]
        else:
            chains = [int(a) for a in self.placer.hosting_asns(guid)]
        # Duplicate chains landing in one AS are a single queryable host.
        replicas: List[Tuple[int, int]] = []
        seen = set()
        for index, asn in enumerate(chains):
            if asn not in seen:
                seen.add(asn)
                replicas.append((asn, index))

        loop = asyncio.get_running_loop()
        started = loop.time()
        attempts_log: List[AttemptTrace] = []
        tasks = [
            loop.create_task(
                self._probe(guid.value, asn, k_index, trace_id, source_asn, attempts_log)
            )
            for asn, k_index in replicas
        ]
        winner: Optional[ResponseFrame] = None
        try:
            for completed in asyncio.as_completed(tasks):
                response = await completed
                if response is not None:
                    winner = response
                    break
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        rtt_ms = self.shaper.virtual_ms(loop.time() - started)
        self._count("net.client.lookups")
        if winner is None:
            self._count("net.client.lookup_failures")
            if tracing:
                self._emit_trace(
                    guid, source_asn, issued_at, placement, attempts_log,
                    None, rtt_ms, FAILURE_EXHAUSTED,
                )
            raise LookupFailedError(guid, rtt_ms, len(attempts_log))
        self.registry.histogram(
            "net.client.rtt_ms", "wire lookup RTT (virtual ms)"
        ).observe(rtt_ms)
        if tracing:
            self._emit_trace(
                guid, source_asn, issued_at, placement, attempts_log,
                winner.served_by, rtt_ms, None,
            )
        return LiveLookupResult(
            guid_value=guid.value,
            locators=winner.locators,
            version=winner.version,
            served_by=winner.served_by,
            rtt_ms=rtt_ms,
            forwarded=bool(winner.flags & FLAG_FORWARDED),
            attempts=tuple(attempts_log),
            trace_id=trace_id,
        )

    async def _probe(
        self,
        guid_value: int,
        asn: int,
        k_index: int,
        trace_id: int,
        source_asn: int,
        attempts_log: List[AttemptTrace],
    ) -> Optional[ResponseFrame]:
        """One replica's full retry schedule; ``None`` = gave up."""
        loop = asyncio.get_running_loop()
        rtt = self.shaper.rtt_ms(source_asn, asn)
        plans = attempt_schedule(self.config, rtt, trace_id, k_index)
        key = (trace_id, k_index)
        for attempt, plan in enumerate(plans):
            future: "asyncio.Future[ResponseFrame]" = loop.create_future()
            self._pending[key] = future
            sent = loop.time()
            self._send(
                LookupFrame(
                    trace_id=trace_id,
                    guid_value=guid_value,
                    source_asn=source_asn,
                    k_index=min(k_index, 0xFE),
                    hop_budget=self.config.hop_budget,
                    attempt=attempt,
                ),
                asn,
            )
            try:
                response = await asyncio.wait_for(
                    future, timeout=self.shaper.wire_s(plan.timeout_ms)
                )
            except asyncio.TimeoutError:
                attempts_log.append(
                    AttemptTrace(asn, k_index, OUTCOME_TIMEOUT, plan.timeout_ms)
                )
                self._count("net.client.attempt_timeouts", label=asn)
                if plan.backoff_ms > 0.0:
                    await asyncio.sleep(self.shaper.wire_s(plan.backoff_ms))
                continue
            finally:
                if self._pending.get(key) is future:
                    del self._pending[key]
            cost_ms = self.shaper.virtual_ms(loop.time() - sent)
            if response.status == STATUS_OK:
                attempts_log.append(AttemptTrace(asn, k_index, OUTCOME_HIT, cost_ms))
                return response
            # An authoritative "GUID missing": retrying cannot help.
            attempts_log.append(AttemptTrace(asn, k_index, OUTCOME_MISSING, cost_ms))
            self._count("net.client.replica_misses", label=asn)
            return None
        return None

    def _emit_trace(
        self,
        guid: GUID,
        source_asn: int,
        issued_at: float,
        placement,
        attempts_log: List[AttemptTrace],
        served_by: Optional[int],
        rtt_ms: float,
        failure_cause: Optional[str],
    ) -> None:
        self.tracer.record(
            QueryTrace(
                guid_value=guid.value,
                source_asn=source_asn,
                issued_at=issued_at,
                k=len(placement),
                placement=placement,
                attempts=tuple(
                    AttemptTrace(
                        a.asn, hash_index_of(placement, a.asn), a.outcome, a.cost_ms
                    )
                    for a in attempts_log
                ),
                # The live client runs no §III-C local branch (the
                # cluster has no node at arbitrary querier ASs).
                local_launched=False,
                local_outcome=None,
                local_end_ms=None,
                used_local=False,
                served_by=served_by,
                rtt_ms=rtt_ms,
                success=failure_cause is None,
                failure_cause=failure_cause,
            )
        )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    async def insert(
        self,
        guid: Union[GUID, int, str],
        locators: Sequence[Union[NetworkAddress, int]],
        source_asn: int,
        timestamp: float = 0.0,
    ) -> LiveWriteResult:
        """§III-A wire insert: write all K replicas in parallel."""
        return await self._write(T_INSERT, guid, locators, source_asn, 0, timestamp)

    async def update(
        self,
        guid: Union[GUID, int, str],
        locators: Sequence[Union[NetworkAddress, int]],
        source_asn: int,
        version: int,
        timestamp: float = 0.0,
    ) -> LiveWriteResult:
        """§III-A wire update: like insert, with an advanced version."""
        return await self._write(
            T_UPDATE, guid, locators, source_asn, version, timestamp
        )

    async def _write(
        self,
        ftype: int,
        guid: Union[GUID, int, str],
        locators: Sequence[Union[NetworkAddress, int]],
        source_asn: int,
        version: int,
        timestamp: float,
    ) -> LiveWriteResult:
        guid = guid_like(guid)
        trace_id = self._next_trace_id()
        locator_values = tuple(int(loc) for loc in locators)
        replicas: List[Tuple[int, int]] = []
        seen = set()
        for index, asn in enumerate(self.placer.hosting_asns(guid)):
            asn = int(asn)
            if asn not in seen:
                seen.add(asn)
                replicas.append((asn, index))
        results = await asyncio.gather(
            *(
                self._write_one(
                    ftype, guid.value, locator_values, asn, k_index,
                    trace_id, source_asn, version, timestamp,
                )
                for asn, k_index in replicas
            )
        )
        acked = [r for r in results if r is not None]
        self._count("net.client.writes")
        if len(acked) < len(replicas):
            self._count("net.client.write_failures")
            raise WriteFailedError(guid, len(acked), len(replicas))
        return LiveWriteResult(
            guid_value=guid.value,
            replicas=tuple(asn for asn, _ in replicas),
            rtt_ms=max(acked),
            per_replica_rtt_ms=tuple(acked),
            trace_id=trace_id,
        )

    async def _write_one(
        self,
        ftype: int,
        guid_value: int,
        locators: Tuple[int, ...],
        asn: int,
        k_index: int,
        trace_id: int,
        source_asn: int,
        version: int,
        timestamp: float,
    ) -> Optional[float]:
        """One replica write with the same retry schedule as reads."""
        loop = asyncio.get_running_loop()
        rtt = self.shaper.rtt_ms(source_asn, asn)
        plans = attempt_schedule(self.config, rtt, trace_id, k_index)
        key = (trace_id, k_index)
        started = loop.time()
        for attempt, plan in enumerate(plans):
            future: "asyncio.Future[ResponseFrame]" = loop.create_future()
            self._pending[key] = future
            self._send(
                WriteFrame(
                    trace_id=trace_id,
                    guid_value=guid_value,
                    source_asn=source_asn,
                    k_index=min(k_index, 0xFE),
                    attempt=attempt,
                    ftype=ftype,
                    version=version,
                    timestamp=timestamp,
                    locators=locators,
                ),
                asn,
            )
            try:
                response = await asyncio.wait_for(
                    future, timeout=self.shaper.wire_s(plan.timeout_ms)
                )
            except asyncio.TimeoutError:
                self._count("net.client.write_timeouts", label=asn)
                if plan.backoff_ms > 0.0:
                    await asyncio.sleep(self.shaper.wire_s(plan.backoff_ms))
                continue
            finally:
                if self._pending.get(key) is future:
                    del self._pending[key]
            if response.status == STATUS_OK and response.request_type == ftype:
                return self.shaper.virtual_ms(loop.time() - started)
            return None
        return None
