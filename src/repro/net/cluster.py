"""The in-process serving cluster: one node per hosting AS, shaped wire.

:class:`LocalCluster` boots a :class:`~repro.net.node.DMapNode` per
selected AS on loopback UDP ports and glues them to a
:class:`LatencyShaper` that reproduces the topology's pairwise RTTs on
the real event loop.  The cluster owns an analytic
:class:`~repro.core.resolver.DMapResolver` over the *same* stores the
nodes answer from, so every wire measurement has an exact analytic
prediction to compare against — the live-vs-analytic equivalence the
selftest and the :mod:`repro.validation` live lane assert.

Node selection: a full topology has thousands of ASs, but a bounded
cluster can still serve real workload traffic exactly — a GUID is
servable iff all K of its hosting ASs run nodes.  :meth:`LocalCluster.build`
walks the workload's GUIDs in rank order and greedily admits each GUID
whose hosting ASs still fit the node budget, so popular GUIDs (the bulk
of Zipf traffic) are admitted first and every admitted GUID is fully
replicated in-cluster.

Time scaling: virtual milliseconds from the RTT matrix are mapped to
wire seconds by ``time_scale`` (default 1/20th of real time), and
measurements are mapped back, so a selftest over hundreds of queries
finishes in seconds while preserving every latency *ratio*.
"""

from __future__ import annotations

import asyncio
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.guid import GUID
from ..core.resolver import DEFAULT_TIMEOUT_MS, DMapResolver
from ..errors import ClusterError
from ..obs.counters import MetricsRegistry
from ..obs.trace import Tracer
from ..topology.routing import Router
from ..workload.generator import EventKind, Workload, WorkloadConfig, WorkloadGenerator
from .node import Addr, DMapNode

#: Default wire-seconds per virtual-millisecond compression factor:
#: a 200 ms analytic RTT takes 100 ms of wall clock.  Event-loop
#: scheduling plus epoll timer granularity cost a roughly constant
#: ~2 ms of wall clock per query; compressing harder than this magnifies
#: that constant into the recovered virtual latencies and pushes the
#: live/analytic ratio outside the validation tolerance.
DEFAULT_TIME_SCALE = 0.5


class LatencyShaper:
    """Maps topology RTTs onto event-loop delays, with optional loss.

    The shaper is the single clock authority of a live cluster: nodes ask
    it how long to hold a response (:meth:`delay_s`), clients ask it to
    convert measured wall time back into virtual milliseconds
    (:meth:`virtual_ms`) and to size timeouts (:meth:`wire_s`).

    Packet loss is deterministic: :meth:`should_drop` hashes
    ``(seed, src, dst, trace_id, k_index, attempt)`` and drops when the
    resulting uniform fraction falls below ``loss_rate``, so a seeded run
    loses exactly the same packets every time, and a retry (higher
    ``attempt``) re-rolls.
    """

    def __init__(
        self,
        router: Router,
        time_scale: float = DEFAULT_TIME_SCALE,
        loss_rate: float = 0.0,
        seed: int = 0,
        timeout_floor_ms: float = DEFAULT_TIMEOUT_MS,
    ) -> None:
        if time_scale <= 0.0:
            raise ClusterError(f"time_scale must be positive, got {time_scale}")
        if not 0.0 <= loss_rate < 1.0:
            raise ClusterError(f"loss_rate must lie in [0, 1), got {loss_rate}")
        self.router = router
        self.time_scale = float(time_scale)
        self.loss_rate = float(loss_rate)
        self.seed = int(seed)
        self.timeout_floor_ms = float(timeout_floor_ms)

    # ------------------------------------------------------------------
    # Clock arithmetic
    # ------------------------------------------------------------------
    def rtt_ms(self, src_asn: int, dst_asn: int) -> float:
        """Virtual round-trip milliseconds between two ASs."""
        return self.router.rtt_ms(src_asn, dst_asn)

    def wire_s(self, virtual_ms: float) -> float:
        """Wire (wall-clock) seconds corresponding to virtual ms."""
        return virtual_ms * self.time_scale / 1000.0

    def virtual_ms(self, wire_s: float) -> float:
        """Virtual milliseconds corresponding to measured wire seconds."""
        return wire_s * 1000.0 / self.time_scale

    def delay_s(self, src_asn: int, dst_asn: int) -> float:
        """How long a responder holds its reply: the whole leg's RTT.

        Requests travel instantly and the response carries the full
        round trip (see :mod:`repro.net.node`), so one timer per
        exchange reproduces the pairwise RTT exactly.
        """
        return self.wire_s(self.rtt_ms(src_asn, dst_asn))

    # ------------------------------------------------------------------
    # Deterministic loss
    # ------------------------------------------------------------------
    def should_drop(
        self, src_asn: int, dst_asn: int, trace_id: int, k_index: int, attempt: int
    ) -> bool:
        """Whether this exchange's response is lost (seeded, replayable)."""
        if self.loss_rate <= 0.0:
            return False
        digest = hashlib.sha256(
            struct.pack(
                ">qIIQBB",
                self.seed,
                src_asn & 0xFFFFFFFF,
                dst_asn & 0xFFFFFFFF,
                trace_id & 0xFFFFFFFFFFFFFFFF,
                k_index & 0xFF,
                attempt & 0xFF,
            )
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return fraction < self.loss_rate


@dataclass
class ClusterConfig:
    """Shape of a :class:`LocalCluster`.

    ``max_nodes`` bounds the booted node count; ``n_guids`` /
    ``n_lookups`` size the workload the nodes are selected from.  All
    clocks and loss draws derive from ``seed``, so two clusters built
    from equal configs serve byte-identical traffic.
    """

    scale: str = "small"
    seed: int = 0
    k: int = 5
    max_nodes: int = 50
    n_guids: int = 200
    n_lookups: int = 2_000
    time_scale: float = DEFAULT_TIME_SCALE
    loss_rate: float = 0.0
    timeout_floor_ms: float = DEFAULT_TIMEOUT_MS

    def validate(self) -> None:
        if self.k < 1:
            raise ClusterError("k must be >= 1")
        if self.max_nodes < self.k:
            raise ClusterError(
                f"max_nodes ({self.max_nodes}) cannot be below k ({self.k}): "
                "a single GUID needs K hosting nodes"
            )
        if self.n_guids < 1:
            raise ClusterError("n_guids must be >= 1")


@dataclass(frozen=True)
class ServableLookup:
    """One workload lookup whose GUID is fully replicated in-cluster."""

    guid: GUID
    source_asn: int
    home_asn: int


@dataclass
class LocalCluster:
    """A booted (or bootable) set of per-AS nodes over one resolver.

    Build with :meth:`build`, then ``await start()`` inside a running
    event loop.  The resolver's stores are populated at build time (the
    analytic insert is instant), so nodes serve from converged state the
    moment they bind — mirroring the paper's insert-phase-then-
    lookup-phase workload structure.
    """

    config: ClusterConfig
    resolver: DMapResolver
    shaper: LatencyShaper
    workload: Workload
    node_asns: Tuple[int, ...]
    servable: List[ServableLookup]
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    nodes: Dict[int, DMapNode] = field(default_factory=dict)
    peers: Dict[int, Addr] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: Optional[ClusterConfig] = None,
        environment=None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "LocalCluster":
        """Materialize substrate, workload, node selection, and stores.

        ``environment`` (a :class:`repro.experiments.common.Environment`)
        can be passed to reuse a cached substrate; by default one is
        fetched for ``(config.scale, config.seed)``.
        """
        from ..experiments.common import get_environment

        config = config or ClusterConfig()
        config.validate()
        env = environment or get_environment(config.scale, config.seed)
        resolver = DMapResolver(
            env.table,
            env.router,
            k=config.k,
            # The live client has no node at arbitrary querier ASs, so the
            # §III-C local branch is disabled on both sides of the
            # comparison — equivalence is asserted on the global walk.
            local_replica=False,
            timeout_ms=config.timeout_floor_ms,
        )
        workload = WorkloadGenerator(
            env.topology,
            WorkloadConfig(
                n_guids=config.n_guids,
                n_lookups=config.n_lookups,
                seed=config.seed,
            ),
        ).generate()

        # Greedy rank-order admission: a GUID is servable iff all its
        # hosting ASs fit the node budget alongside those already chosen.
        node_set: set = set()
        admitted: Dict[GUID, List[int]] = {}
        for guid in workload.guids:
            hosting = [int(a) for a in resolver.placer.hosting_asns(guid)]
            new = set(hosting) - node_set
            if len(node_set) + len(new) <= config.max_nodes:
                node_set.update(new)
                admitted[guid] = hosting
        if not admitted:
            raise ClusterError(
                f"no GUID's {config.k} hosting ASs fit in {config.max_nodes} nodes"
            )

        # Converged state: every admitted GUID inserted at its replicas
        # through the analytic write path (instant), into the same stores
        # the nodes will serve from.
        for guid in admitted:
            locator = workload.locator_for(guid, env.table)
            resolver.insert(guid, [locator], workload.home_asn[guid])

        servable = [
            ServableLookup(event.guid, event.source_asn, workload.home_asn[event.guid])
            for event in workload.events
            if event.kind is EventKind.LOOKUP and event.guid in admitted
        ]
        shaper = LatencyShaper(
            env.router,
            time_scale=config.time_scale,
            loss_rate=config.loss_rate,
            seed=config.seed,
            timeout_floor_ms=config.timeout_floor_ms,
        )
        return cls(
            config=config,
            resolver=resolver,
            shaper=shaper,
            workload=workload,
            node_asns=tuple(sorted(node_set)),
            servable=servable,
            registry=registry if registry is not None else MetricsRegistry(),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind one datagram server per selected AS on loopback."""
        if self.nodes:
            raise ClusterError("cluster already started")
        for asn in self.node_asns:
            node = DMapNode(
                asn,
                self.resolver.store_at(asn),
                self.resolver.placer,
                self.shaper,
                self.peers,
                registry=self.registry,
            )
            addr = await node.start()
            self.nodes[asn] = node
            self.peers[asn] = addr
        self.registry.gauge(
            "net.cluster.nodes", "datagram servers currently bound"
        ).set(float(len(self.nodes)))

    async def stop(self) -> None:
        """Close every node (idempotent)."""
        for node in self.nodes.values():
            node.close()
        self.nodes.clear()
        self.peers.clear()
        self.registry.gauge("net.cluster.nodes").set(0.0)
        # Let the loop process transport teardown callbacks.
        await asyncio.sleep(0)

    def kill_node(self, asn: int) -> None:
        """Hard-stop one node, keeping its peer entry.

        Clients keep addressing the dead port; their probes time out —
        exactly how a crashed hosting AS presents on a real network.
        """
        node = self.nodes.get(asn)
        if node is None:
            raise ClusterError(f"no node running for AS {asn}")
        node.close()
        self.registry.counter("net.cluster.killed_nodes").inc()
        self.registry.gauge("net.cluster.nodes").set(
            float(sum(1 for n in self.nodes.values() if n.running))
        )

    # ------------------------------------------------------------------
    # Client / traffic plumbing
    # ------------------------------------------------------------------
    def client(self, config=None, tracer: Optional[Tracer] = None):
        """A :class:`~repro.net.client.DMapClient` wired to this cluster
        (``await client.start()`` before use)."""
        from .client import ClientConfig, DMapClient

        return DMapClient(
            placer=self.resolver.placer,
            shaper=self.shaper,
            peers=self.peers,
            config=config or ClientConfig(seed=self.config.seed),
            registry=self.registry,
            tracer=tracer,
        )

    def lookup_stream(self, limit: Optional[int] = None) -> List[ServableLookup]:
        """The servable workload lookups, in event order."""
        if limit is None:
            return list(self.servable)
        return self.servable[:limit]

    def analytic_rtt_ms(self, guid: GUID, source_asn: int) -> float:
        """The resolver's predicted lookup RTT on identical state."""
        return self.resolver.lookup(guid, source_asn).rtt_ms

    def analytic_predictions(
        self, lookups: Sequence[ServableLookup]
    ) -> List[float]:
        """Predicted RTTs for a stream of servable lookups."""
        return [self.analytic_rtt_ms(s.guid, s.source_asn) for s in lookups]
