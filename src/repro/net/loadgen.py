"""Open-loop asyncio load generator over a live cluster.

Drives a :class:`~repro.net.cluster.LocalCluster` with the servable
portion of its :mod:`repro.workload` stream at a target QPS: query ``i``
is *launched* at wire time ``i / qps`` regardless of how earlier queries
are faring (open loop — the honest way to measure a serving system,
since a closed loop self-throttles exactly when the system degrades).
Reports sustained throughput and the virtual-millisecond latency
percentiles that land in ``BENCH_net.json``.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ClusterError, DMapError
from ..obs.trace import Tracer
from .client import ClientConfig, LiveLookupResult


@dataclass
class LoadgenConfig:
    """Offered-load shape: ``qps`` is in wire (wall-clock) queries/s."""

    qps: float = 200.0
    n_queries: int = 1_000

    def validate(self) -> None:
        if self.qps <= 0.0:
            raise ClusterError(f"qps must be positive, got {self.qps}")
        if self.n_queries < 1:
            raise ClusterError("n_queries must be >= 1")


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 < q <= 1)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class BenchReport:
    """What one load-generation run measured.

    Latencies are *virtual* milliseconds (comparable to the analytic
    Fig. 4 axis); throughputs are wire queries per wall-clock second.
    """

    n_queries: int
    n_success: int
    n_failed: int
    offered_qps: float
    achieved_qps: float
    wall_s: float
    time_scale: float
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @property
    def success_rate(self) -> float:
        return self.n_success / self.n_queries if self.n_queries else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable report (the ``BENCH_net.json`` schema)."""
        return {
            "n_queries": self.n_queries,
            "n_success": self.n_success,
            "n_failed": self.n_failed,
            "success_rate": self.success_rate,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "wall_s": self.wall_s,
            "time_scale": self.time_scale,
            "latency_virtual_ms": {
                "mean": self.mean_ms,
                "p50": self.p50_ms,
                "p90": self.p90_ms,
                "p99": self.p99_ms,
                "max": self.max_ms,
            },
        }

    def render(self) -> str:
        return (
            f"{self.n_queries} queries, {self.n_success} ok "
            f"({100.0 * self.success_rate:.2f}%) | "
            f"offered {self.offered_qps:.0f} qps, sustained "
            f"{self.achieved_qps:.0f} qps over {self.wall_s:.2f}s | "
            f"virtual-ms p50={self.p50_ms:.1f} p90={self.p90_ms:.1f} "
            f"p99={self.p99_ms:.1f} max={self.max_ms:.1f}"
        )


async def run_loadgen(
    cluster,
    config: Optional[LoadgenConfig] = None,
    client_config: Optional[ClientConfig] = None,
    tracer: Optional[Tracer] = None,
) -> BenchReport:
    """Drive a started cluster at the configured open-loop rate."""
    config = config or LoadgenConfig()
    config.validate()
    stream = cluster.lookup_stream()
    if not stream:
        raise ClusterError("cluster has no servable lookups to drive")
    # Cycle the servable stream if the run asks for more queries than
    # the workload holds — the Zipf mix is preserved.
    lookups = [stream[i % len(stream)] for i in range(config.n_queries)]

    client = cluster.client(config=client_config, tracer=tracer)
    await client.start()
    loop = asyncio.get_running_loop()
    interval = 1.0 / config.qps
    tasks: List["asyncio.Task[LiveLookupResult]"] = []
    try:
        start = loop.time()
        for i, lookup in enumerate(lookups):
            target = start + i * interval
            delay = target - loop.time()
            if delay > 0.0:
                await asyncio.sleep(delay)
            tasks.append(
                loop.create_task(client.lookup(lookup.guid, lookup.source_asn))
            )
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        wall_s = loop.time() - start
    finally:
        client.close()

    latencies: List[float] = []
    failed = 0
    for outcome in outcomes:
        if isinstance(outcome, LiveLookupResult):
            latencies.append(outcome.rtt_ms)
        elif isinstance(outcome, DMapError):
            failed += 1
        elif isinstance(outcome, BaseException):
            raise outcome
    latencies.sort()
    return BenchReport(
        n_queries=len(lookups),
        n_success=len(latencies),
        n_failed=failed,
        offered_qps=config.qps,
        achieved_qps=len(lookups) / wall_s if wall_s > 0 else 0.0,
        wall_s=wall_s,
        time_scale=cluster.shaper.time_scale,
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_ms=_percentile(latencies, 0.50),
        p90_ms=_percentile(latencies, 0.90),
        p99_ms=_percentile(latencies, 0.99),
        max_ms=latencies[-1] if latencies else 0.0,
    )
