"""The per-AS serving node: an asyncio datagram server over one store.

Each hosting AS in a live cluster runs one :class:`DMapNode`.  The node
answers LOOKUP / INSERT / UPDATE frames from the *same*
:class:`~repro.core.mapping.MappingStore` instance the analytic
:class:`~repro.core.resolver.DMapResolver` uses, so the wire runtime and
the offline engines can never disagree about state — only about time.

Latency model: the responder owns the whole leg.  A node delays every
response (and every deputy relay) by the shaped round-trip time between
the original querier's AS and itself, as dictated by the cluster's
:class:`~repro.net.cluster.LatencyShaper` over the topology's RTT
matrix.  Requests travel instantly; the reply pays the full round trip.
This halves the number of timers without changing any measured latency.

Deputy forwarding (Algorithm 1, §III-D.1): when a LOOKUP reaches an AS
that does not store the mapping but the frame still has hop budget, the
node re-derives the GUID's placement with the shared placer and forwards
the query one overlay hop to the true holder, then relays the holder's
answer back to the querier with :data:`~repro.net.protocol.FLAG_FORWARDED`
set.  A query that exhausts its budget gets an honest "GUID missing".
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from ..core.guid import GUID, NetworkAddress
from ..core.mapping import MappingEntry, MappingStore
from ..obs.counters import MetricsRegistry
from .protocol import (
    FLAG_FORWARDED,
    STATUS_MISS,
    STATUS_OK,
    T_ERROR,
    T_INSERT,
    T_LOOKUP,
    T_RESPONSE,
    T_UPDATE,
    ERR_MALFORMED,
    ErrorFrame,
    Frame,
    LookupFrame,
    ResponseFrame,
    WriteFrame,
    decode,
    encode,
)
from ..errors import WireProtocolError

#: Wire-seconds a pending deputy relay is kept before being dropped.
RELAY_TTL_S = 5.0

Addr = Tuple[str, int]


class _NodeProtocol(asyncio.DatagramProtocol):
    """Datagram glue: hands every packet to the owning node."""

    def __init__(self, node: "DMapNode") -> None:
        self.node = node

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.node._transport = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: Addr) -> None:
        self.node._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.node._count("net.node.socket_errors")


class DMapNode:
    """One hosting AS's mapping service, live on a loopback UDP port.

    Parameters
    ----------
    asn:
        The AS this node serves.
    store:
        The mapping store to answer from — share the resolver's
        ``store_at(asn)`` instance to keep both worlds consistent.
    placer:
        The cluster-wide placement scheme (for deputy forwarding).
    shaper:
        Latency/loss shaping oracle (:mod:`repro.net.cluster`).
    peers:
        Shared ``asn -> (host, port)`` map, filled in by the cluster
        once every node has bound its port.
    registry:
        Metrics registry; the cluster passes one shared instance so
        façade and wire-server metrics land together.
    """

    def __init__(
        self,
        asn: int,
        store: MappingStore,
        placer,
        shaper,
        peers: Dict[int, Addr],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.asn = int(asn)
        self.store = store
        self.placer = placer
        self.shaper = shaper
        self.peers = peers
        self.registry = registry if registry is not None else MetricsRegistry()
        self._transport: Optional[asyncio.DatagramTransport] = None
        #: Pending deputy relays: (trace_id, k_index, attempt) ->
        #: (requester address, original source AS, expiry timer).
        self._relays: Dict[
            Tuple[int, int, int], Tuple[Addr, int, asyncio.TimerHandle]
        ] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Addr:
        """Bind the node's datagram endpoint; returns ``(host, port)``."""
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self), local_addr=(host, port)
        )
        self._transport = transport  # type: ignore[assignment]
        return transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        """Stop serving (pending relays are abandoned)."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        for _, _, handle in self._relays.values():
            handle.cancel()
        self._relays.clear()

    @property
    def running(self) -> bool:
        """Whether the node currently has a bound transport."""
        return self._transport is not None and not self._transport.is_closing()

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def _count(self, name: str, label=None) -> None:
        self.registry.counter(name).inc(label=label)

    # ------------------------------------------------------------------
    # Datagram dispatch
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, addr: Addr) -> None:
        try:
            frame = decode(data)
        except WireProtocolError as exc:
            self._count("net.node.malformed")
            self._send_now(
                ErrorFrame(
                    trace_id=0,
                    guid_value=0,
                    source_asn=self.asn,
                    code=ERR_MALFORMED,
                    message=str(exc)[:200],
                ),
                addr,
            )
            return
        self._count("net.node.frames_rx", label=frame.ftype)
        if frame.ftype == T_LOOKUP:
            self._handle_lookup(frame, addr)
        elif frame.ftype in (T_INSERT, T_UPDATE):
            self._handle_write(frame, addr)
        elif frame.ftype == T_RESPONSE:
            self._handle_relay_response(frame)
        elif frame.ftype == T_ERROR:
            self._count("net.node.errors_rx")

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _handle_lookup(self, frame: LookupFrame, addr: Addr) -> None:
        guid = GUID(frame.guid_value)
        entry = self.store.get(guid)
        if entry is not None:
            self._count("net.node.lookups_served", label=self.asn)
            self._respond(
                frame,
                addr,
                ResponseFrame(
                    trace_id=frame.trace_id,
                    guid_value=frame.guid_value,
                    source_asn=frame.source_asn,
                    k_index=frame.k_index,
                    attempt=frame.attempt,
                    flags=frame.flags,
                    status=STATUS_OK,
                    request_type=T_LOOKUP,
                    served_by=self.asn,
                    version=entry.version,
                    timestamp=entry.timestamp,
                    locators=tuple(int(loc) for loc in entry.locators),
                ),
            )
            return
        if frame.hop_budget > 0 and self._forward_lookup(frame, addr):
            return
        self._count("net.node.lookup_misses", label=self.asn)
        self._respond(
            frame,
            addr,
            ResponseFrame(
                trace_id=frame.trace_id,
                guid_value=frame.guid_value,
                source_asn=frame.source_asn,
                k_index=frame.k_index,
                attempt=frame.attempt,
                flags=frame.flags,
                status=STATUS_MISS,
                request_type=T_LOOKUP,
                served_by=self.asn,
            ),
        )

    def _forward_lookup(self, frame: LookupFrame, addr: Addr) -> bool:
        """Algorithm-1 deputy forwarding: one overlay hop to the holder.

        Returns whether the query was forwarded (``False`` when this
        node is itself the only reachable placement, in which case the
        caller answers "missing" honestly).
        """
        holder: Optional[int] = None
        for candidate in self.placer.hosting_asns(GUID(frame.guid_value)):
            candidate = int(candidate)
            if candidate != self.asn and candidate in self.peers:
                holder = candidate
                break
        if holder is None:
            return False
        key = (frame.trace_id, frame.k_index, frame.attempt)
        loop = asyncio.get_running_loop()
        handle = loop.call_later(
            max(RELAY_TTL_S, self.shaper.wire_s(self.shaper.timeout_floor_ms)),
            self._expire_relay,
            key,
        )
        stale = self._relays.pop(key, None)
        if stale is not None:
            stale[2].cancel()
        self._relays[key] = (addr, frame.source_asn, handle)
        forwarded = LookupFrame(
            trace_id=frame.trace_id,
            guid_value=frame.guid_value,
            # The forwarded leg is deputy -> holder; shaping keys on the
            # frame's source AS, so the deputy substitutes itself.
            source_asn=self.asn,
            k_index=frame.k_index,
            hop_budget=frame.hop_budget - 1,
            attempt=frame.attempt,
            flags=frame.flags | FLAG_FORWARDED,
        )
        self._count("net.node.forwards", label=self.asn)
        self._send_now(forwarded, self.peers[holder])
        return True

    def _expire_relay(self, key: Tuple[int, int, int]) -> None:
        if self._relays.pop(key, None) is not None:
            self._count("net.node.relay_expired")

    def _handle_relay_response(self, frame: ResponseFrame) -> None:
        key = (frame.trace_id, frame.k_index, frame.attempt)
        pending = self._relays.pop(key, None)
        if pending is None:
            self._count("net.node.orphan_responses")
            return
        requester, source_asn, handle = pending
        handle.cancel()
        relayed = ResponseFrame(
            trace_id=frame.trace_id,
            guid_value=frame.guid_value,
            source_asn=source_asn,
            k_index=frame.k_index,
            attempt=frame.attempt,
            flags=frame.flags | FLAG_FORWARDED,
            status=frame.status,
            request_type=frame.request_type,
            served_by=frame.served_by,
            version=frame.version,
            timestamp=frame.timestamp,
            locators=frame.locators,
        )
        self._count("net.node.relays", label=self.asn)
        # The relay leg back to the querier pays querier<->deputy shaping;
        # the holder already charged the deputy<->holder leg.
        self._send_shaped(relayed, requester, source_asn)

    def _handle_write(self, frame: WriteFrame, addr: Addr) -> None:
        entry = MappingEntry(
            GUID(frame.guid_value),
            tuple(NetworkAddress(loc) for loc in frame.locators),
            version=frame.version,
            timestamp=frame.timestamp,
        )
        accepted = self.store.insert(entry)
        self._count(
            "net.node.writes_applied" if accepted else "net.node.writes_stale",
            label=self.asn,
        )
        self._respond(
            frame,
            addr,
            ResponseFrame(
                trace_id=frame.trace_id,
                guid_value=frame.guid_value,
                source_asn=frame.source_asn,
                k_index=frame.k_index,
                attempt=frame.attempt,
                flags=frame.flags,
                status=STATUS_OK,
                request_type=frame.ftype,
                served_by=self.asn,
                version=entry.version,
            ),
        )

    # ------------------------------------------------------------------
    # Shaped sending
    # ------------------------------------------------------------------
    def _respond(self, request: Frame, addr: Addr, response: ResponseFrame) -> None:
        if self.shaper.should_drop(
            request.source_asn,
            self.asn,
            request.trace_id,
            request.k_index,
            request.attempt,
        ):
            self._count("net.node.shaped_drops", label=self.asn)
            return
        self._send_shaped(response, addr, request.source_asn)

    def _send_shaped(
        self, response: ResponseFrame, addr: Addr, source_asn: int
    ) -> None:
        delay = self.shaper.delay_s(source_asn, self.asn)
        data = encode(response)
        if delay <= 0.0:
            self._send_bytes(data, addr)
            return
        asyncio.get_running_loop().call_later(delay, self._send_bytes, data, addr)

    def _send_now(self, frame: Frame, addr: Addr) -> None:
        self._send_bytes(encode(frame), addr)

    def _send_bytes(self, data: bytes, addr: Addr) -> None:
        if self._transport is None or self._transport.is_closing():
            return
        self._count("net.node.frames_tx")
        self._transport.sendto(data, addr)
