"""The DMap wire protocol: a compact, versioned binary frame codec.

Every message between a querying gateway and a hosting AS is one UDP
datagram carrying one frame.  A frame is a fixed 40-byte header followed
by a type-specific payload, all big-endian:

===========  =====  ====================================================
field        bytes  meaning
===========  =====  ====================================================
magic        2      ``b"DM"`` — rejects cross-protocol traffic early
version      1      wire schema version (:data:`WIRE_VERSION`)
type         1      LOOKUP / INSERT / UPDATE / RESPONSE / ERROR
flags        1      :data:`FLAG_FORWARDED`, :data:`FLAG_LOCAL`
k_index      1      replica-chain index 0..K-1; :data:`LOCAL_K_INDEX`
                    marks the §III-C local-branch request
hop_budget   1      remaining Algorithm-1 deputy-forwarding hops
attempt      1      retry ordinal of this contact (0 = first send)
trace_id     8      per-query id correlating requests, responses, and
                    :mod:`repro.obs` traces
guid         20     the 160-bit identifier (§IV-A width)
source_asn   4      AS of the original querier (latency shaping key)
===========  =====  ====================================================

Payloads:

* **LOOKUP** — empty.
* **INSERT / UPDATE** (:class:`WriteFrame`) — mapping version (u32),
  timestamp (f64 ms), locator count (u8), then 32-bit locators.
* **RESPONSE** (:class:`ResponseFrame`) — status (u8), echoed request
  type (u8), serving AS (u32), mapping version (u32), timestamp (f64),
  locator count (u8), locators.
* **ERROR** (:class:`ErrorFrame`) — error code (u8), UTF-8 message
  (u16 length prefix).

The codec is pure and event-loop-free: :func:`encode` /
:func:`decode` round-trip exactly (tested exhaustively), and every
malformed input raises :class:`~repro.errors.WireProtocolError` rather
than propagating a :mod:`struct` error.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple, Union

from ..core.guid import GUID_BITS, MAX_LOCATORS
from ..errors import WireProtocolError

#: Leading bytes of every frame.
MAGIC = b"DM"

#: Bumped when the frame layout changes shape.
WIRE_VERSION = 1

#: Frame types.
T_LOOKUP = 1
T_INSERT = 2
T_UPDATE = 3
T_RESPONSE = 4
T_ERROR = 5

#: Header flags.
FLAG_FORWARDED = 0x01  # response was produced via deputy forwarding
FLAG_LOCAL = 0x02  # request is the §III-C local-branch contact

#: ``k_index`` sentinel for the local-branch request (not a hash chain).
LOCAL_K_INDEX = 0xFF

#: Response status codes.
STATUS_OK = 0
STATUS_MISS = 1

#: Error codes.
ERR_MALFORMED = 1
ERR_HOP_EXHAUSTED = 2
ERR_UNSUPPORTED = 3

_HEADER = struct.Struct(">2sBBBBBBQ20sI")
HEADER_SIZE = _HEADER.size  # 40 bytes

_WRITE_HEAD = struct.Struct(">IdB")
_RESPONSE_HEAD = struct.Struct(">BBIIdB")
_ERROR_HEAD = struct.Struct(">BH")
_LOCATOR = struct.Struct(">I")

#: Wire GUID width: 20 bytes = the paper's 160-bit identifiers.
GUID_WIRE_BYTES = GUID_BITS // 8

_U8 = (1 << 8) - 1
_U32 = (1 << 32) - 1
_U64 = (1 << 64) - 1


@dataclass(frozen=True)
class _Head:
    """Fields shared by every frame type."""

    trace_id: int
    guid_value: int
    source_asn: int
    k_index: int = 0
    hop_budget: int = 0
    attempt: int = 0
    flags: int = 0


@dataclass(frozen=True)
class LookupFrame(_Head):
    """A GUID Lookup request (empty payload)."""

    ftype: int = T_LOOKUP


@dataclass(frozen=True)
class WriteFrame(_Head):
    """A GUID Insert or Update request (§III-A processes them alike)."""

    ftype: int = T_INSERT
    version: int = 0
    timestamp: float = 0.0
    locators: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ResponseFrame(_Head):
    """The answer a hosting AS sends back for any request."""

    ftype: int = T_RESPONSE
    status: int = STATUS_OK
    request_type: int = T_LOOKUP
    served_by: int = 0
    version: int = 0
    timestamp: float = 0.0
    locators: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ErrorFrame(_Head):
    """A protocol-level rejection (malformed frame, exhausted budget)."""

    ftype: int = T_ERROR
    code: int = ERR_MALFORMED
    message: str = ""


Frame = Union[LookupFrame, WriteFrame, ResponseFrame, ErrorFrame]


def _check_range(name: str, value: int, limit: int) -> int:
    if not 0 <= value <= limit:
        raise WireProtocolError(f"{name} {value!r} out of wire range [0, {limit}]")
    return value


def _check_locators(locators: Tuple[int, ...]) -> Tuple[int, ...]:
    if len(locators) > MAX_LOCATORS:
        raise WireProtocolError(
            f"at most {MAX_LOCATORS} locators per frame, got {len(locators)}"
        )
    for locator in locators:
        _check_range("locator", locator, _U32)
    return locators


def encode(frame: Frame) -> bytes:
    """Serialize a frame into one datagram payload."""
    ftype = frame.ftype
    expected = {
        LookupFrame: (T_LOOKUP,),
        WriteFrame: (T_INSERT, T_UPDATE),
        ResponseFrame: (T_RESPONSE,),
        ErrorFrame: (T_ERROR,),
    }.get(type(frame))
    if expected is None:
        raise WireProtocolError(f"cannot encode {type(frame).__name__}")
    if ftype not in expected:
        raise WireProtocolError(
            f"{type(frame).__name__} cannot carry frame type {ftype!r}"
        )
    guid_value = _check_range("guid", frame.guid_value, (1 << GUID_BITS) - 1)
    header = _HEADER.pack(
        MAGIC,
        WIRE_VERSION,
        ftype,
        _check_range("flags", frame.flags, _U8),
        _check_range("k_index", frame.k_index, _U8),
        _check_range("hop_budget", frame.hop_budget, _U8),
        _check_range("attempt", frame.attempt, _U8),
        _check_range("trace_id", frame.trace_id, _U64),
        guid_value.to_bytes(GUID_WIRE_BYTES, "big"),
        _check_range("source_asn", frame.source_asn, _U32),
    )
    if isinstance(frame, LookupFrame):
        return header
    if isinstance(frame, WriteFrame):
        locators = _check_locators(frame.locators)
        body = _WRITE_HEAD.pack(
            _check_range("version", frame.version, _U32),
            float(frame.timestamp),
            len(locators),
        )
        return header + body + b"".join(_LOCATOR.pack(loc) for loc in locators)
    if isinstance(frame, ResponseFrame):
        locators = _check_locators(frame.locators)
        body = _RESPONSE_HEAD.pack(
            _check_range("status", frame.status, _U8),
            _check_range("request_type", frame.request_type, _U8),
            _check_range("served_by", frame.served_by, _U32),
            _check_range("version", frame.version, _U32),
            float(frame.timestamp),
            len(locators),
        )
        return header + body + b"".join(_LOCATOR.pack(loc) for loc in locators)
    if isinstance(frame, ErrorFrame):
        message = frame.message.encode("utf-8")
        if len(message) > 0xFFFF:
            raise WireProtocolError("error message exceeds 65535 UTF-8 bytes")
        body = _ERROR_HEAD.pack(_check_range("code", frame.code, _U8), len(message))
        return header + body + message
    raise WireProtocolError(f"cannot encode {type(frame).__name__}")


def _need(data: bytes, offset: int, n: int, what: str) -> None:
    if len(data) < offset + n:
        raise WireProtocolError(
            f"truncated frame: need {offset + n} bytes for {what}, got {len(data)}"
        )


def _decode_locators(data: bytes, offset: int, count: int) -> Tuple[int, ...]:
    if count > MAX_LOCATORS:
        raise WireProtocolError(f"locator count {count} exceeds {MAX_LOCATORS}")
    _need(data, offset, count * _LOCATOR.size, "locators")
    out = []
    for i in range(count):
        out.append(_LOCATOR.unpack_from(data, offset + i * _LOCATOR.size)[0])
    return tuple(out)


def decode(data: bytes) -> Frame:
    """Parse one datagram payload back into a frame.

    Raises
    ------
    WireProtocolError
        On bad magic, unsupported version, unknown type, truncation,
        or trailing bytes — every way a datagram can be malformed.
    """
    _need(data, 0, HEADER_SIZE, "header")
    (
        magic,
        version,
        ftype,
        flags,
        k_index,
        hop_budget,
        attempt,
        trace_id,
        guid_bytes,
        source_asn,
    ) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireProtocolError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"unsupported wire version {version} (speak {WIRE_VERSION})"
        )
    head = dict(
        trace_id=trace_id,
        guid_value=int.from_bytes(guid_bytes, "big"),
        source_asn=source_asn,
        k_index=k_index,
        hop_budget=hop_budget,
        attempt=attempt,
        flags=flags,
    )
    offset = HEADER_SIZE
    if ftype == T_LOOKUP:
        frame: Frame = LookupFrame(**head)
    elif ftype in (T_INSERT, T_UPDATE):
        _need(data, offset, _WRITE_HEAD.size, "write payload")
        version_no, timestamp, n_loc = _WRITE_HEAD.unpack_from(data, offset)
        offset += _WRITE_HEAD.size
        locators = _decode_locators(data, offset, n_loc)
        offset += n_loc * _LOCATOR.size
        frame = WriteFrame(
            ftype=ftype,
            version=version_no,
            timestamp=timestamp,
            locators=locators,
            **head,
        )
    elif ftype == T_RESPONSE:
        _need(data, offset, _RESPONSE_HEAD.size, "response payload")
        (
            status,
            request_type,
            served_by,
            version_no,
            timestamp,
            n_loc,
        ) = _RESPONSE_HEAD.unpack_from(data, offset)
        offset += _RESPONSE_HEAD.size
        locators = _decode_locators(data, offset, n_loc)
        offset += n_loc * _LOCATOR.size
        frame = ResponseFrame(
            status=status,
            request_type=request_type,
            served_by=served_by,
            version=version_no,
            timestamp=timestamp,
            locators=locators,
            **head,
        )
    elif ftype == T_ERROR:
        _need(data, offset, _ERROR_HEAD.size, "error payload")
        code, msg_len = _ERROR_HEAD.unpack_from(data, offset)
        offset += _ERROR_HEAD.size
        _need(data, offset, msg_len, "error message")
        try:
            message = data[offset : offset + msg_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"undecodable error message: {exc}") from exc
        offset += msg_len
        frame = ErrorFrame(code=code, message=message, **head)
    else:
        raise WireProtocolError(f"unknown frame type {ftype}")
    if len(data) != offset:
        raise WireProtocolError(
            f"{len(data) - offset} trailing bytes after a complete frame"
        )
    return frame
