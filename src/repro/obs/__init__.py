"""Zero-dependency observability layer: per-query traces, counters, manifests.

Submodules
----------
:mod:`.trace`
    :class:`QueryTrace` records and the :class:`Tracer` protocol every
    execution layer (resolver, DES, fastpath engine) emits through.
:mod:`.counters`
    Named counters/gauges/histograms and the trace aggregator that
    flushes them into a structured run report.
:mod:`.manifest`
    Run manifests (seed, scale, K, placement, git SHA, config hash,
    per-phase wall clock) written next to experiment outputs.
:mod:`.export`
    Canonical JSONL trace files plus trace-only report reconstruction
    (``python -m repro.obs summarize-traces``).

This package ``__init__`` re-exports only the hot-path surface
(:mod:`.trace`, :mod:`.counters`); :mod:`.export` pulls in the
experiment renderers and is imported explicitly by the code that needs
it, keeping ``repro.core`` import-light.
"""

from .counters import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_traces,
)
from .trace import (
    NULL_TRACER,
    AttemptTrace,
    CollectingTracer,
    PlacementRecord,
    QueryTrace,
    Tracer,
    hash_index_of,
    placement_records,
)

__all__ = [
    "AttemptTrace",
    "CollectingTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "PlacementRecord",
    "QueryTrace",
    "Tracer",
    "aggregate_traces",
    "hash_index_of",
    "placement_records",
]
