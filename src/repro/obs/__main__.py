"""CLI: reconstruct experiment reports from trace files alone.

Examples::

    python -m repro.obs summarize-traces fig4.traces.jsonl
    python -m repro.obs summarize-traces fig4.traces.jsonl --tail 15
    python -m repro.obs summarize-traces fig4.traces.jsonl --metrics
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from .export import (
    metrics_report,
    read_traces,
    summarize_fig4,
    tail_provenance_table,
)
from .manifest import RunManifest, manifest_path_for


def _scale_from_manifest(trace_path: str) -> Optional[str]:
    """Recover the run's scale from the sibling manifest, if present."""
    path = manifest_path_for(trace_path)
    if not os.path.exists(path):
        return None
    try:
        body = RunManifest.read(path)
    except (OSError, ValueError):
        return None
    config = body.get("config")
    if isinstance(config, dict):
        scale = config.get("scale")
        if isinstance(scale, str):
            return scale
    return None


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Reconstruct reports from per-query trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize = sub.add_parser(
        "summarize-traces",
        help="rebuild the Fig. 4 report (and optional forensics) from JSONL traces",
    )
    summarize.add_argument("path", help="JSONL trace file written with --trace")
    summarize.add_argument(
        "--scale",
        default=None,
        help="scale label for the report header "
        "(default: the sibling run manifest, else 'unknown')",
    )
    summarize.add_argument(
        "--tail",
        type=int,
        default=0,
        metavar="N",
        help="also print the N worst queries with full provenance",
    )
    summarize.add_argument(
        "--metrics",
        action="store_true",
        help="also print the aggregated counters/histograms as JSON",
    )
    args = parser.parse_args(argv)

    try:
        traces = read_traces(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc.strerror or exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"malformed trace file {args.path}: {exc}", file=sys.stderr)
        return 1
    if not traces:
        print(f"no traces in {args.path}", file=sys.stderr)
        return 1
    scale = args.scale or _scale_from_manifest(args.path) or "unknown"
    print(summarize_fig4(traces, scale=scale))
    if args.tail:
        print()
        print(tail_provenance_table(traces, worst=args.tail))
    if args.metrics:
        print()
        print(json.dumps(metrics_report(traces), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved unix filter (devnull swap stops the interpreter
        # from complaining again while flushing stdout at shutdown).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
