"""Named counters, gauges, and histograms for run reports.

A tiny, dependency-free metrics registry: experiments and the caching
layer register named instruments, bump them while running, and flush the
whole registry into a structured (JSON-serializable) run report that
lands in the run manifest next to the experiment output.

A :func:`aggregate_traces` helper derives the standard DMap instruments
(rehash depth, deputy fallbacks, orphaned-mapping hits, local-race wins,
per-AS served-query load, RTT distribution) from a stream of
:class:`~repro.obs.trace.QueryTrace` records, so any trace file can be
turned into the same report after the fact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .trace import OUTCOME_HIT, OUTCOME_MISSING, QueryTrace

#: A label value; ``None`` means the instrument's unlabeled default series.
Label = Optional[Union[str, int]]

#: Fig. 4 read-off thresholds reused as the default RTT histogram edges.
DEFAULT_RTT_BUCKETS: Tuple[float, ...] = (
    10.0,
    20.0,
    40.0,
    60.0,
    86.0,
    100.0,
    173.0,
    250.0,
    500.0,
    1000.0,
)


def _key(label: Label) -> str:
    return "" if label is None else str(label)


class Counter:
    """Monotonic named counter, optionally split by a single label."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[str, float] = {}

    def inc(self, amount: float = 1.0, label: Label = None) -> None:
        """Add ``amount`` to the series for ``label``."""
        key = _key(label)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, label: Label = None) -> float:
        """Current value of the series for ``label`` (0 if never bumped)."""
        return self._values.get(_key(label), 0.0)

    def total(self) -> float:
        """Sum across every labeled series."""
        return sum(self._values.values())

    def as_dict(self) -> Dict[str, object]:
        series = {k: self._values[k] for k in sorted(self._values)}
        return {"kind": self.kind, "help": self.help, "values": series}


class Gauge:
    """Last-write-wins named value, optionally split by a single label."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[str, float] = {}

    def set(self, value: float, label: Label = None) -> None:
        """Overwrite the series for ``label``."""
        self._values[_key(label)] = value

    def value(self, label: Label = None) -> float:
        return self._values.get(_key(label), 0.0)

    def as_dict(self) -> Dict[str, object]:
        series = {k: self._values[k] for k in sorted(self._values)}
        return {"kind": self.kind, "help": self.help, "values": series}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary stats.

    ``buckets`` are the inclusive upper edges (``value <= edge``); an
    implicit overflow bucket catches everything beyond the last edge.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_RTT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        self._counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """File one observation."""
        slot = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                slot = i
                break
        self._counts[slot] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def bucket_counts(self) -> Dict[str, int]:
        """Counts keyed by rendered upper edge, plus ``"+Inf"``."""
        out = {f"{edge:g}": self._counts[i] for i, edge in enumerate(self.buckets)}
        out["+Inf"] = self._counts[-1]
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": self.bucket_counts(),
        }


class MetricsRegistry:
    """Named instruments, flushed together into one structured report."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type, **kwargs) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create the counter ``name``."""
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get-or-create the gauge ``name``."""
        return self._get(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_RTT_BUCKETS,
    ) -> Histogram:
        """Get-or-create the histogram ``name``."""
        return self._get(name, Histogram, help=help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def report(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every instrument, name-sorted."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def render(self) -> str:
        """Terminal-friendly one-instrument-per-line summary."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"{name} (histogram): count={metric.count} "
                    f"mean={metric.mean:.3f} max="
                    + (f"{metric.max:.3f}" if metric.count else "-")
                )
            else:
                data = metric.as_dict()["values"]
                if set(data) == {""}:
                    lines.append(f"{name} ({metric.kind}): {data['']:g}")
                else:
                    top = sorted(data.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
                    rendered = ", ".join(f"{k}={v:g}" for k, v in top)
                    suffix = ", ..." if len(data) > 5 else ""
                    lines.append(
                        f"{name} ({metric.kind}, {len(data)} series): "
                        f"{rendered}{suffix}"
                    )
        return "\n".join(lines)


def aggregate_traces(
    traces: Iterable[QueryTrace], registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Fold a trace stream into the standard DMap instruments.

    Derives exactly what the tentpole report needs: Algorithm 1 rehash
    depth and deputy fallbacks, orphaned-mapping hits (replicas that
    answered "GUID missing" although the placement says they should
    host), local-race wins, per-AS served-query load, and the RTT
    distribution split by success.
    """
    reg = registry or MetricsRegistry()
    lookups = reg.counter("lookups_total", "completed lookups (incl. failures)")
    failures = reg.counter("lookups_failed", "lookups that exhausted every replica")
    local_wins = reg.counter("local_race_wins", "lookups won by the §III-C local branch")
    attempts = reg.counter("lookup_attempts", "global replica contacts, by outcome")
    orphaned = reg.counter(
        "orphaned_mapping_hits",
        "replicas that answered 'GUID missing' despite hosting duty (§III-D.1)",
    )
    deputies = reg.counter("deputy_fallbacks", "replica chains placed via deputy AS")
    served = reg.counter("served_queries", "successful lookups answered, by AS")
    rehash = reg.histogram(
        "rehash_depth",
        "hash applications per replica chain (Algorithm 1)",
        buckets=tuple(float(d) for d in range(1, 11)),
    )
    rtts = reg.histogram("rtt_ms", "lookup round-trip time", DEFAULT_RTT_BUCKETS)
    for trace in traces:
        lookups.inc()
        if not trace.success:
            failures.inc()
        else:
            rtts.observe(trace.rtt_ms)
            if trace.served_by is not None:
                served.inc(label=trace.served_by)
        if trace.used_local:
            local_wins.inc()
        for attempt in trace.attempts:
            attempts.inc(label=attempt.outcome)
            if attempt.outcome == OUTCOME_MISSING:
                orphaned.inc(label=attempt.asn)
        for record in trace.placement:
            rehash.observe(float(record.hash_attempts))
            if record.via_deputy:
                deputies.inc()
        if trace.local_launched and trace.local_outcome == OUTCOME_HIT:
            reg.counter(
                "local_branch_hits", "local branch held the mapping"
            ).inc()
    return reg
