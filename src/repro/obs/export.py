"""JSONL trace persistence and trace-only report reconstruction.

One line per :class:`~repro.obs.trace.QueryTrace`, canonically ordered
and canonically keyed, so two engines that executed the same lookups
produce *byte-identical* files — the serialization itself is part of the
cross-engine equivalence oracle.

:func:`summarize_fig4` rebuilds the Fig. 4 report (CDF read-off table,
Table-I-style summary rows, ASCII CDF) from a trace stream alone, by
feeding the reconstructed per-K RTT arrays through the same
:class:`~repro.experiments.fig4_response_time.Fig4Result` renderer the
experiment driver uses; :func:`tail_provenance_table` renders the
worst-query forensics the AS-23951 anecdote calls for.  The
``python -m repro.obs summarize-traces`` CLI wraps both.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .counters import MetricsRegistry, aggregate_traces
from .trace import (
    OUTCOME_TIMEOUT,
    AttemptTrace,
    PlacementRecord,
    QueryTrace,
)

#: Bumped when the on-disk trace layout changes shape.
TRACE_SCHEMA_VERSION = 1


def trace_to_dict(trace: QueryTrace) -> Dict[str, object]:
    """Canonical JSON-serializable form of one trace."""
    return {
        "v": TRACE_SCHEMA_VERSION,
        "guid": trace.guid_value,
        "src": trace.source_asn,
        "t": trace.issued_at,
        "k": trace.k,
        "placement": [
            [record.asn, record.hash_attempts, bool(record.via_deputy)]
            for record in trace.placement
        ],
        "attempts": [
            [attempt.asn, attempt.hash_index, attempt.outcome, attempt.cost_ms]
            for attempt in trace.attempts
        ],
        "local_launched": trace.local_launched,
        "local_outcome": trace.local_outcome,
        "local_end": trace.local_end_ms,
        "used_local": trace.used_local,
        "served_by": trace.served_by,
        "rtt": trace.rtt_ms,
        "success": trace.success,
        "cause": trace.failure_cause,
    }


def trace_from_dict(data: Dict[str, object]) -> QueryTrace:
    """Inverse of :func:`trace_to_dict` (exact round trip)."""
    return QueryTrace(
        guid_value=int(data["guid"]),
        source_asn=int(data["src"]),
        issued_at=float(data["t"]),
        k=int(data["k"]),
        placement=tuple(
            PlacementRecord(int(asn), int(attempts), bool(deputy))
            for asn, attempts, deputy in data["placement"]
        ),
        attempts=tuple(
            AttemptTrace(int(asn), int(h), str(outcome), float(cost))
            for asn, h, outcome, cost in data["attempts"]
        ),
        local_launched=bool(data["local_launched"]),
        local_outcome=data["local_outcome"],
        local_end_ms=(
            None if data["local_end"] is None else float(data["local_end"])
        ),
        used_local=bool(data["used_local"]),
        served_by=(None if data["served_by"] is None else int(data["served_by"])),
        rtt_ms=float(data["rtt"]),
        success=bool(data["success"]),
        failure_cause=data["cause"],
    )


def dumps_trace(trace: QueryTrace) -> str:
    """One canonical JSONL line (sorted keys, no whitespace)."""
    return json.dumps(trace_to_dict(trace), sort_keys=True, separators=(",", ":"))


def trace_sort_key(trace: QueryTrace) -> Tuple[int, float, int, int]:
    """Canonical stream order: (K, issue time, GUID, source).

    Engines emit traces in their own internal order (the scalar walk in
    grouped-event order, the fastpath engine in source-group order); the
    canonical sort makes the serialized streams comparable byte for
    byte.
    """
    return (trace.k, trace.issued_at, trace.guid_value, trace.source_asn)


def dumps_traces(traces: Iterable[QueryTrace], sort: bool = True) -> str:
    """The full JSONL document (trailing newline included when non-empty)."""
    items = list(traces)
    if sort:
        items.sort(key=trace_sort_key)
    lines = [dumps_trace(trace) for trace in items]
    return "\n".join(lines) + ("\n" if lines else "")


def write_traces(path: str, traces: Iterable[QueryTrace], sort: bool = True) -> int:
    """Write a canonical JSONL trace file; returns the trace count."""
    document = dumps_traces(traces, sort=sort)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    return document.count("\n")


def iter_traces(path: str) -> Iterator[QueryTrace]:
    """Stream traces back from a JSONL file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield trace_from_dict(json.loads(line))


def read_traces(path: str) -> List[QueryTrace]:
    """Load a whole JSONL trace file into memory."""
    return list(iter_traces(path))


# ----------------------------------------------------------------------
# Trace-only report reconstruction
# ----------------------------------------------------------------------
def group_by_k(traces: Iterable[QueryTrace]) -> Dict[int, List[QueryTrace]]:
    """Traces per replication factor, K ascending, file order within K."""
    by_k: Dict[int, List[QueryTrace]] = {}
    for trace in traces:
        by_k.setdefault(trace.k, []).append(trace)
    return {k: by_k[k] for k in sorted(by_k)}


def summarize_fig4(traces: Iterable[QueryTrace], scale: str = "unknown") -> str:
    """Rebuild the Fig. 4 report from traces alone.

    Uses the experiment driver's own renderer over the reconstructed
    per-K RTT arrays, so a trace file written during a fig4 run
    reproduces that run's report byte for byte.
    """
    from ..experiments.fig4_response_time import Fig4Result

    by_k = group_by_k(traces)
    rtts_by_k: Dict[int, np.ndarray] = {}
    local_hits: Dict[int, float] = {}
    failed_by_k: Dict[int, int] = {}
    for k, group in by_k.items():
        successes = [t.rtt_ms for t in group if t.success]
        rtts_by_k[k] = np.asarray(successes, dtype=float)
        failed_by_k[k] = sum(1 for t in group if not t.success)
        local_hits[k] = (
            sum(1 for t in group if t.used_local) / len(group) if group else 0.0
        )
    return Fig4Result(scale, rtts_by_k, local_hits, failed_by_k).render()


def classify_provenance(trace: QueryTrace) -> str:
    """Why this query took as long as it did (tail forensics tag)."""
    if not trace.success:
        return "exhausted"
    if trace.used_local:
        return "local-race"
    if any(a.outcome == OUTCOME_TIMEOUT for a in trace.attempts):
        return "timeout-walk"
    if trace.failed_attempts:
        return "miss-walk"
    if trace.deputy_chains:
        return "deputy-chain"
    return "direct"


def tail_provenance_table(traces: Iterable[QueryTrace], worst: int = 10) -> str:
    """The worst-``worst`` queries with their full provenance.

    This is the table the AS-23951 anecdote wants: for each tail query,
    who was asked in what order, what failed, whether the local race was
    in play, and the resulting classification.
    """
    from ..experiments.reporting import format_table

    ranked = sorted(
        traces, key=lambda t: (-t.rtt_ms, t.issued_at, t.guid_value, t.source_asn)
    )[:worst]
    rows = []
    for rank, trace in enumerate(ranked, 1):
        walk = (
            "->".join(f"{a.outcome[0]}@{a.asn}" for a in trace.attempts) or "-"
        )
        local = trace.local_outcome if trace.local_launched else "off"
        rows.append(
            (
                rank,
                f"{trace.rtt_ms:.1f}",
                f"{trace.guid_value:#x}",
                trace.source_asn,
                trace.k,
                walk,
                local,
                trace.deputy_chains,
                classify_provenance(trace),
            )
        )
    header = "Tail provenance — worst queries by RTT"
    table = format_table(
        [
            "#",
            "rtt [ms]",
            "guid",
            "src AS",
            "K",
            "walk",
            "local",
            "deputy",
            "cause",
        ],
        rows,
    )
    return f"{header}\n{table}"


def metrics_report(
    traces: Iterable[QueryTrace], registry: Optional[MetricsRegistry] = None
) -> Dict[str, object]:
    """Structured counters/histograms derived from a trace stream."""
    return aggregate_traces(traces, registry).report()
