"""Run manifests: what produced an experiment output, written beside it.

Every traced experiment run writes a small JSON manifest next to its
output so a result file is never orphaned from its provenance: the seed,
scale, K values, placement scheme and engine that produced it, the git
revision of the code, a hash of the full configuration, and wall-clock
seconds per phase.

Timing uses ``time.perf_counter`` (a monotonic interval clock, not a
wall-clock read): manifests record *how long* phases took, never *when*
they ran, so two runs of the same configuration produce manifests that
differ only in the timing section.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

#: Bumped when the manifest layout changes shape.
MANIFEST_VERSION = 1


def current_git_sha() -> Optional[str]:
    """The repository HEAD revision, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def config_fingerprint(config: Mapping[str, object]) -> str:
    """Stable SHA-256 over a canonical JSON rendering of ``config``."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def manifest_path_for(output_path: str) -> str:
    """Where the manifest of ``output_path`` lives (same directory)."""
    return output_path + ".manifest.json"


@dataclass
class RunManifest:
    """Provenance of one experiment run.

    ``config`` holds the full knob set (seed, scale, K values, placement
    scheme, engine, workload sizes, ...); ``config_hash`` is derived from
    it, so two manifests with equal hashes came from identical
    configurations.  ``phases`` maps phase name to wall-clock seconds.
    """

    experiment: str
    config: Dict[str, object] = field(default_factory=dict)
    phases: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    git_sha: Optional[str] = field(default_factory=current_git_sha)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase (monotonic interval, not wall clock)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @property
    def config_hash(self) -> str:
        """SHA-256 fingerprint of the configuration."""
        return config_fingerprint(self.config)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable manifest body."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "experiment": self.experiment,
            "config": {k: self.config[k] for k in sorted(self.config)},
            "config_hash": self.config_hash,
            "git_sha": self.git_sha,
            "phases_s": {k: self.phases[k] for k in sorted(self.phases)},
            "extra": {k: self.extra[k] for k in sorted(self.extra)},
        }

    def write(self, path: str) -> str:
        """Write the manifest JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=False, default=str)
            fh.write("\n")
        return path

    @classmethod
    def read(cls, path: str) -> Dict[str, object]:
        """Load a manifest body previously written with :meth:`write`."""
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
