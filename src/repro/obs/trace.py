"""Per-query traces: what actually happened during one GUID lookup.

The paper's evaluation reasons about *provenance* of latency — which
replica answered, whether the §III-C local-replica race won, how many
failed attempts preceded success, whether the replica chain needed
IP-hole rehashes or the deputy fallback (Algorithm 1).  A
:class:`QueryTrace` captures all of that for a single lookup, in a form
every execution layer (analytic resolver, discrete-event simulation,
vectorized fastpath engine) can emit identically.

The :class:`Tracer` protocol is deliberately minimal: a ``record`` call
per completed lookup, guarded by an ``enabled`` flag, so the hot path
pays a single attribute check when tracing is off.  :data:`NULL_TRACER`
is the shared no-op default; :class:`CollectingTracer` buffers traces in
memory for tests and experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

#: Local-branch / attempt outcome strings, shared with
#: :mod:`repro.core.resolver` (kept literal here to avoid an import
#: cycle: the resolver imports this module).
OUTCOME_HIT = "hit"
OUTCOME_MISSING = "missing"
OUTCOME_TIMEOUT = "timeout"

#: The only failure cause basic DMap knows: every replica (and the local
#: branch, when launched) failed to produce the mapping.
FAILURE_EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class PlacementRecord:
    """One replica chain of the GUID's placement (Algorithm 1).

    Attributes
    ----------
    asn:
        The hosting AS this chain resolved to.
    hash_attempts:
        Hash applications consumed: 1 for a direct longest-prefix match,
        more when the hashed address fell into IP holes and was rehashed.
    via_deputy:
        Whether the chain exhausted its M rehashes and fell back to the
        deputy AS (nearest announced prefix).
    """

    asn: int
    hash_attempts: int
    via_deputy: bool


@dataclass(frozen=True)
class AttemptTrace:
    """One contact with a global replica during the best-first walk.

    ``hash_index`` is the first replica-chain index (0..K-1) that placed
    this AS — duplicate chains landing in one AS are a single queryable
    host, so the walk contacts it once.
    """

    asn: int
    hash_index: int
    outcome: str
    cost_ms: float


@dataclass(frozen=True)
class QueryTrace:
    """Full provenance of one lookup.

    Attributes
    ----------
    guid_value / source_asn / issued_at:
        Which GUID was queried, from which AS, at what virtual time.
    k:
        Replication factor in force.
    placement:
        The K replica chains, in hash-function order (before the
        latency/hops ordering the walk uses).
    attempts:
        Global-walk contacts in the order they were issued, including
        the final hit when the global branch won.
    local_launched:
        Whether the §III-C parallel local-replica request was sent (it
        is skipped when the source AS is itself a global candidate).
    local_outcome:
        ``"hit"`` / ``"missing"`` / ``"timeout"`` as observed, or
        ``None`` when the branch was not launched (or, in the DES, when
        the lookup completed before the local reply arrived).
    local_end_ms:
        When the local reply (or its timeout) landed, relative to
        ``issued_at``; ``None`` when the branch was not launched.
    used_local / served_by / rtt_ms / success:
        The verdict: who answered, in how long, and whether the local
        race won.  ``served_by`` is ``None`` on failure.
    failure_cause:
        ``None`` on success; :data:`FAILURE_EXHAUSTED` when every
        replica failed.
    """

    guid_value: int
    source_asn: int
    issued_at: float
    k: int
    placement: Tuple[PlacementRecord, ...]
    attempts: Tuple[AttemptTrace, ...]
    local_launched: bool
    local_outcome: Optional[str]
    local_end_ms: Optional[float]
    used_local: bool
    served_by: Optional[int]
    rtt_ms: float
    success: bool
    failure_cause: Optional[str]

    @property
    def failed_attempts(self) -> int:
        """Global contacts that did not produce the mapping."""
        return sum(1 for a in self.attempts if a.outcome != OUTCOME_HIT)

    @property
    def replica_set(self) -> Tuple[int, ...]:
        """Hosting ASNs in replica-chain order (with duplicates)."""
        return tuple(record.asn for record in self.placement)

    @property
    def rehash_depths(self) -> Tuple[int, ...]:
        """Hash applications per chain (Algorithm 1 depth)."""
        return tuple(record.hash_attempts for record in self.placement)

    @property
    def deputy_chains(self) -> int:
        """Chains that fell back to a deputy AS."""
        return sum(1 for record in self.placement if record.via_deputy)

    def compact(self) -> str:
        """One-line human rendering (divergence bundles, tail tables)."""
        walk = (
            " -> ".join(
                f"{a.outcome}@{a.asn}[h{a.hash_index}]({a.cost_ms:.3f})"
                for a in self.attempts
            )
            or "-"
        )
        if not self.local_launched:
            local = " local=off"
        elif self.local_end_ms is None:
            # DES only: the race ended while the local reply was still in
            # flight, so its outcome was never observed.
            local = " local=in-flight"
        else:
            local = f" local={self.local_outcome}@{self.local_end_ms:.3f}"
        verdict = (
            f"served_by={self.served_by} via={'local' if self.used_local else 'global'}"
            if self.success
            else f"FAILED({self.failure_cause})"
        )
        return (
            f"guid={self.guid_value:#x} src={self.source_asn} k={self.k} "
            f"t={self.issued_at:g} walk[{walk}]{local} "
            f"{verdict} rtt={self.rtt_ms:.3f}"
        )


def placement_records(placer: object, guid: object) -> Tuple[PlacementRecord, ...]:
    """Derive a GUID's placement records from any scalar placer.

    Uses ``resolve_all`` when the placer exposes it (all shipped placers
    do — it carries the Algorithm 1 rehash depth and deputy flag), and
    degrades to ``hosting_asns`` with depth 1 otherwise.
    """
    resolve_all = getattr(placer, "resolve_all", None)
    if resolve_all is not None:
        return tuple(
            PlacementRecord(
                res.asn,
                getattr(res, "attempts", 1),
                getattr(res, "via_deputy", False),
            )
            for res in resolve_all(guid)
        )
    return tuple(
        PlacementRecord(int(asn), 1, False) for asn in placer.hosting_asns(guid)
    )


def hash_index_of(placement: Tuple[PlacementRecord, ...], asn: int) -> int:
    """First replica-chain index that placed ``asn`` (-1 if none did)."""
    for index, record in enumerate(placement):
        if record.asn == asn:
            return index
    return -1


class Tracer:
    """No-op tracer; the base of the tracing protocol.

    ``enabled`` is the hot-path guard: emitters check it once per lookup
    and skip all trace construction when it is false, so a disabled
    tracer costs one attribute read.
    """

    enabled: bool = False

    def record(self, trace: QueryTrace) -> None:
        """Accept one completed-lookup trace (discarded here)."""


#: Shared no-op default; safe to reuse across resolvers and engines.
NULL_TRACER = Tracer()


class CollectingTracer(Tracer):
    """Buffers traces in memory, in emission order."""

    enabled = True

    def __init__(self) -> None:
        self.traces: List[QueryTrace] = []

    def record(self, trace: QueryTrace) -> None:
        self.traces.append(trace)

    def extend(self, traces: Iterable[QueryTrace]) -> None:
        """Bulk-append (used when merging per-phase collections)."""
        self.traces.extend(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def clear(self) -> None:
        self.traces.clear()
