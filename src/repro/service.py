"""High-level façade: a self-contained DMap deployment in one object.

The lower-level packages expose each subsystem separately (topology, BGP
table, resolver...).  :class:`DMapNetwork` wires them together for
application-style use — the API a MobilityFirst-style GNRS client would
see: register a named host, look names up, move hosts around.

    >>> net = DMapNetwork.build(n_as=300, k=5, seed=42)
    >>> phone = net.register_host("alice-phone")
    >>> hit = net.lookup("alice-phone", from_asn=net.random_asn())
    >>> net.move_host("alice-phone")            # handoff to a neighbour AS
    >>> net.lookup("alice-phone", from_asn=net.random_asn()).locators
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from .bgp.allocation import AllocationConfig, generate_global_prefix_table
from .bgp.table import GlobalPrefixTable
from .core.guid import GUID, guid_like
from .core.resolver import DMapResolver, LookupResult, WriteResult
from .errors import ConfigurationError, DMapError
from .obs.counters import MetricsRegistry
from .topology.generator import generate_internet_topology, small_scale_config
from .topology.graph import ASTopology
from .topology.routing import Router
from .workload.sources import SourceSampler


@dataclass
class HostRecord:
    """Bookkeeping for a registered host."""

    guid: GUID
    name: Optional[str]
    current_asn: int
    moves: int = 0


class DMapNetwork:
    """A complete DMap deployment: substrate + resolver + host registry."""

    def __init__(
        self,
        topology: ASTopology,
        table: GlobalPrefixTable,
        k: int = 5,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        **resolver_kwargs,
    ) -> None:
        self.topology = topology
        self.table = table
        self.router = Router(topology)
        self.resolver = DMapResolver(table, self.router, k=k, **resolver_kwargs)
        self.rng = np.random.default_rng(seed)
        self._sampler = SourceSampler(topology, self.rng)
        self.hosts: Dict[GUID, HostRecord] = {}
        self._names: Dict[str, GUID] = {}
        self.clock_ms = 0.0
        # Shared with the wire servers when a live cluster is attached to
        # the same deployment, so façade gauges and per-frame counters
        # land in one report.
        self.registry = registry if registry is not None else MetricsRegistry()

    @classmethod
    def build(
        cls,
        n_as: int = 300,
        k: int = 5,
        seed: int = 0,
        prefixes_per_as: float = 6.0,
        **resolver_kwargs,
    ) -> "DMapNetwork":
        """Generate a synthetic Internet and deploy DMap on it."""
        topology = generate_internet_topology(
            small_scale_config(n_as=n_as), seed=seed
        )
        table = generate_global_prefix_table(
            topology.asns(),
            AllocationConfig(prefixes_per_as=prefixes_per_as),
            seed=seed + 1,
        )
        return cls(topology, table, k=k, seed=seed, **resolver_kwargs)

    # ------------------------------------------------------------------
    # Host management
    # ------------------------------------------------------------------
    def random_asn(self) -> int:
        """A population-weighted random AS (where hosts actually are)."""
        return self._sampler.sample_one()

    def register_host(
        self,
        name_or_guid: Union[str, int, GUID],
        asn: Optional[int] = None,
    ) -> GUID:
        """Register a host and insert its GUID→NA mapping.

        ``asn`` defaults to a population-weighted random attachment AS.
        Returns the host's GUID.
        """
        guid = guid_like(name_or_guid)
        if guid in self.hosts:
            raise ConfigurationError(f"{name_or_guid!r} is already registered")
        asn = asn if asn is not None else self.random_asn()
        locator = self.table.representative_address(asn)
        self.resolver.insert(guid, [locator], asn, time=self.clock_ms)
        name = name_or_guid if isinstance(name_or_guid, str) else None
        self.hosts[guid] = HostRecord(guid, name, asn)
        if name is not None:
            self._names[name] = guid
        return guid

    def _record(self, name_or_guid: Union[str, int, GUID]) -> HostRecord:
        if isinstance(name_or_guid, str) and name_or_guid in self._names:
            return self.hosts[self._names[name_or_guid]]
        guid = guid_like(name_or_guid)
        try:
            return self.hosts[guid]
        except KeyError as exc:
            raise DMapError(f"{name_or_guid!r} is not a registered host") from exc

    def host_location(self, name_or_guid: Union[str, int, GUID]) -> int:
        """The AS a host is currently attached to."""
        return self._record(name_or_guid).current_asn

    def move_host(
        self,
        name_or_guid: Union[str, int, GUID],
        to_asn: Optional[int] = None,
    ) -> WriteResult:
        """Re-attach a host and update its binding (GUID Update, §III-A).

        Without ``to_asn`` the host moves to a random neighbour of its
        current AS (a vehicular-style handoff).
        """
        record = self._record(name_or_guid)
        if to_asn is None:
            neighbors = self.topology.neighbors(record.current_asn)
            to_asn = (
                int(neighbors[int(self.rng.integers(0, len(neighbors)))])
                if neighbors
                else self.random_asn()
            )
        locator = self.table.representative_address(to_asn)
        result = self.resolver.update(
            record.guid, [locator], to_asn, time=self.clock_ms
        )
        record.current_asn = to_asn
        record.moves += 1
        return result

    def deregister_host(self, name_or_guid: Union[str, int, GUID]) -> int:
        """Remove a host's mapping everywhere; returns copies deleted."""
        record = self._record(name_or_guid)
        removed = self.resolver.delete(record.guid)
        del self.hosts[record.guid]
        if record.name is not None:
            self._names.pop(record.name, None)
        return removed

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def lookup(
        self,
        name_or_guid: Union[str, int, GUID],
        from_asn: Optional[int] = None,
    ) -> LookupResult:
        """Resolve a host from ``from_asn`` (default: random population-
        weighted origin).  Names are accepted for registered hosts;
        unregistered names hash to their GUID first (§I: any entity can
        derive the hosting ASs locally)."""
        if isinstance(name_or_guid, str) and name_or_guid in self._names:
            guid = self._names[name_or_guid]
        else:
            guid = guid_like(name_or_guid)
        from_asn = from_asn if from_asn is not None else self.random_asn()
        return self.resolver.lookup(guid, from_asn)

    def advance_time(self, delta_ms: float) -> None:
        """Advance the deployment clock (stamps future writes)."""
        if delta_ms < 0:
            raise ConfigurationError("time cannot go backwards")
        self.clock_ms += delta_ms

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    #: ``stats()`` gauge names and their help strings — each field is a
    #: registered :mod:`repro.obs.counters` instrument, not an ad-hoc key.
    STAT_GAUGES = {
        "n_as": "ASs in the deployed topology",
        "n_prefixes": "prefixes announced in the global table",
        "announcement_ratio": "fraction of the address space announced",
        "n_hosts": "currently registered hosts",
        "replica_copies": "mapping copies stored across all ASs",
        "hosting_ases": "ASs currently storing at least one mapping",
        "max_load": "mappings at the most loaded AS",
    }

    def stats(self) -> Dict[str, float]:
        """Deployment-level summary, published through the registry.

        Every field is a named :class:`~repro.obs.counters.Gauge` in
        :attr:`registry` (refreshed on each call), so a metrics report
        that includes wire-server counters carries these too; the
        returned dict is a plain snapshot of the same gauges.
        """
        load = self.resolver.storage_load()
        values = {
            "n_as": float(len(self.topology)),
            "n_prefixes": float(len(self.table)),
            "announcement_ratio": self.table.announcement_ratio(),
            "n_hosts": float(len(self.hosts)),
            "replica_copies": float(self.resolver.total_entries()),
            "hosting_ases": float(len(load)),
            "max_load": float(max(load.values())) if load else 0.0,
        }
        for name, value in values.items():
            self.registry.gauge(f"service.{name}", self.STAT_GAUGES[name]).set(value)
        return values
