"""Discrete-event simulation of DMap over the AS-level Internet."""

from .engine import EventHandle, Simulator
from .failures import (
    ChurnFailureModel,
    CompositeFailureModel,
    FailureModel,
    RouterFailureModel,
)
from .metrics import (
    LatencySummary,
    MetricsCollector,
    QueryRecord,
    cdf_points,
    fraction_below,
    normalized_load_ratios,
    summarize,
)
from .network import Message, MessageKind, Network
from .node import ASNode, ENTRY_SIZE_BITS, REQUEST_SIZE_BITS
from .simulation import DMapSimulation, InsertRecord

__all__ = [
    "EventHandle",
    "Simulator",
    "ChurnFailureModel",
    "CompositeFailureModel",
    "FailureModel",
    "RouterFailureModel",
    "LatencySummary",
    "MetricsCollector",
    "QueryRecord",
    "cdf_points",
    "fraction_below",
    "normalized_load_ratios",
    "summarize",
    "Message",
    "MessageKind",
    "Network",
    "ASNode",
    "ENTRY_SIZE_BITS",
    "REQUEST_SIZE_BITS",
    "DMapSimulation",
    "InsertRecord",
]
