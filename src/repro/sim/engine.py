"""A minimal deterministic discrete-event engine.

The paper evaluates DMap with a custom discrete-event simulator over
~26,000 AS nodes (§IV-B.1).  This engine is the scheduling core: a binary
heap of timestamped events with a monotone sequence number as tiebreaker,
so runs are exactly reproducible regardless of callback identity.

Events are plain callables.  Cancellation is lazy (a cancelled handle
stays in the heap but is skipped), which keeps ``cancel`` O(1) — important
for lookup timeouts, which are almost always cancelled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError

Action = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; supports
    cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time


class Simulator:
    """Deterministic event loop with virtual time in milliseconds."""

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_executed = 0
        self._running = False

    def schedule(self, delay_ms: float, action: Action) -> EventHandle:
        """Schedule ``action`` at ``now + delay_ms``; returns a handle."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule into the past (delay {delay_ms})")
        event = _ScheduledEvent(self.now + delay_ms, next(self._seq), action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time_ms: float, action: Action) -> EventHandle:
        """Schedule ``action`` at absolute virtual time ``time_ms``."""
        if time_ms < self.now:
            raise SimulationError(
                f"cannot schedule at {time_ms} (now is {self.now})"
            )
        event = _ScheduledEvent(time_ms, next(self._seq), action)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop (without executing) at the first event after this time;
            virtual time is left at ``until``.
        max_events:
            Safety valve against runaway feedback loops.

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if event.time < self.now:
                    raise SimulationError("event queue went backwards in time")
                self.now = event.time
                event.action()
                executed += 1
                self.events_executed += 1
                if max_events is not None and executed >= max_events:
                    break
            else:
                if until is not None:
                    self.now = max(self.now, until)
        finally:
            self._running = False
        return executed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
