"""Failure injection for the discrete-event simulation.

Two failure classes from the paper:

* **BGP-churn staleness** (§III-D.1, Fig. 5): a querier's BGP view lags,
  so a lookup can reach an AS that does not (or no longer) hosts the
  mapping and receives a "GUID missing" reply, forcing a retry at the next
  replica.  The Fig. 5 experiment sweeps this per-lookup failure
  probability from 0% to 10%.
* **Router failure** (§III-D.3): an AS loses its mapping store or stops
  responding entirely; the querier waits out a timeout before trying the
  next replica.  "The probability for K Internet routes to fail at the
  same time is extremely low" — replication bounds the damage.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np

from ..core.guid import GUID
from ..core.resolver import OUTCOME_HIT, OUTCOME_MISSING, OUTCOME_TIMEOUT
from ..errors import ConfigurationError


class FailureModel:
    """Base failure model: everything works."""

    def lookup_outcome(self, asn: int, guid: GUID) -> str:
        """Fate of a lookup arriving at a *global* replica of ``guid``.

        One of :data:`~repro.core.resolver.OUTCOME_HIT`,
        ``OUTCOME_MISSING`` or ``OUTCOME_TIMEOUT``.  Local-replica reads
        are not subject to churn staleness (the querier shares the AS and
        thus the BGP view) but do honour :meth:`is_down`.
        """
        return OUTCOME_HIT

    def is_down(self, asn: int) -> bool:
        """Whether the AS's mapping service is unresponsive."""
        return False


class ChurnFailureModel(FailureModel):
    """Per-lookup stale-view misses with probability ``failure_rate``.

    The draw is i.i.d. per (attempt), matching the paper's experiment
    where the perturbed fraction of prefixes translates directly into the
    chance that any given replica address resolves to the wrong AS.
    """

    def __init__(self, failure_rate: float, seed: int = 0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError("failure_rate must lie in [0, 1]")
        self.failure_rate = failure_rate
        self.rng = np.random.default_rng(seed)

    def lookup_outcome(self, asn: int, guid: GUID) -> str:
        if self.failure_rate and self.rng.random() < self.failure_rate:
            return OUTCOME_MISSING
        return OUTCOME_HIT


class RouterFailureModel(FailureModel):
    """A fixed set of ASs whose mapping service is down (timeouts)."""

    def __init__(self, down_asns: Iterable[int]) -> None:
        self.down: Set[int] = set(down_asns)

    def lookup_outcome(self, asn: int, guid: GUID) -> str:
        return OUTCOME_TIMEOUT if asn in self.down else OUTCOME_HIT

    def is_down(self, asn: int) -> bool:
        return asn in self.down

    @classmethod
    def random(
        cls,
        asns: Sequence[int],
        fraction: float,
        seed: int = 0,
    ) -> "RouterFailureModel":
        """Fail a random ``fraction`` of the given ASs."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must lie in [0, 1]")
        rng = np.random.default_rng(seed)
        n_down = int(round(fraction * len(asns)))
        if n_down == 0:
            return cls(())
        picked = rng.choice(len(asns), size=n_down, replace=False)
        return cls(asns[int(i)] for i in picked)


class CompositeFailureModel(FailureModel):
    """Worst-of composition: timeout dominates missing dominates hit."""

    _SEVERITY = {OUTCOME_HIT: 0, OUTCOME_MISSING: 1, OUTCOME_TIMEOUT: 2}

    def __init__(self, models: Sequence[FailureModel]) -> None:
        if not models:
            raise ConfigurationError("composite of zero models")
        self.models = list(models)

    def lookup_outcome(self, asn: int, guid: GUID) -> str:
        worst = OUTCOME_HIT
        for model in self.models:
            outcome = model.lookup_outcome(asn, guid)
            if self._SEVERITY[outcome] > self._SEVERITY[worst]:
                worst = outcome
        return worst

    def is_down(self, asn: int) -> bool:
        return any(model.is_down(asn) for model in self.models)
