"""Measurement collection and summary statistics.

The paper reports round-trip query response times as CDFs (Figs. 4, 5),
summary rows (Table I: mean / median / 95th percentile) and the storage
balance as a CDF of per-AS Normalized Load Ratios (Fig. 6).  This module
produces all three representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class QueryRecord:
    """One completed (or failed) lookup in the simulation."""

    guid_value: int
    source_asn: int
    issued_at: float
    completed_at: float
    served_by: Optional[int]
    attempts: int
    used_local: bool
    success: bool

    @property
    def rtt_ms(self) -> float:
        """Round-trip response time."""
        return self.completed_at - self.issued_at


@dataclass(frozen=True)
class LatencySummary:
    """The paper's Table I row: mean / median / 95th percentile (ms).

    ``failed`` counts the lookups that exhausted every replica (they have
    no response time and are excluded from the latency statistics, but a
    latency row without them would silently overstate the scheme).
    """

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    max: float
    failed: int = 0

    @property
    def success_rate(self) -> float:
        """Fraction of issued lookups that completed successfully."""
        return self.count / (self.count + self.failed)

    def as_row(self) -> str:
        """Formatted like Table I, plus the success accounting."""
        return (
            f"n={self.count}  mean={self.mean:.1f}ms  median={self.median:.1f}ms  "
            f"95th={self.p95:.1f}ms  success={self.success_rate:.1%}"
            f" ({self.failed} failed)"
        )


def summarize(values: Sequence[float], failed: int = 0) -> LatencySummary:
    """Summary statistics over latency samples.

    ``failed`` is carried through to the summary so tables can report
    the success rate next to the latency percentiles.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise SimulationError("cannot summarize zero samples")
    if failed < 0:
        raise SimulationError("failed count must be non-negative")
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
        failed=failed,
    )


def cdf_points(
    values: Sequence[float], n_points: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``(x, F(x))`` of the samples.

    With ``n_points`` the curve is downsampled to exactly ``n_points``
    evenly spaced quantiles (for compact text/plot output); otherwise
    every sample is a step.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise SimulationError("cannot build a CDF from zero samples")
    fractions = np.arange(1, arr.size + 1, dtype=float) / arr.size
    if n_points is not None and n_points < arr.size:
        if n_points < 1:
            raise SimulationError("n_points must be positive")
        # The indices are strictly increasing (spacing > 1 whenever
        # n_points < size), so exactly n_points are returned — a previous
        # np.unique pass could collapse rounded duplicates and silently
        # hand back fewer points than requested.
        idx = np.round(np.linspace(0, arr.size - 1, n_points)).astype(int)
        return arr[idx], fractions[idx]
    return arr, fractions


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Empirical CDF read-off ``F(t) = P[X <= t]`` at ``threshold``.

    Inclusive, matching the CDF definition: a sample exactly at the
    threshold counts (the strict version reads 0.0 at the minimum sample,
    which is never what a "fraction answered within t ms" figure means).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise SimulationError("cannot evaluate a CDF with zero samples")
    return float((arr <= threshold).mean())


class MetricsCollector:
    """Accumulates query records during a simulation run."""

    def __init__(self) -> None:
        self.records: List[QueryRecord] = []
        self.failed: List[QueryRecord] = []

    def add(self, record: QueryRecord) -> None:
        """File a completed query."""
        if record.success:
            self.records.append(record)
        else:
            self.failed.append(record)

    def rtts(self) -> np.ndarray:
        """Response times of all successful queries (ms)."""
        return np.asarray([r.rtt_ms for r in self.records], dtype=float)

    def summary(self) -> LatencySummary:
        """Table-I style summary of successful queries.

        The failed-lookup count rides along so the success rate is
        visible next to the latency percentiles.
        """
        return summarize(self.rtts(), failed=len(self.failed))

    def cdf(self, n_points: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """CDF of successful query response times."""
        return cdf_points(self.rtts(), n_points)

    def local_hit_fraction(self) -> float:
        """Share of queries answered by the local replica (§III-C)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.used_local) / len(self.records)

    def mean_attempts(self) -> float:
        """Average replicas contacted per successful query (churn cost)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.attempts for r in self.records]))


def normalized_load_ratios(
    guid_counts: Dict[int, int],
    announced_spans: Dict[int, int],
    total_guids: Optional[int] = None,
    total_span: Optional[int] = None,
) -> np.ndarray:
    """Per-AS Normalized Load Ratio (Fig. 6).

    NLR(AS) = (% of GUID replicas stored at the AS) /
              (% of announced address space owned by the AS).

    ASs announcing space but storing nothing contribute NLR 0, exactly as
    in the paper's CDF.  ASs with no announced space are skipped (their
    NLR is undefined).
    """
    if not announced_spans:
        raise SimulationError("no announced spans — is the prefix table empty?")
    total_guids = total_guids if total_guids is not None else sum(guid_counts.values())
    total_span = total_span if total_span is not None else sum(announced_spans.values())
    if total_guids <= 0 or total_span <= 0:
        raise SimulationError("need positive totals to normalize")
    ratios = []
    for asn, span in announced_spans.items():
        guid_share = guid_counts.get(asn, 0) / total_guids
        span_share = span / total_span
        ratios.append(guid_share / span_share)
    return np.asarray(ratios, dtype=float)
