"""Message-level network on top of the AS topology.

Delivers typed messages between AS gateways with the end-to-end one-way
latency the routing substrate computes (intra-AS at both ends plus the
inter-AS shortest path, §IV-B.1).  Messages to the local AS still pay the
intra-AS latency — a host and its gateway's mapping server are not
co-located.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..errors import SimulationError
from ..topology.routing import Router
from .engine import Simulator


class MessageKind(enum.Enum):
    """DMap protocol messages (§III-A, §III-D)."""

    INSERT = "insert"  # GUID Insert / Update request
    INSERT_ACK = "insert_ack"
    LOOKUP = "lookup"  # GUID Lookup request
    LOOKUP_HIT = "lookup_hit"  # response carrying the mapping
    LOOKUP_MISS = "lookup_miss"  # "GUID missing" reply (§IV-B.2b)
    MIGRATE = "migrate"  # GUID migration between ASs (§III-D.1)
    RETIRE = "retire"  # retire a superseded local copy after an Update


@dataclass(frozen=True)
class Message:
    """A protocol message in flight.

    ``request_id`` correlates responses with their originating request so
    gateways can race parallel branches (local vs global lookups).
    """

    kind: MessageKind
    src_asn: int
    dst_asn: int
    request_id: int
    payload: Any = None
    sent_at: float = 0.0


class Network:
    """Latency-faithful message delivery between AS nodes.

    Parameters
    ----------
    simulator:
        The event engine driving virtual time.
    router:
        Latency oracle; one-way delays come from
        :meth:`~repro.topology.routing.Router.one_way_ms`.
    """

    def __init__(self, simulator: Simulator, router: Router) -> None:
        self.simulator = simulator
        self.router = router
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._request_ids = itertools.count(1)
        self.messages_sent = 0
        self.bytes_sent = 0

    def register(self, asn: int, handler: Callable[[Message], None]) -> None:
        """Attach the message handler of AS ``asn`` (its gateway node)."""
        self._handlers[asn] = handler

    def next_request_id(self) -> int:
        """Fresh correlation id for a new protocol exchange."""
        return next(self._request_ids)

    def send(
        self,
        kind: MessageKind,
        src_asn: int,
        dst_asn: int,
        request_id: int,
        payload: Any = None,
        size_bits: int = 0,
    ) -> Message:
        """Send a message; it is delivered after the one-way latency.

        Returns the in-flight message (useful for logging).  Messages to
        unregistered ASs raise — every AS in the topology must have a node.
        """
        if dst_asn not in self._handlers:
            raise SimulationError(f"no node registered for AS {dst_asn}")
        message = Message(
            kind, src_asn, dst_asn, request_id, payload, self.simulator.now
        )
        delay = self.router.one_way_ms(src_asn, dst_asn)
        self.messages_sent += 1
        self.bytes_sent += size_bits // 8
        handler = self._handlers[dst_asn]
        self.simulator.schedule(delay, lambda: handler(message))
        return message
