"""Per-AS gateway/mapping-server behaviour in the simulation.

Each AS runs DMap "at a separate compute layer at the gateway router"
(§IV-B): it stores the mapping replicas hashed to its announced space and
answers INSERT / LOOKUP / MIGRATE messages.  Request handling is
charged a configurable processing delay (the paper argues queueing and
processing are negligible next to the network round trip and uses ~0).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.guid import GUID
from ..core.mapping import MappingEntry, MappingStore
from ..core.resolver import OUTCOME_HIT, OUTCOME_TIMEOUT
from ..errors import SimulationError
from .engine import Simulator
from .failures import FailureModel
from .network import Message, MessageKind, Network

#: Approximate on-the-wire size of protocol messages, for traffic
#: accounting (§IV-A): a request carries the 160-bit GUID plus headers; a
#: response or insert carries a full 352-bit mapping entry plus headers.
REQUEST_SIZE_BITS = 160 + 64
ENTRY_SIZE_BITS = 352 + 64


class ASNode:
    """One AS's DMap server.

    Responses are routed back through the network to the *requesting* AS,
    whose node forwards them to the gateway-operation layer via
    ``response_sink`` (set by the simulation).
    """

    def __init__(
        self,
        asn: int,
        simulator: Simulator,
        network: Network,
        failure_model: FailureModel,
        processing_ms: float = 0.0,
    ) -> None:
        if processing_ms < 0:
            raise SimulationError("processing_ms must be non-negative")
        self.asn = asn
        self.simulator = simulator
        self.network = network
        self.failure_model = failure_model
        self.processing_ms = processing_ms
        self.store = MappingStore(owner_asn=asn)
        self.response_sink: Optional[Callable[[Message], None]] = None
        #: Called with (asn, guid) after a genuine miss — lets the
        #: simulation run the §III-D.1 lazy-migration protocol.
        self.miss_hook: Optional[Callable[[int, GUID], None]] = None
        network.register(asn, self.handle)

    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        """Entry point for every message delivered to this AS."""
        kind = message.kind
        if kind in (
            MessageKind.INSERT_ACK,
            MessageKind.LOOKUP_HIT,
            MessageKind.LOOKUP_MISS,
        ):
            if self.response_sink is None:
                raise SimulationError(f"AS {self.asn} received a response with no sink")
            self.response_sink(message)
            return
        if self.failure_model.is_down(self.asn):
            return  # dead router: requests vanish, requester times out
        if self.processing_ms > 0:
            self.simulator.schedule(self.processing_ms, lambda: self._serve(message))
        else:
            self._serve(message)

    def _serve(self, message: Message) -> None:
        if message.kind is MessageKind.INSERT:
            self._serve_insert(message)
        elif message.kind is MessageKind.LOOKUP:
            self._serve_lookup(message)
        elif message.kind is MessageKind.MIGRATE:
            self._serve_migrate(message)
        elif message.kind is MessageKind.RETIRE:
            self._serve_retire(message)
        else:
            raise SimulationError(f"AS {self.asn}: unexpected message {message.kind}")

    def _serve_insert(self, message: Message) -> None:
        entry: MappingEntry = message.payload
        self.store.insert(entry)
        self.network.send(
            MessageKind.INSERT_ACK,
            self.asn,
            message.src_asn,
            message.request_id,
            payload=entry.guid,
            size_bits=REQUEST_SIZE_BITS,
        )

    def _serve_lookup(self, message: Message) -> None:
        guid: GUID = message.payload["guid"]
        is_local: bool = message.payload["is_local"]
        outcome = OUTCOME_HIT
        if not is_local:
            # Local queries share the requester's BGP view, so churn
            # staleness only applies to the global branch.
            outcome = self.failure_model.lookup_outcome(self.asn, guid)
        if outcome == OUTCOME_TIMEOUT:
            return  # no answer; the requester's timer expires
        entry = self.store.get(guid) if outcome == OUTCOME_HIT else None
        if entry is not None:
            self.network.send(
                MessageKind.LOOKUP_HIT,
                self.asn,
                message.src_asn,
                message.request_id,
                payload=entry,
                size_bits=ENTRY_SIZE_BITS,
            )
        else:
            self.network.send(
                MessageKind.LOOKUP_MISS,
                self.asn,
                message.src_asn,
                message.request_id,
                payload=guid,
                size_bits=REQUEST_SIZE_BITS,
            )
            if self.miss_hook is not None and outcome == OUTCOME_HIT:
                # §III-D.1: a genuinely-missing mapping at an AS that
                # should host it triggers a one-time GUID migration pull.
                self.miss_hook(self.asn, guid)

    def _serve_migrate(self, message: Message) -> None:
        entry: MappingEntry = message.payload
        self.store.insert(entry)

    def _serve_retire(self, message: Message) -> None:
        """Drop a local copy superseded by an Update at a newer AS.

        The version guard keeps the retire safe when this AS also hosts a
        global replica: the INSERT racing ahead of the RETIRE refreshes
        the stored version, so only genuinely stale copies are removed.
        """
        entry: MappingEntry = message.payload
        stored = self.store.get(entry.guid)
        if stored is not None and stored.version < entry.version:
            self.store.delete(entry.guid)
