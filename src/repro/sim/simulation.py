"""The end-to-end DMap discrete-event simulation (§IV-B.1).

Mirrors the paper's setup: one node per AS, GUID Insert / Update / Lookup
events, message-level latency accounting, replica selection at the querying
gateway, timeout-and-retry on failures, and a parallel local-replica
branch.  The protocol logic is identical to the instant-mode
:class:`~repro.core.resolver.DMapResolver`; the test suite cross-checks
both paths produce the same response times on failure-free workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bgp.table import GlobalPrefixTable
from ..core.guid import GUID, NetworkAddress, guid_like
from ..core.mapping import MappingEntry
from ..core.replication import ReplicaSelector
from ..core.resolver import DEFAULT_TIMEOUT_MS
from ..errors import ConfigurationError, SimulationError
from ..hashing.hashers import HashFamily, Sha256Hasher
from ..hashing.rehash import DEFAULT_MAX_REHASHES, GuidPlacer
from ..obs.trace import (
    FAILURE_EXHAUSTED,
    NULL_TRACER,
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
    AttemptTrace,
    PlacementRecord,
    QueryTrace,
    Tracer,
    hash_index_of,
    placement_records,
)
from ..topology.graph import ASTopology
from ..topology.routing import Router
from .engine import EventHandle, Simulator
from .failures import FailureModel
from .metrics import MetricsCollector, QueryRecord
from .network import Message, MessageKind, Network
from .node import ASNode, ENTRY_SIZE_BITS, REQUEST_SIZE_BITS


@dataclass
class InsertRecord:
    """Completion record of one insert/update (latency = max replica ack)."""

    guid_value: int
    source_asn: int
    issued_at: float
    completed_at: float

    @property
    def rtt_ms(self) -> float:
        return self.completed_at - self.issued_at


class _PendingInsert:
    """Tracks the K parallel replica writes of one insert (§III-A)."""

    __slots__ = ("guid", "source_asn", "issued_at", "outstanding", "simulation")

    def __init__(
        self,
        simulation: "DMapSimulation",
        guid: GUID,
        source_asn: int,
        issued_at: float,
        outstanding: int,
    ) -> None:
        self.simulation = simulation
        self.guid = guid
        self.source_asn = source_asn
        self.issued_at = issued_at
        self.outstanding = outstanding

    def on_ack(self) -> None:
        self.outstanding -= 1
        if self.outstanding == 0:
            self.simulation.insert_records.append(
                InsertRecord(
                    self.guid.value,
                    self.source_asn,
                    self.issued_at,
                    self.simulation.simulator.now,
                )
            )


class _PendingLookup:
    """State machine of one lookup: global best-first walk with retries,
    racing a parallel local-replica branch (§III-C, §III-D.3)."""

    __slots__ = (
        "simulation",
        "guid",
        "source_asn",
        "issued_at",
        "candidates",
        "next_candidate",
        "attempts",
        "timeout_handle",
        "done",
        "local_pending",
        "local_timeout_handle",
        "tracing",
        "placement",
        "trace_log",
        "local_launched",
        "local_outcome",
        "local_end_ms",
        "attempt_sent_at",
    )

    def __init__(
        self,
        simulation: "DMapSimulation",
        guid: GUID,
        source_asn: int,
        issued_at: float,
        candidates: List[int],
    ) -> None:
        self.simulation = simulation
        self.guid = guid
        self.source_asn = source_asn
        self.issued_at = issued_at
        self.candidates = candidates
        self.next_candidate = 0
        self.attempts = 0
        self.timeout_handle: Optional[EventHandle] = None
        self.done = False
        self.local_pending = False
        self.local_timeout_handle: Optional[EventHandle] = None
        # Trace bookkeeping (only populated when the tracer is enabled).
        # The DES trace records *completed observations* in virtual-time
        # order: a reply still in flight when the race ends is absent,
        # unlike the analytic/fastpath traces which account every issued
        # attempt — DES traces are forensic, not byte-equality oracles.
        self.tracing = simulation.tracer.enabled
        self.placement: Tuple[PlacementRecord, ...] = ()
        self.trace_log: List[AttemptTrace] = []
        self.local_launched = False
        self.local_outcome: Optional[str] = None
        self.local_end_ms: Optional[float] = None
        self.attempt_sent_at = issued_at

    # -- global branch -------------------------------------------------
    def try_next(self, request_id: int) -> None:
        if self.done:
            return
        if self.next_candidate >= len(self.candidates):
            self._maybe_fail()
            return
        target = self.candidates[self.next_candidate]
        self.next_candidate += 1
        self.attempts += 1
        sim = self.simulation
        self.attempt_sent_at = sim.simulator.now
        sim.network.send(
            MessageKind.LOOKUP,
            self.source_asn,
            target,
            request_id,
            payload={"guid": self.guid, "is_local": False},
            size_bits=REQUEST_SIZE_BITS,
        )
        # Adaptive timeout: the gateway already estimates the response
        # time to rank replicas, so it won't declare a replica dead before
        # twice its expected round trip (matters for the pathological
        # high-latency stub ASs driving the paper's CDF tail).
        timeout = max(sim.timeout_ms, 2.0 * sim.router.rtt_ms(self.source_asn, target))
        self.timeout_handle = sim.simulator.schedule(
            timeout, lambda: self._on_timeout(request_id)
        )

    def _on_timeout(self, request_id: int) -> None:
        if self.done:
            return
        self.timeout_handle = None
        if self.tracing:
            # The timer fired ``timeout`` ms after the send, so the cost
            # is exactly the adaptive timeout charged for this attempt.
            target = self.candidates[self.next_candidate - 1]
            self.trace_log.append(
                AttemptTrace(
                    target,
                    hash_index_of(self.placement, target),
                    OUTCOME_TIMEOUT,
                    self.simulation.simulator.now - self.attempt_sent_at,
                )
            )
        self.try_next(request_id)

    def on_response(self, message: Message) -> None:
        # The local branch is only launched when the source AS is not a
        # global candidate, so a response from the source AS while it is
        # pending is unambiguously the local one.
        if self.done:
            return
        is_local = self.local_pending and message.src_asn == self.source_asn
        hit = message.kind is MessageKind.LOOKUP_HIT
        if self.tracing:
            now = self.simulation.simulator.now
            if is_local:
                self.local_outcome = OUTCOME_HIT if hit else OUTCOME_MISSING
                self.local_end_ms = now - self.issued_at
            else:
                self.trace_log.append(
                    AttemptTrace(
                        message.src_asn,
                        hash_index_of(self.placement, message.src_asn),
                        OUTCOME_HIT if hit else OUTCOME_MISSING,
                        now - self.attempt_sent_at,
                    )
                )
        if hit:
            self._complete(message.src_asn, used_local=is_local)
            return
        # LOOKUP_MISS
        if is_local:
            self.local_pending = False
            if self.local_timeout_handle is not None:
                self.local_timeout_handle.cancel()
                self.local_timeout_handle = None
            if self.next_candidate >= len(self.candidates) and self.timeout_handle is None:
                self._maybe_fail()
            return
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
            self.timeout_handle = None
        self.try_next(message.request_id)

    def _on_local_timeout(self) -> None:
        """The local-branch request was swallowed (source AS down).

        Without this timer a dead querying AS would leave ``local_pending``
        set forever and the lookup would never be recorded as failed.
        """
        if self.done:
            return
        self.local_timeout_handle = None
        self.local_pending = False
        if self.tracing:
            self.local_outcome = OUTCOME_TIMEOUT
            self.local_end_ms = self.simulation.simulator.now - self.issued_at
        if self.next_candidate >= len(self.candidates) and self.timeout_handle is None:
            self._maybe_fail()

    def _complete(self, served_by: int, used_local: bool) -> None:
        self.done = True
        if self.timeout_handle is not None:
            self.timeout_handle.cancel()
        if self.local_timeout_handle is not None:
            self.local_timeout_handle.cancel()
        sim = self.simulation
        sim.metrics.add(
            QueryRecord(
                guid_value=self.guid.value,
                source_asn=self.source_asn,
                issued_at=self.issued_at,
                completed_at=sim.simulator.now,
                served_by=served_by,
                attempts=max(self.attempts, 1),
                used_local=used_local,
                success=True,
            )
        )
        if self.tracing:
            self._emit_trace(served_by, used_local, None)

    def _maybe_fail(self) -> None:
        if self.done or self.local_pending:
            return
        self.done = True
        sim = self.simulation
        sim.metrics.add(
            QueryRecord(
                guid_value=self.guid.value,
                source_asn=self.source_asn,
                issued_at=self.issued_at,
                completed_at=sim.simulator.now,
                served_by=None,
                attempts=self.attempts,
                used_local=False,
                success=False,
            )
        )
        if self.tracing:
            self._emit_trace(None, False, FAILURE_EXHAUSTED)

    def _emit_trace(
        self,
        served_by: Optional[int],
        used_local: bool,
        failure_cause: Optional[str],
    ) -> None:
        sim = self.simulation
        sim.tracer.record(
            QueryTrace(
                guid_value=self.guid.value,
                source_asn=self.source_asn,
                issued_at=self.issued_at,
                k=len(self.placement),
                placement=self.placement,
                attempts=tuple(self.trace_log),
                local_launched=self.local_launched,
                local_outcome=self.local_outcome,
                local_end_ms=self.local_end_ms,
                used_local=used_local,
                served_by=served_by,
                rtt_ms=sim.simulator.now - self.issued_at,
                success=failure_cause is None,
                failure_cause=failure_cause,
            )
        )


class DMapSimulation:
    """Event-driven DMap over a full AS topology.

    Parameters mirror :class:`~repro.core.resolver.DMapResolver`; see
    §IV-B.1 for the paper's configuration (K ∈ {1, 3, 5}, 26k ASs).

    Typical use::

        sim = DMapSimulation(topology, table, k=5, seed=1)
        sim.schedule_insert(guid, [locator], source_asn, at=0.0)
        sim.schedule_lookup(guid, querier_asn, at=1000.0)
        sim.run()
        print(sim.metrics.summary().as_row())
    """

    def __init__(
        self,
        topology: ASTopology,
        table: GlobalPrefixTable,
        k: int = 5,
        hash_family: Optional[HashFamily] = None,
        selection_policy: str = "latency",
        local_replica: bool = True,
        max_rehashes: int = DEFAULT_MAX_REHASHES,
        timeout_ms: float = DEFAULT_TIMEOUT_MS,
        failure_model: Optional[FailureModel] = None,
        processing_ms: float = 0.0,
        router: Optional[Router] = None,
        seed: int = 0,
        placer=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if timeout_ms <= 0:
            raise ConfigurationError("timeout_ms must be positive")
        self.topology = topology
        self.table = table
        self.router = router or Router(topology)
        self.hash_family = hash_family or Sha256Hasher(k, address_bits=table.bits)
        self.placer = placer or GuidPlacer(self.hash_family, table, max_rehashes)
        self.selector = ReplicaSelector(
            self.router, selection_policy, np.random.default_rng(seed)
        )
        self.local_replica = local_replica
        self.timeout_ms = timeout_ms
        self.failure_model = failure_model or FailureModel()
        # Explicit None check: an empty CollectingTracer is falsy (len 0).
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.simulator = Simulator()
        self.network = Network(self.simulator, self.router)
        self.nodes: Dict[int, ASNode] = {}
        for asn in topology.asns():
            node = ASNode(
                asn, self.simulator, self.network, self.failure_model, processing_ms
            )
            node.response_sink = self._dispatch_response
            self.nodes[asn] = node

        for node in self.nodes.values():
            node.miss_hook = self._on_genuine_miss

        self.metrics = MetricsCollector()
        self.insert_records: List[InsertRecord] = []
        self._pending: Dict[int, object] = {}
        self._versions: Dict[GUID, int] = {}
        # Current attachment AS of each GUID's host (where the local copy
        # lives); consulted by updates to retire the superseded copy.
        self._attachments: Dict[GUID, int] = {}
        # Which ASs are known to hold a copy of each GUID (fed by the
        # write path; consulted by the lazy-migration protocol).
        self._holders: Dict[GUID, set] = {}
        self.migrations = 0

    # ------------------------------------------------------------------
    # Event scheduling API
    # ------------------------------------------------------------------
    def schedule_insert(
        self,
        guid: Union[GUID, int, str],
        locators: Sequence[NetworkAddress],
        source_asn: int,
        at: float = 0.0,
    ) -> None:
        """Queue a GUID Insert event at virtual time ``at`` (ms)."""
        guid = guid_like(guid)
        self.simulator.schedule_at(
            at, lambda: self._start_insert(guid, tuple(locators), source_asn)
        )

    def schedule_update(
        self,
        guid: Union[GUID, int, str],
        locators: Sequence[NetworkAddress],
        source_asn: int,
        at: float,
    ) -> None:
        """Queue a GUID Update event at virtual time ``at`` (ms).

        Replicas are rewritten exactly like an insert (§III-A); when the
        host moved to a different AS, the stale attachment-local copy at
        its previous AS is additionally retired (version-guarded, so an
        old AS that still hosts a global replica keeps the fresh entry).
        """
        guid = guid_like(guid)
        self.simulator.schedule_at(
            at, lambda: self._start_update(guid, tuple(locators), source_asn)
        )

    def schedule_lookup(
        self, guid: Union[GUID, int, str], source_asn: int, at: float
    ) -> None:
        """Queue a GUID Lookup event at virtual time ``at`` (ms)."""
        guid = guid_like(guid)
        self.simulator.schedule_at(
            at, lambda: self._start_lookup(guid, source_asn)
        )

    def schedule_withdrawal(self, prefix, at: float) -> None:
        """Queue a BGP prefix withdrawal at virtual time ``at`` (ms).

        The §III-D.1 protocol executes in virtual time: before the
        withdrawal takes effect, the withdrawing AS computes the deputy
        each affected mapping will now hash to and ships it a MIGRATE
        message; its own copy is dropped unless another hash chain (or
        the attachment-local copy) keeps the GUID at this AS.  Queries in
        flight during the transfer window can genuinely miss — exactly
        the transient the paper defers to future work (§VII).
        """
        self.simulator.schedule_at(at, lambda: self._apply_withdrawal(prefix))

    def schedule_announcement(self, announcement, at: float) -> None:
        """Queue a BGP prefix announcement at virtual time ``at`` (ms).

        Migration is *lazy* (§III-D.1): the first query that reaches the
        announcing AS and misses triggers a one-time GUID migration pull
        from a known holder (see :meth:`_on_genuine_miss`).
        """
        self.simulator.schedule_at(
            at, lambda: self.table.announce(announcement)
        )

    def run(self, until: Optional[float] = None) -> None:
        """Execute all queued events (optionally up to virtual ``until``)."""
        self.simulator.run(until=until)

    # ------------------------------------------------------------------
    # Protocol execution
    # ------------------------------------------------------------------
    def _next_version(self, guid: GUID) -> int:
        version = self._versions.get(guid, -1) + 1
        self._versions[guid] = version
        return version

    def _start_insert(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> MappingEntry:
        now = self.simulator.now
        entry = MappingEntry(
            guid, tuple(locators), self._next_version(guid), timestamp=now
        )
        resolutions = self.placer.resolve_all(guid)
        request_id = self.network.next_request_id()
        pending = _PendingInsert(self, guid, source_asn, now, len(resolutions))
        self._pending[request_id] = pending
        holders = self._holders.setdefault(guid, set())
        holders.update(res.asn for res in resolutions)
        if self.local_replica:
            holders.add(source_asn)
            self._attachments[guid] = source_asn
        for res in resolutions:
            self.network.send(
                MessageKind.INSERT,
                source_asn,
                res.asn,
                request_id,
                payload=entry,
                size_bits=ENTRY_SIZE_BITS,
            )
        if self.local_replica:
            # The local copy is written via an intra-AS message that never
            # dominates the K-way parallel max, so it is not awaited.
            self.network.send(
                MessageKind.MIGRATE,
                source_asn,
                source_asn,
                request_id,
                payload=entry,
                size_bits=ENTRY_SIZE_BITS,
            )
        return entry

    def _start_update(
        self, guid: GUID, locators: Sequence[NetworkAddress], source_asn: int
    ) -> None:
        previous = self._attachments.get(guid)
        entry = self._start_insert(guid, locators, source_asn)
        if self.local_replica and previous is not None and previous != source_asn:
            # The host left its old AS; retire the stale local copy there.
            # Sent after the INSERTs so that, when the old AS is also a
            # global replica host, the fresh entry lands first and the
            # version guard in the RETIRE handler keeps it.
            self.network.send(
                MessageKind.RETIRE,
                source_asn,
                previous,
                self.network.next_request_id(),
                payload=entry,
                size_bits=ENTRY_SIZE_BITS,
            )

    def _start_lookup(self, guid: GUID, source_asn: int) -> None:
        now = self.simulator.now
        if self.tracer.enabled:
            placement = placement_records(self.placer, guid)
            hosting: Sequence[int] = [record.asn for record in placement]
        else:
            placement = ()
            hosting = self.placer.hosting_asns(guid)
        candidates = self.selector.order_candidates(source_asn, hosting)
        request_id = self.network.next_request_id()
        pending = _PendingLookup(self, guid, source_asn, now, candidates)
        pending.placement = placement
        self._pending[request_id] = pending
        if self.local_replica and source_asn not in candidates:
            pending.local_pending = True
            pending.local_launched = True
            self.network.send(
                MessageKind.LOOKUP,
                source_asn,
                source_asn,
                request_id,
                payload={"guid": guid, "is_local": True},
                size_bits=REQUEST_SIZE_BITS,
            )
            # Guard the local branch with the same adaptive timeout the
            # global walk uses: if the querier's own AS is down the local
            # request vanishes, and without this timer the lookup would
            # stay pending forever.
            local_timeout = max(
                self.timeout_ms,
                2.0 * self.router.rtt_ms(source_asn, source_asn),
            )
            pending.local_timeout_handle = self.simulator.schedule(
                local_timeout, pending._on_local_timeout
            )
        pending.try_next(request_id)

    # ------------------------------------------------------------------
    # BGP churn in virtual time (§III-D.1 / §VII transients)
    # ------------------------------------------------------------------
    def _apply_withdrawal(self, prefix) -> None:
        withdrawing_asn = self.table.withdraw(prefix).asn
        node = self.nodes[withdrawing_asn]
        for entry in list(node.store):
            guid = entry.guid
            # Post-withdrawal placement; did this AS host the GUID via an
            # address inside the withdrawn block?  The stateless placer
            # answers both: we re-derive the chains under the *new* table
            # and compare with where the copy actually sits.
            new_resolutions = self.placer.resolve_all(guid)
            still_here = any(res.asn == withdrawing_asn for res in new_resolutions)
            holders = self._holders.setdefault(guid, set())
            for res in new_resolutions:
                if (
                    res.asn != withdrawing_asn
                    and self.nodes[res.asn].store.get(guid) is None
                ):
                    # This chain left the withdrawing AS (or was never
                    # here); ship the copy to its new host.  The check is
                    # against the actual store, not the ``_holders`` hint:
                    # the hint over-approximates (it keeps ASs whose copy
                    # was since retired), which would skip a needed ship.
                    self.network.send(
                        MessageKind.MIGRATE,
                        withdrawing_asn,
                        res.asn,
                        self.network.next_request_id(),
                        payload=entry,
                        size_bits=ENTRY_SIZE_BITS,
                    )
                    holders.add(res.asn)
                    self.migrations += 1
            if not still_here and not self._is_local_copy(guid, withdrawing_asn):
                # No post-withdrawal chain keeps the GUID here, and it is
                # not the attachment-local copy: drop it even when every
                # new host already held a replica (no ship happened).
                node.store.delete(guid)
                holders.discard(withdrawing_asn)

    def _is_local_copy(self, guid: GUID, asn: int) -> bool:
        """Whether ``asn`` holds the GUID as its attachment-local copy."""
        entry = self.nodes[asn].store.get(guid)
        if entry is None:
            return False
        locator = self.table.owner_asn(entry.primary_locator)
        return locator == asn

    def _on_genuine_miss(self, asn: int, guid: GUID) -> None:
        """Lazy GUID migration (§III-D.1, new-announcement side).

        Fired when a query reaches ``asn`` and the mapping is absent.  If
        the current table says this AS *should* host a replica, pull the
        entry from the closest known holder — a one-time cost charged as
        a real MIGRATE message in virtual time.
        """
        if asn not in set(self.placer.hosting_asns(guid)):
            return
        holders = [
            h
            for h in sorted(self._holders.get(guid, ()))
            if h != asn and self.nodes[h].store.get(guid) is not None
        ]
        if not holders:
            return
        donor, _latency = self.router.closest_of(
            asn, np.asarray(holders, dtype=np.int64)
        )
        entry = self.nodes[donor].store.get(guid)
        if entry is None:
            return
        self.network.send(
            MessageKind.MIGRATE,
            donor,
            asn,
            self.network.next_request_id(),
            payload=entry,
            size_bits=ENTRY_SIZE_BITS,
        )
        self._holders.setdefault(guid, set()).add(asn)
        self.migrations += 1

    def _dispatch_response(self, message: Message) -> None:
        pending = self._pending.get(message.request_id)
        if pending is None:
            return  # response for an already-completed operation
        if isinstance(pending, _PendingInsert):
            if message.kind is MessageKind.INSERT_ACK:
                pending.on_ack()
                if pending.outstanding == 0:
                    del self._pending[message.request_id]
            return
        if isinstance(pending, _PendingLookup):
            pending.on_response(message)
            if pending.done:
                self._pending.pop(message.request_id, None)
            return
        raise SimulationError(f"unknown pending operation for {message.request_id}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def storage_load(self) -> Dict[int, int]:
        """Entries stored per AS at the current virtual time."""
        return {
            asn: len(node.store) for asn, node in self.nodes.items() if len(node.store)
        }

    def update_traffic_bits(self) -> int:
        """Total bits sent so far (traffic-overhead accounting, §IV-A)."""
        return self.network.bytes_sent * 8
