"""Static-analysis tooling for the DMap reproduction.

The simulation results this repo reproduces (Fig. 4-7, Table 1) are only
trustworthy when runs are bit-for-bit reproducible under a fixed seed.
``repro.tooling`` is a self-contained, stdlib-``ast``-based lint engine
that machine-checks the invariants that keep them that way:

* **determinism** -- no process-global RNGs, no wall-clock reads, no
  hash-order-dependent iteration feeding event queues;
* **API hygiene** -- no mutable default arguments, no float ``==``, no
  bare ``except``, honest ``__all__`` exports, annotated public APIs.

Run it with ``python -m repro.tooling.lint src/repro``.  The engine has
no third-party dependencies, so it works in offline environments where
ruff/mypy are unavailable.
"""

from .diagnostics import Diagnostic, LintReport, Severity
from .engine import iter_python_files, lint_file, lint_paths, lint_source
from .registry import LintRule, all_rules, get_rule, register, resolve_rules

__all__ = [
    "Diagnostic",
    "LintReport",
    "Severity",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "LintRule",
    "all_rules",
    "get_rule",
    "register",
    "resolve_rules",
]
