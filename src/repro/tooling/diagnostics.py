"""Diagnostic records and lint reports.

A :class:`Diagnostic` is one finding at one source location; a
:class:`LintReport` is the aggregate of a lint run over many files.  Both
serialize to plain dicts so the CLI can emit a stable JSON schema
(``JSON_SCHEMA_VERSION`` bumps on any breaking change to the layout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List

JSON_SCHEMA_VERSION = 1


class Severity(enum.Enum):
    """How bad a finding is; only :attr:`ERROR` fails the build."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinned to a file/line/column."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def format_human(self) -> str:
        """``path:line:col: RULE [severity] message`` — editor-clickable."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Aggregate outcome of linting a set of files."""

    files_checked: int = 0
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed_count: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    def ok(self, fail_on_warning: bool = False) -> bool:
        """True when the run should exit 0."""
        if fail_on_warning:
            return not self.diagnostics
        return self.error_count == 0

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def finalize(self) -> "LintReport":
        """Sort diagnostics into a deterministic report order."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "files_checked": self.files_checked,
            "summary": {
                "errors": self.error_count,
                "warnings": self.warning_count,
                "suppressed": self.suppressed_count,
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
