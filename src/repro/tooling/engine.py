"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately simple: one ``ast.parse`` per file, one
:class:`FileContext` handed to every in-scope rule, suppressions applied
at the end.  There is no caching or parallelism — linting this entire
repo takes well under a second, and determinism of the report itself
matters more than speed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, LintReport, Severity
from .registry import LintRule, all_rules
from .suppress import SuppressionIndex

#: Directory names never descended into during file discovery.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist"}
)

#: Top-level package name used to derive dotted module paths from files.
ROOT_PACKAGE = "repro"


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: str
    module: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", module: Optional[str] = None
    ) -> "FileContext":
        tree = ast.parse(source, filename=path)
        if module is None:
            module = derive_module(Path(path))
        return cls(
            path=path,
            module=module,
            tree=tree,
            source=source,
            lines=source.splitlines(),
        )


def derive_module(path: Path) -> str:
    """Best-effort dotted module path for a file.

    Files under a ``repro`` directory map to their real import path
    (``src/repro/sim/engine.py`` -> ``repro.sim.engine``); anything else
    falls back to its bare stem, which keeps package-scoped rules from
    firing on out-of-tree files such as test fixtures.
    """
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    if ROOT_PACKAGE in stem_parts:
        idx = len(stem_parts) - 1 - stem_parts[::-1].index(ROOT_PACKAGE)
        module_parts = stem_parts[idx:]
        if module_parts[-1] == "__init__":
            module_parts = module_parts[:-1]
        return ".".join(module_parts)
    return path.stem


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: Dict[str, Path] = {}
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                found[str(root)] = root
            continue
        if not root.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            if any(part in EXCLUDED_DIRS for part in candidate.parts):
                continue
            found[str(candidate)] = candidate
    return [found[key] for key in sorted(found)]


def _run_rules(
    ctx: FileContext, rules: Sequence[LintRule]
) -> Tuple[List[Diagnostic], int]:
    """Run every in-scope rule, returning (kept, suppressed_count)."""
    collected: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(ctx.module):
            continue
        collected.extend(rule.check(ctx))
    index = SuppressionIndex.from_source(ctx.source)
    kept = index.apply(collected)
    return kept, len(collected) - len(kept)


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Diagnostic]:
    """Lint a source string; the unit-test entry point.

    ``module`` overrides the dotted module path used for package-scoped
    rules, so fixtures can pretend to live anywhere in the tree.
    """
    ctx = FileContext.from_source(source, path=path, module=module)
    kept, _ = _run_rules(ctx, rules if rules is not None else all_rules())
    return sorted(kept, key=Diagnostic.sort_key)


def lint_file(
    path: Path, rules: Optional[Sequence[LintRule]] = None
) -> List[Diagnostic]:
    """Lint a single file on disk."""
    return lint_source(
        path.read_text(encoding="utf-8"), path=str(path), rules=rules
    )


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[LintRule]] = None
) -> LintReport:
    """Lint files/directories into a :class:`LintReport`.

    Unparseable files are reported as a synthetic ``SYNTAX`` error
    diagnostic rather than aborting the run, so one broken file cannot
    mask findings elsewhere.
    """
    active = list(rules) if rules is not None else all_rules()
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        report.files_checked += 1
        try:
            ctx = FileContext.from_source(source, path=str(file_path))
        except SyntaxError as exc:
            report.diagnostics.append(
                Diagnostic(
                    rule_id="SYNTAX",
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        kept, suppressed = _run_rules(ctx, active)
        report.extend(kept)
        report.suppressed_count += suppressed
    return report.finalize()
