"""CLI for the repro lint engine.

Usage::

    python -m repro.tooling.lint src/repro
    python -m repro.tooling.lint --format json src/repro
    python -m repro.tooling.lint --list-rules
    python -m repro.tooling.lint --select DET001,DET005 src/repro

Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .diagnostics import LintReport
from .engine import lint_paths
from .registry import all_rules, resolve_rules

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tooling.lint",
        description=(
            "AST-based determinism and API-hygiene linter for the DMap "
            "reproduction (stdlib-only; see repro.tooling)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--fail-on-warning",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _print_rule_listing() -> None:
    for rule in all_rules():
        scope = ", ".join(rule.packages) if rule.packages else "all packages"
        print(f"{rule.rule_id}  [{rule.severity}]  {rule.summary}  ({scope})")


def _print_human(report: LintReport, fail_on_warning: bool) -> None:
    for diagnostic in report.diagnostics:
        print(diagnostic.format_human())
    status = "ok" if report.ok(fail_on_warning) else "FAILED"
    print(
        f"repro-lint: {status} — {report.files_checked} files, "
        f"{report.error_count} errors, {report.warning_count} warnings, "
        f"{report.suppressed_count} suppressed"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        _print_rule_listing()
        return EXIT_CLEAN
    try:
        rules = resolve_rules(
            select=_split_ids(options.select), ignore=_split_ids(options.ignore)
        )
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    if not rules:
        print(
            "repro-lint: --select/--ignore left no rules to run",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        report = lint_paths(options.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _print_human(report, options.fail_on_warning)
    return (
        EXIT_CLEAN if report.ok(options.fail_on_warning) else EXIT_VIOLATIONS
    )


if __name__ == "__main__":
    sys.exit(main())
