"""Rule registry and the :class:`LintRule` base class.

Rules self-register via the :func:`register` decorator at import time
(``repro.tooling.rules`` imports every rule module).  Each rule declares:

* ``rule_id`` — stable identifier used in reports and suppressions
  (``DET0xx`` for determinism, ``HYG0xx`` for API hygiene);
* ``severity`` — default severity for its findings;
* ``packages`` — optional dotted-module prefixes the rule is scoped to
  (empty means "applies everywhere");
* ``check(ctx)`` — yields :class:`~repro.tooling.diagnostics.Diagnostic`
  objects for one parsed file.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import FileContext


class LintRule:
    """Base class for all lint rules; subclass and :func:`register`."""

    rule_id: str = ""
    summary: str = ""
    severity: Severity = Severity.ERROR
    #: Dotted module prefixes this rule applies to; empty = everywhere.
    packages: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        """Whether this rule is in scope for the given dotted module."""
        if not self.packages:
            return True
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in self.packages
        )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic for ``node`` in ``ctx`` with this rule's id."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    # Deferred so `import repro.tooling.registry` alone has no side effects;
    # the rules package imports this module back to reach @register.
    from . import rules  # noqa: F401


def all_rules() -> List[LintRule]:
    """Instantiate every registered rule, in rule-id order."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> LintRule:
    """Instantiate a single rule by id (raises ``KeyError`` if unknown)."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]()


def resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintRule]:
    """Resolve a rule set from ``--select`` / ``--ignore`` style filters."""
    rules = all_rules()
    known = {rule.rule_id for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise KeyError(f"unknown rule id {requested!r}")
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.rule_id not in dropped]
    return rules
