"""Built-in lint rules.

Importing this package registers every rule with
:mod:`repro.tooling.registry`.  Rule ids are grouped by family:

* ``DET0xx`` — determinism (seeded-RNG discipline, wall-clock bans,
  iteration-order hazards);
* ``HYG0xx`` — API hygiene (mutable defaults, float equality, bare
  except, ``__all__`` honesty, return annotations).
"""

from . import determinism, hygiene

__all__ = ["determinism", "hygiene"]
