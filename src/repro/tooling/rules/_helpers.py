"""Shared AST helpers for rule implementations.

The central utility is canonical call-target resolution: imports are
folded into a binding map (``np`` -> ``numpy``, ``dt`` ->
``datetime.datetime``), and attribute chains on those bindings resolve
to dotted canonical names (``np.random.seed`` ->
``numpy.random.seed``).  This keeps rules alias-proof without a full
type checker.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local binding name -> canonical dotted import path.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``import numpy.random``           -> ``{"numpy": "numpy"}``
    ``from numpy.random import rand`` -> ``{"rand": "numpy.random.rand"}``
    Relative imports are skipped (their canonical path is ambiguous).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # "import a.b" binds only the top-level name "a".
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]``; None for non-chains."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return parts[::-1]


def resolve_name(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of an expression, resolving import aliases."""
    chain = attribute_chain(node)
    if chain is None:
        return None
    base, rest = chain[0], chain[1:]
    canonical_base = aliases.get(base)
    if canonical_base is None:
        return None
    return ".".join([canonical_base] + rest)


def iter_calls(
    tree: ast.Module, aliases: Dict[str, str]
) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    """Yield every call with its resolved canonical target (or None)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, resolve_name(node.func, aliases)


def iter_statements_outside_functions(
    tree: ast.Module,
) -> Iterator[ast.stmt]:
    """Module-level statements, descending into if/try/with/for blocks
    but never into function or class bodies."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child_field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(node, child_field, []) or [])
        for handler in getattr(node, "handlers", []) or []:
            stack.extend(handler.body)


def is_float_constant(node: ast.expr) -> bool:
    """True for a literal float (including negated, e.g. ``-0.5``)."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)
