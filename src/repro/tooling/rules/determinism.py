"""Determinism rules (``DET0xx``).

The simulation's headline results are only meaningful if a fixed seed
reproduces them bit-for-bit.  These rules enforce the repo's RNG
convention — randomness flows in as a ``numpy.random.Generator``
parameter or a ``default_rng(seed)`` built from an explicit seed — and
ban the ambient entropy sources that silently break replays: the
process-global ``random`` module, legacy ``np.random.*`` globals,
wall-clock reads, and set-order iteration feeding event schedules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from ..diagnostics import Diagnostic
from ..registry import LintRule, register
from ..engine import FileContext
from ._helpers import collect_import_aliases, iter_calls

#: Packages whose event ordering feeds the discrete-event simulation.
SIM_CRITICAL_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.bgp",
    "repro.fastpath",
    "repro.hashing",
    "repro.topology",
    "repro.workload",
    "repro.validation",
    "repro.obs",
    # repro.net: only the pure modules are sim-critical.  The codec and
    # the client's schedule/jitter arithmetic must replay bit-for-bit
    # (wire tests and the live validation lane assert it), so they get
    # the full determinism rule set.  The event-loop modules (node,
    # cluster, loadgen, __main__) are deliberately excluded: their job
    # is real wall-clock I/O — loop.time() reads, timer scheduling,
    # socket readiness — which is inherently order-nondeterministic and
    # is reconciled statistically, not bit-for-bit.
    "repro.net.protocol",
    "repro.net.client",
)

#: numpy.random attributes that are part of the seeded-Generator API.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
    }
)

#: Canonical callables that read the wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Set-returning methods whose result has hash-dependent order.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


@register
class StdlibRandomRule(LintRule):
    """DET001: the stdlib ``random`` module is banned outright.

    Its state is process-global and shared across every caller, so any
    new call site reorders every later draw — even ``random.seed`` at
    import time cannot make concurrent users reproducible.
    """

    rule_id = "DET001"
    summary = "stdlib `random` module is process-global; forbidden"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.diagnostic(
                            ctx,
                            node,
                            "import of stdlib `random`: its global state "
                            "breaks seeded replays; thread a "
                            "`numpy.random.Generator` parameter instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.diagnostic(
                        ctx,
                        node,
                        "import from stdlib `random`: its global state "
                        "breaks seeded replays; thread a "
                        "`numpy.random.Generator` parameter instead",
                    )


@register
class LegacyNumpyRandomRule(LintRule):
    """DET002: legacy ``np.random.*`` global-state API is banned.

    ``np.random.seed`` / ``np.random.rand`` and friends mutate one
    hidden global ``RandomState``; the repo convention is the explicit
    ``default_rng(seed)`` / ``Generator`` API.
    """

    rule_id = "DET002"
    summary = "legacy np.random global-state API; use default_rng/Generator"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = collect_import_aliases(ctx.tree)
        for call, target in iter_calls(ctx.tree, aliases):
            if (
                target
                and target.startswith("numpy.random.")
                and target.rsplit(".", 1)[1] not in _NP_RANDOM_ALLOWED
            ):
                yield self.diagnostic(
                    ctx,
                    call,
                    f"legacy global-state call `{target}`: use a seeded "
                    "`numpy.random.default_rng(seed)` Generator instead",
                )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and node.module
                and (
                    node.module == "numpy.random"
                    or node.module.startswith("numpy.random.")
                )
            ):
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_ALLOWED:
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"import of legacy `numpy.random.{alias.name}`: "
                            "only the Generator API "
                            "(default_rng/Generator/SeedSequence) is allowed",
                        )


@register
class WallClockRule(LintRule):
    """DET003: wall-clock reads are banned in simulation code.

    Virtual time comes from the event engine (``Simulator.now``); any
    ``time.time()`` / ``datetime.now()`` sneaking into logic makes runs
    depend on the host clock and unreproducible.
    """

    rule_id = "DET003"
    summary = "wall-clock read; use the simulator's virtual time"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = collect_import_aliases(ctx.tree)
        for call, target in iter_calls(ctx.tree, aliases):
            if target in _WALL_CLOCK:
                yield self.diagnostic(
                    ctx,
                    call,
                    f"wall-clock call `{target}`: simulation logic must use "
                    "virtual time (Simulator.now), not the host clock",
                )


@register
class UnsortedSetIterationRule(LintRule):
    """DET004: iterating a set feeds hash order into event schedules.

    Set iteration order depends on insertion history and (for strings,
    pre-PYTHONHASHSEED pinning) on the process hash seed.  In packages
    that schedule events or place replicas, wrap the set in
    ``sorted(...)`` before iterating.
    """

    rule_id = "DET004"
    summary = "set iteration order is hash-dependent; wrap in sorted(...)"
    packages = SIM_CRITICAL_PACKAGES

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return True
        return False

    def _iter_targets(self, ctx: FileContext) -> Iterator[ast.expr]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield generator.iter

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for iter_expr in self._iter_targets(ctx):
            if self._is_set_expr(iter_expr):
                yield self.diagnostic(
                    ctx,
                    iter_expr,
                    "iteration over a set: order is hash/insertion dependent "
                    "and can reorder scheduled events; iterate "
                    "`sorted(<set>)` instead",
                )


@register
class UnseededDefaultRngRule(LintRule):
    """DET005: ``default_rng()`` without a seed pulls OS entropy.

    An argument-less ``default_rng()`` (or an explicit ``None`` seed)
    seeds from the OS and differs on every run; seeds must be explicit
    so experiment configs fully determine results.
    """

    rule_id = "DET005"
    summary = "default_rng() without an explicit seed"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = collect_import_aliases(ctx.tree)
        for call, target in iter_calls(ctx.tree, aliases):
            if target != "numpy.random.default_rng":
                continue
            if not call.args and not call.keywords:
                yield self.diagnostic(
                    ctx,
                    call,
                    "`default_rng()` with no seed draws OS entropy; pass an "
                    "explicit seed (or accept a Generator parameter)",
                )
            elif call.args and isinstance(call.args[0], ast.Constant) and (
                call.args[0].value is None
            ):
                yield self.diagnostic(
                    ctx,
                    call,
                    "`default_rng(None)` draws OS entropy; pass an explicit "
                    "seed (or accept a Generator parameter)",
                )
