"""API-hygiene rules (``HYG0xx``).

Correctness hazards that reviewers reliably miss: defaults shared
between calls, float equality in metric code, exception handlers that
swallow ``KeyboardInterrupt``, ``__all__`` lists that drift from the
module body, and public simulation APIs without return annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..diagnostics import Diagnostic
from ..registry import LintRule, register
from ..engine import FileContext
from ._helpers import is_float_constant, iter_statements_outside_functions

#: Constructors whose call as a default argument shares state (the value
#: is built once at def time, then mutated across calls).
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
    }
)


def _iter_function_defs(
    tree: ast.Module,
) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


@register
class MutableDefaultRule(LintRule):
    """HYG001: mutable default arguments are evaluated once and shared."""

    rule_id = "HYG001"
    summary = "mutable default argument"

    def _is_mutable_default(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CONSTRUCTORS
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in _iter_function_defs(ctx.tree):
            args = func.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable_default(default):
                    yield self.diagnostic(
                        ctx,
                        default,
                        "mutable default argument is created once at `def` "
                        "time and shared across calls; default to None and "
                        "build inside the function",
                    )


@register
class FloatEqualityRule(LintRule):
    """HYG002: float literal ``==``/``!=`` in metric/simulation code.

    Latencies and rates accumulate rounding error; exact comparison
    against a float literal is almost always a logic bug.  Scoped to
    ``repro.sim`` and ``repro.analysis`` where such comparisons decide
    measured results.
    """

    rule_id = "HYG002"
    summary = "float equality comparison; use a tolerance"
    packages = ("repro.sim", "repro.analysis")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(is_float_constant(operand) for operand in operands):
                yield self.diagnostic(
                    ctx,
                    node,
                    "equality against a float literal: accumulated rounding "
                    "makes this unstable; use math.isclose or an explicit "
                    "tolerance",
                )


@register
class BareExceptRule(LintRule):
    """HYG003: bare ``except:`` catches SystemExit/KeyboardInterrupt."""

    rule_id = "HYG003"
    summary = "bare except"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare `except:` swallows SystemExit and "
                    "KeyboardInterrupt; catch `Exception` or something "
                    "narrower",
                )


@register
class PhantomExportRule(LintRule):
    """HYG004: every ``__all__`` entry must exist in the module."""

    rule_id = "HYG004"
    summary = "__all__ names a symbol the module does not define"

    def _collect_namespace(self, tree: ast.Module) -> Tuple[Set[str], bool]:
        """(bound names, saw star import) for the module's top level."""
        names: Set[str] = set()
        star_import = False

        def add_target(target: ast.expr) -> None:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    add_target(element)
            elif isinstance(target, ast.Starred):
                add_target(target.value)

        for node in iter_statements_outside_functions(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    add_target(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                add_target(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                add_target(node.target)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        add_target(item.optional_vars)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        names.add(alias.asname or alias.name)
        return names, star_import

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        namespace, star_import = self._collect_namespace(ctx.tree)
        if star_import:
            # A star import makes the namespace unknowable statically.
            return
        for node in iter_statements_outside_functions(ctx.tree):
            value = None
            if isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                ):
                    value = node.value
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == "__all__"
                ):
                    value = node.value
            if value is None or not isinstance(value, (ast.List, ast.Tuple)):
                continue
            for element in value.elts:
                if (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                    and element.value not in namespace
                ):
                    yield self.diagnostic(
                        ctx,
                        element,
                        f"__all__ exports {element.value!r} but the module "
                        "neither defines nor imports it",
                    )


@register
class MissingReturnAnnotationRule(LintRule):
    """HYG005: public functions in ``core``/``sim`` must annotate returns.

    These packages are the API surface every experiment builds on; an
    unannotated return type there hides interface drift that the
    analysis code then mis-consumes.  ``__init__`` counts as public (it
    is the constructor signature callers see); other underscore-prefixed
    names are exempt.
    """

    rule_id = "HYG005"
    summary = "public function missing return annotation"
    packages = ("repro.core", "repro.sim")

    def _is_public(self, name: str) -> bool:
        return name == "__init__" or not name.startswith("_")

    def _iter_public_defs(
        self, tree: ast.Module
    ) -> Iterator[ast.FunctionDef]:
        containers: List[ast.AST] = [tree]
        while containers:
            container = containers.pop(0)
            for node in container.body:  # type: ignore[attr-defined]
                if isinstance(node, ast.ClassDef):
                    containers.append(node)
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and self._is_public(node.name):
                    yield node

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in self._iter_public_defs(ctx.tree):
            if func.returns is None:
                yield self.diagnostic(
                    ctx,
                    func,
                    f"public function `{func.name}` has no return "
                    "annotation; core/sim APIs must declare their types",
                )
