"""Inline suppression comments.

Two forms, mirroring the familiar ``# noqa`` / ``# pylint: disable``
conventions but namespaced to this linter:

* ``# lint: disable=DET001`` on a line suppresses the named rule(s) for
  findings reported **on that line** (comma-separated ids, or ``all``);
* ``# lint: disable-file=HYG004`` anywhere in a file suppresses the
  named rule(s) for the **whole file**.

Suppressions are matched by the line the diagnostic points at, so a
multi-line statement must carry the comment on the line the rule
reports (the statement's first line for every built-in rule).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from .diagnostics import Diagnostic

_LINE_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")
_FILE_RE = re.compile(r"#\s*lint:\s*disable-file=([A-Za-z0-9_,\- ]+)")

ALL = "all"


def _parse_ids(raw: str) -> FrozenSet[str]:
    return frozenset(
        token.strip() for token in raw.split(",") if token.strip()
    )


@dataclass
class SuppressionIndex:
    """Per-file map of suppressed rule ids, by line and file-wide."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" not in line:
                continue
            file_match = _FILE_RE.search(line)
            if file_match:
                index.file_wide.update(_parse_ids(file_match.group(1)))
                continue
            line_match = _LINE_RE.search(line)
            if line_match:
                index.by_line.setdefault(lineno, set()).update(
                    _parse_ids(line_match.group(1))
                )
        return index

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        if ALL in self.file_wide or diagnostic.rule_id in self.file_wide:
            return True
        line_ids = self.by_line.get(diagnostic.line)
        if not line_ids:
            return False
        return ALL in line_ids or diagnostic.rule_id in line_ids

    def apply(self, diagnostics: List[Diagnostic]) -> List[Diagnostic]:
        """Filter out suppressed diagnostics (kept order)."""
        return [d for d in diagnostics if not self.is_suppressed(d)]
