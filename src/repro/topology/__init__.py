"""AS-level topology substrate: graph, generator, routing, Jellyfish."""

from .datasets import (
    cached_topology,
    line_fixture,
    load_topology,
    save_topology,
    star_fixture,
)
from .generator import (
    PAPER_N_AS,
    PAPER_N_LINKS,
    TopologyConfig,
    generate_internet_topology,
    small_scale_config,
)
from .graph import ASInfo, ASTier, ASTopology, Link
from .jellyfish import JellyfishDecomposition, decompose
from .latency import GeographyModel, LatencyModel, PAPER_MEDIAN_INTRA_MS
from .routing import Router

__all__ = [
    "cached_topology",
    "line_fixture",
    "load_topology",
    "save_topology",
    "star_fixture",
    "PAPER_N_AS",
    "PAPER_N_LINKS",
    "TopologyConfig",
    "generate_internet_topology",
    "small_scale_config",
    "ASInfo",
    "ASTier",
    "ASTopology",
    "Link",
    "JellyfishDecomposition",
    "decompose",
    "GeographyModel",
    "LatencyModel",
    "PAPER_MEDIAN_INTRA_MS",
    "Router",
]
