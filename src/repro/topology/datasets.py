"""Topology persistence and small built-in fixtures.

Generating the full 26k-AS topology takes tens of seconds, so experiment
drivers cache generated instances on disk (``.npz``).  Tests use the tiny
hand-built fixtures, whose shortest paths are known by inspection.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import TopologyError
from .graph import ASInfo, ASTier, ASTopology

_FORMAT_VERSION = 1


def save_topology(topology: ASTopology, path: str) -> None:
    """Serialize a topology to a compressed ``.npz`` archive."""
    asns = topology.asns()
    info = [topology.info(a) for a in asns]
    links = list(topology.links())
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        asns=np.asarray(asns, dtype=np.int64),
        tiers=np.asarray([int(i.tier) for i in info], dtype=np.int64),
        intra=np.asarray([i.intra_latency_ms for i in info], dtype=np.float64),
        endnodes=np.asarray([i.endnodes for i in info], dtype=np.int64),
        pos_x=np.asarray([i.position[0] for i in info], dtype=np.float64),
        pos_y=np.asarray([i.position[1] for i in info], dtype=np.float64),
        link_a=np.asarray([l.a for l in links], dtype=np.int64),
        link_b=np.asarray([l.b for l in links], dtype=np.int64),
        link_latency=np.asarray([l.latency_ms for l in links], dtype=np.float64),
    )


def load_topology(path: str) -> ASTopology:
    """Load a topology saved by :func:`save_topology`."""
    if not os.path.exists(path):
        raise TopologyError(f"no topology archive at {path}")
    with np.load(path) as data:
        if int(data["version"]) != _FORMAT_VERSION:
            raise TopologyError(
                f"unsupported topology format version {int(data['version'])}"
            )
        topo = ASTopology()
        for asn, tier, intra, endnodes, x, y in zip(
            data["asns"].tolist(),
            data["tiers"].tolist(),
            data["intra"].tolist(),
            data["endnodes"].tolist(),
            data["pos_x"].tolist(),
            data["pos_y"].tolist(),
        ):
            topo.add_as(
                ASInfo(int(asn), ASTier(int(tier)), float(intra), int(endnodes), (x, y))
            )
        for a, b, latency in zip(
            data["link_a"].tolist(),
            data["link_b"].tolist(),
            data["link_latency"].tolist(),
        ):
            topo.add_link(int(a), int(b), float(latency))
    return topo


def line_fixture(n: int = 4, link_ms: float = 10.0, intra_ms: float = 1.0) -> ASTopology:
    """A path graph 1-2-...-n with uniform latencies.

    Shortest-path latency between AS i and AS j is ``|i - j| * link_ms``,
    which makes routing assertions trivial.
    """
    if n < 2:
        raise TopologyError("line fixture needs at least 2 ASs")
    topo = ASTopology()
    for asn in range(1, n + 1):
        topo.add_as(ASInfo(asn, ASTier.STUB, intra_ms, endnodes=10))
    for asn in range(1, n):
        topo.add_link(asn, asn + 1, link_ms)
    return topo


def star_fixture(
    n_leaves: int = 5, link_ms: float = 5.0, intra_ms: float = 1.0
) -> ASTopology:
    """Hub AS 1 with ``n_leaves`` leaf ASs 2..n+1 — a minimal Jellyfish
    (core = the hub edge clique, every leaf in Hang-0)."""
    if n_leaves < 1:
        raise TopologyError("star fixture needs at least 1 leaf")
    topo = ASTopology()
    topo.add_as(ASInfo(1, ASTier.TIER1, intra_ms, endnodes=10))
    for asn in range(2, n_leaves + 2):
        topo.add_as(ASInfo(asn, ASTier.STUB, intra_ms, endnodes=10))
        topo.add_link(1, asn, link_ms)
    return topo


def cached_topology(
    path: str,
    generate,
    force: bool = False,
) -> ASTopology:
    """Load ``path`` if present, else call ``generate()`` and persist it.

    ``generate`` is a zero-argument callable returning an
    :class:`ASTopology`; experiment drivers pass a seeded generator
    closure so cache hits and misses produce identical topologies.
    """
    if not force and os.path.exists(path):
        return load_topology(path)
    topology = generate()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    save_topology(topology, path)
    return topology
