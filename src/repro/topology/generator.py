"""Synthetic DIMES-like Internet topology generation.

The paper's network model is the measured DIMES AS graph: 26,424 ASs,
90,267 links (§IV-B.1).  This generator reproduces its load-bearing
properties with a tiered preferential-attachment construction:

* a small **tier-1 clique** (the default-free core — the Jellyfish model's
  Shell-0, §V-A);
* **transit ASs** multi-homed into the core and peering among themselves;
* a large majority of **stub ASs** attached to one-to-three providers with
  degree-and-proximity preferential attachment (yielding the heavy-tailed
  degree distribution of the real AS graph);
* extra proximity-biased **peering links** added until the target link
  count is met (these flatten the hierarchy, as in the real Internet);
* **end-node populations** drawn Zipf-heavy over stubs, which weight the
  origins of GUID inserts and queries exactly as the DIMES end-node
  dataset does in the paper.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .graph import ASInfo, ASTier, ASTopology
from .latency import GeographyModel, LatencyModel

#: DIMES graph scale used in the paper (§IV-B.1).
PAPER_N_AS = 26_424
PAPER_N_LINKS = 90_267


@dataclass
class TopologyConfig:
    """Knobs of :func:`generate_internet_topology`.

    Attributes
    ----------
    n_as:
        Total number of ASs.
    target_links:
        Approximate undirected link count (defaults to the paper's
        links-per-AS ratio).
    tier1_fraction, transit_fraction:
        Share of ASs in the core clique and the transit layer.
    stub_extra_provider_prob:
        Probability a stub is multi-homed to a second/third provider.
    population_exponent:
        Zipf exponent for end-node counts over stub ASs.
    total_endnodes:
        Total end-node population to distribute.
    latency, geography:
        Sub-models for latencies and the planar embedding.
    """

    n_as: int = PAPER_N_AS
    target_links: Optional[int] = None
    tier1_fraction: float = 0.0005
    transit_fraction: float = 0.15
    stub_extra_provider_prob: float = 0.45
    population_exponent: float = 1.1
    total_endnodes: int = 50_000_000
    latency: LatencyModel = field(default_factory=LatencyModel)
    geography: GeographyModel = field(default_factory=GeographyModel)

    def validate(self) -> None:
        if self.n_as < 5:
            raise ConfigurationError("need at least 5 ASs")
        if not 0 < self.transit_fraction < 1:
            raise ConfigurationError("transit_fraction must lie in (0, 1)")
        if not 0 <= self.stub_extra_provider_prob <= 1:
            raise ConfigurationError("stub_extra_provider_prob must lie in [0, 1]")
        if self.population_exponent <= 0:
            raise ConfigurationError("population_exponent must be positive")
        if self.total_endnodes < self.n_as:
            raise ConfigurationError("total_endnodes must cover every AS")
        self.latency.validate()
        self.geography.validate()

    def resolved_target_links(self) -> int:
        if self.target_links is not None:
            return self.target_links
        return int(round(self.n_as * PAPER_N_LINKS / PAPER_N_AS))

    def n_tier1(self) -> int:
        return max(4, int(round(self.n_as * self.tier1_fraction)))

    def n_transit(self) -> int:
        return max(2, int(round(self.n_as * self.transit_fraction)))


def small_scale_config(n_as: int = 200, seed_endnodes: int = 100_000) -> TopologyConfig:
    """A small config suitable for unit tests and examples."""
    return TopologyConfig(n_as=n_as, total_endnodes=max(seed_endnodes, n_as))


def generate_internet_topology(
    config: Optional[TopologyConfig] = None, seed: int = 0
) -> ASTopology:
    """Generate a connected, DIMES-like AS topology.

    ASNs are assigned 1..n with tier-1 ASs first.  The result always
    passes :meth:`ASTopology.validate`.
    """
    config = config or TopologyConfig()
    config.validate()
    rng = np.random.default_rng(seed)
    geo = config.geography
    lat = config.latency

    n = config.n_as
    n_t1 = min(config.n_tier1(), n - 2)
    n_t2 = min(config.n_transit(), n - n_t1 - 1)
    n_t3 = n - n_t1 - n_t2

    topo = ASTopology()
    positions: List[Tuple[float, float]] = []

    # --- Tier 1: well-separated backbone sites, full-mesh peering. -----
    t1_asns = list(range(1, n_t1 + 1))
    for asn in t1_asns:
        pos = geo.random_site(rng)
        positions.append(pos)
        topo.add_as(ASInfo(asn, ASTier.TIER1, 0.0, 0, pos))
    for i, a in enumerate(t1_asns):
        for b in t1_asns[i + 1 :]:
            topo.add_link(a, b, lat.link_latency_ms(positions[a - 1], positions[b - 1]))

    # --- Tier 2: transit providers near core sites. --------------------
    t2_asns = list(range(n_t1 + 1, n_t1 + n_t2 + 1))
    t1_pos = np.asarray(positions[:n_t1], dtype=float)
    degrees: Dict[int, int] = {asn: topo.degree(asn) for asn in t1_asns}
    for asn in t2_asns:
        anchor_idx = int(rng.integers(0, n_t1))
        pos = geo.near(tuple(t1_pos[anchor_idx]), geo.transit_spread_km, rng)
        positions.append(pos)
        topo.add_as(ASInfo(asn, ASTier.TRANSIT, 0.0, 0, pos))
        # 1-3 upstream tier-1 providers, nearest-biased.
        n_up = 1 + int(rng.random() < 0.7) + int(rng.random() < 0.25)
        d2 = ((t1_pos - np.asarray(pos)) ** 2).sum(axis=1)
        weights = 1.0 / (d2 + 1e4)
        weights /= weights.sum()
        ups = rng.choice(n_t1, size=min(n_up, n_t1), replace=False, p=weights)
        for up in ups.tolist():
            provider = t1_asns[up]
            topo.add_link(asn, provider, lat.link_latency_ms(pos, positions[provider - 1]))
        degrees[asn] = topo.degree(asn)

    # Transit-transit peering: each transit peers with ~1 other, degree- and
    # proximity-biased.
    t2_pos = np.asarray(positions[n_t1:], dtype=float)
    for i, asn in enumerate(t2_asns):
        if rng.random() < 0.6 and len(t2_asns) > 1:
            d2 = ((t2_pos - t2_pos[i]) ** 2).sum(axis=1)
            d2[i] = np.inf
            deg = np.asarray([degrees[a] for a in t2_asns], dtype=float)
            weights = (deg + 1.0) / (d2 + 1e5)
            weights[i] = 0.0
            total = weights.sum()
            if total <= 0:
                continue
            j = int(rng.choice(len(t2_asns), p=weights / total))
            peer = t2_asns[j]
            if peer not in topo.neighbors(asn):
                topo.add_link(
                    asn, peer, lat.link_latency_ms(positions[asn - 1], positions[peer - 1])
                )
                degrees[asn] = topo.degree(asn)
                degrees[peer] = topo.degree(peer)

    # --- Tier 3: stubs via degree+proximity preferential attachment. ---
    t3_asns = list(range(n_t1 + n_t2 + 1, n + 1))
    provider_pool = t2_asns if t2_asns else t1_asns
    pool_pos = np.asarray([positions[a - 1] for a in provider_pool], dtype=float)
    pool_deg = np.asarray([degrees[a] for a in provider_pool], dtype=float)
    for asn in t3_asns:
        # Anchor near a random provider region (population clusters).
        anchor = int(rng.integers(0, len(provider_pool)))
        pos = geo.near(tuple(pool_pos[anchor]), geo.stub_spread_km, rng)
        positions.append(pos)
        topo.add_as(ASInfo(asn, ASTier.STUB, 0.0, 0, pos))
        n_prov = 1
        if rng.random() < config.stub_extra_provider_prob:
            n_prov += 1
            if rng.random() < 0.3:
                n_prov += 1
        d2 = ((pool_pos - np.asarray(pos)) ** 2).sum(axis=1)
        weights = (pool_deg + 1.0) / (d2 + 1e5)
        weights /= weights.sum()
        chosen = rng.choice(
            len(provider_pool), size=min(n_prov, len(provider_pool)), replace=False, p=weights
        )
        for c in chosen.tolist():
            provider = provider_pool[c]
            topo.add_link(asn, provider, lat.link_latency_ms(pos, positions[provider - 1]))
            pool_deg[c] += 1.0

    # --- Extra peering links up to the target count. --------------------
    target = config.resolved_target_links()
    all_pos = np.asarray(positions, dtype=float)
    attempts = 0
    max_attempts = 20 * max(target - topo.n_links(), 0) + 100
    while topo.n_links() < target and attempts < max_attempts:
        attempts += 1
        a = int(rng.integers(1, n + 1))
        b = int(rng.integers(1, n + 1))
        if a == b:
            continue
        dist = math.hypot(*(all_pos[a - 1] - all_pos[b - 1]))
        # Peering is overwhelmingly local (IXP-style).
        if rng.random() > math.exp(-dist / 2000.0):
            continue
        if b in topo.neighbors(a):
            continue
        topo.add_link(a, b, lat.link_latency_ms(tuple(all_pos[a - 1]), tuple(all_pos[b - 1])))

    # --- Attributes: intra-AS latency and end-node populations. --------
    intra = lat.intra_latencies_ms(n, rng, allow_outliers=False)
    # Outliers only on stubs: a huge backbone with 2.3 s internal latency
    # would be unrealistic, and the paper's exemplar (AS 23951) is a small
    # stub AS.
    stub_mask = np.zeros(n, dtype=bool)
    stub_mask[n_t1 + n_t2 :] = True
    if lat.outlier_fraction > 0 and n_t3 > 0:
        out = rng.random(n) < lat.outlier_fraction
        out &= stub_mask
        n_out = int(out.sum())
        if n_out:
            intra[out] = np.exp(
                rng.uniform(
                    math.log(lat.outlier_low_ms), math.log(lat.outlier_high_ms), n_out
                )
            )
    # Core networks are faster internally than the global median.
    intra[: n_t1 + n_t2] *= 0.6

    populations = _zipf_populations(
        n, stub_mask, config.population_exponent, config.total_endnodes, rng
    )

    for asn in range(1, n + 1):
        info = topo.info(asn)
        topo.add_as(
            ASInfo(
                asn,
                info.tier,
                float(intra[asn - 1]),
                int(populations[asn - 1]),
                info.position,
            )
        )

    topo.validate()
    return topo


def _zipf_populations(
    n: int,
    stub_mask: np.ndarray,
    exponent: float,
    total: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Distribute ``total`` end nodes: Zipf-heavy over stubs, light
    elsewhere.

    Every AS gets at least one end node so any AS can originate queries,
    matching the paper's source model (weights proportional to end-node
    counts, §IV-B.1).
    """
    ranks = np.arange(1, n + 1, dtype=float)
    weights = 1.0 / ranks**exponent
    rng.shuffle(weights)
    # Providers host few end nodes compared to access networks.
    weights[~stub_mask] *= 0.05 if stub_mask.any() else 1.0
    weights /= weights.sum()
    populations = np.maximum(1, np.floor(weights * total)).astype(np.int64)
    return populations
