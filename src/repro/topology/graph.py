"""AS-level Internet topology.

The paper's simulation network is the DIMES AS graph: 26,424 ASs and
90,267 inter-AS links, with measured inter-AS link latencies, intra-AS
latencies, and per-AS end-node counts (§IV-B.1).  :class:`ASTopology`
holds exactly those attributes; :mod:`repro.topology.generator`
synthesizes DIMES-like instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import TopologyError


class ASTier(enum.IntEnum):
    """Coarse role of an AS in the Internet hierarchy."""

    TIER1 = 1  # default-free core (full-mesh peering)
    TRANSIT = 2  # regional transit providers
    STUB = 3  # edge / access networks


@dataclass
class ASInfo:
    """Per-AS attributes used by the simulation.

    Attributes
    ----------
    asn:
        Autonomous-system number.
    tier:
        Hierarchy role.
    intra_latency_ms:
        One-way latency to cross the AS internally (DIMES "intra-AS
        latency"; median 3.5 ms in the paper's dataset, heavy-tailed).
    endnodes:
        Number of end hosts attached — weights the origin of GUID inserts
        and queries (§IV-B.1).
    position:
        (x, y) kilometres on a planar geographic embedding; the latency
        model derives link propagation delay from it.
    """

    asn: int
    tier: ASTier = ASTier.STUB
    intra_latency_ms: float = 3.5
    endnodes: int = 1
    position: Tuple[float, float] = (0.0, 0.0)


@dataclass(frozen=True)
class Link:
    """An undirected inter-AS adjacency with a one-way latency."""

    a: int
    b: int
    latency_ms: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop on AS {self.a}")
        if self.latency_ms <= 0:
            raise TopologyError(
                f"link {self.a}-{self.b} must have positive latency"
            )

    def other(self, asn: int) -> int:
        """The endpoint that is not ``asn``."""
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise TopologyError(f"AS {asn} is not an endpoint of {self}")


class ASTopology:
    """Mutable AS graph with latency and population attributes.

    ASs are keyed by ASN.  Internally the class also maintains a dense
    index (``asn -> [0, n)``) so routing can hand the graph to scipy as a
    CSR matrix without re-walking dictionaries.
    """

    def __init__(self) -> None:
        self._info: Dict[int, ASInfo] = {}
        self._adjacency: Dict[int, Dict[int, float]] = {}
        self._dirty = True
        self._index: Dict[int, int] = {}
        self._asns: List[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_as(self, info: ASInfo) -> None:
        """Register an AS; re-adding an ASN replaces its attributes."""
        if info.intra_latency_ms < 0:
            raise TopologyError(f"AS {info.asn}: negative intra-AS latency")
        if info.endnodes < 0:
            raise TopologyError(f"AS {info.asn}: negative end-node count")
        if info.asn not in self._info:
            self._adjacency[info.asn] = {}
            self._dirty = True
        self._info[info.asn] = info

    def add_link(self, a: int, b: int, latency_ms: float) -> None:
        """Add (or update) an undirected link between two registered ASs."""
        link = Link(a, b, latency_ms)  # validates
        for asn in (a, b):
            if asn not in self._info:
                raise TopologyError(f"AS {asn} not registered")
        self._adjacency[a][b] = link.latency_ms
        self._adjacency[b][a] = link.latency_ms
        self._dirty = True

    def remove_link(self, a: int, b: int) -> None:
        """Remove an undirected link (used by failure injection)."""
        if self._adjacency.get(a, {}).pop(b, None) is None:
            raise TopologyError(f"no link {a}-{b}")
        self._adjacency[b].pop(a, None)
        self._dirty = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._info)

    def __contains__(self, asn: int) -> bool:
        return asn in self._info

    def asns(self) -> List[int]:
        """All AS numbers, ascending."""
        self._refresh_index()
        return list(self._asns)

    def info(self, asn: int) -> ASInfo:
        """Attributes of ``asn``; raises :class:`TopologyError` if absent."""
        try:
            return self._info[asn]
        except KeyError as exc:
            raise TopologyError(f"unknown AS {asn}") from exc

    def neighbors(self, asn: int) -> List[int]:
        """Adjacent AS numbers."""
        if asn not in self._adjacency:
            raise TopologyError(f"unknown AS {asn}")
        return list(self._adjacency[asn])

    def degree(self, asn: int) -> int:
        """Number of inter-AS links at ``asn``."""
        if asn not in self._adjacency:
            raise TopologyError(f"unknown AS {asn}")
        return len(self._adjacency[asn])

    def link_latency(self, a: int, b: int) -> float:
        """One-way latency of the direct link a-b."""
        try:
            return self._adjacency[a][b]
        except KeyError as exc:
            raise TopologyError(f"no link {a}-{b}") from exc

    def links(self) -> Iterator[Link]:
        """All undirected links, each yielded once (a < b)."""
        for a, nbrs in self._adjacency.items():
            for b, latency in nbrs.items():
                if a < b:
                    yield Link(a, b, latency)

    def n_links(self) -> int:
        """Number of undirected links."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def endnode_counts(self) -> Dict[int, int]:
        """End-node population per AS (query/insert origin weights)."""
        return {asn: info.endnodes for asn, info in self._info.items()}

    def intra_latency(self, asn: int) -> float:
        """One-way intra-AS latency of ``asn``."""
        return self.info(asn).intra_latency_ms

    # ------------------------------------------------------------------
    # Dense indexing / export
    # ------------------------------------------------------------------
    def _refresh_index(self) -> None:
        if not self._dirty:
            return
        self._asns = sorted(self._info)
        self._index = {asn: i for i, asn in enumerate(self._asns)}
        self._dirty = False

    def index_of(self, asn: int) -> int:
        """Dense index of ``asn`` in [0, n)."""
        self._refresh_index()
        try:
            return self._index[asn]
        except KeyError as exc:
            raise TopologyError(f"unknown AS {asn}") from exc

    def asn_at(self, index: int) -> int:
        """Inverse of :meth:`index_of`."""
        self._refresh_index()
        return self._asns[index]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, weights)`` over dense indices, one entry per
        directed edge — the CSR ingredients for scipy routing."""
        self._refresh_index()
        rows: List[int] = []
        cols: List[int] = []
        weights: List[float] = []
        for a, nbrs in self._adjacency.items():
            ia = self._index[a]
            for b, latency in nbrs.items():
                rows.append(ia)
                cols.append(self._index[b])
                weights.append(latency)
        return (
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(weights, dtype=np.float64),
        )

    def intra_latency_array(self) -> np.ndarray:
        """Intra-AS latencies in dense-index order."""
        self._refresh_index()
        return np.asarray(
            [self._info[asn].intra_latency_ms for asn in self._asns], dtype=np.float64
        )

    def endnode_array(self) -> np.ndarray:
        """End-node counts in dense-index order."""
        self._refresh_index()
        return np.asarray(
            [self._info[asn].endnodes for asn in self._asns], dtype=np.float64
        )

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` (nodes keyed by ASN)."""
        import networkx as nx

        graph = nx.Graph()
        for asn, info in self._info.items():
            graph.add_node(
                asn,
                tier=int(info.tier),
                intra_latency_ms=info.intra_latency_ms,
                endnodes=info.endnodes,
            )
        for link in self.links():
            graph.add_edge(link.a, link.b, latency_ms=link.latency_ms)
        return graph

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        The simulation requires a connected graph (every AS must be able
        to reach every mapping host) with positive latencies.
        """
        if not self._info:
            raise TopologyError("topology is empty")
        # Connectivity via BFS from an arbitrary AS.
        start = next(iter(self._info))
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for asn in frontier:
                for nbr in self._adjacency[asn]:
                    if nbr not in seen:
                        seen.add(nbr)
                        nxt.append(nbr)
            frontier = nxt
        if len(seen) != len(self._info):
            missing = len(self._info) - len(seen)
            raise TopologyError(f"topology is disconnected ({missing} ASs unreachable)")
