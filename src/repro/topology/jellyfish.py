"""Jellyfish decomposition of a topology (§V-A).

The paper's analytical model describes the Internet as a Jellyfish
[Tauro et al., GLOBECOM'01]: a dense core clique (Shell-0) surrounded by
concentric shells, with degree-1 leaves hanging off each shell:

* ``root``   — the highest-degree node;
* ``core``   — a maximal clique containing the root (Shell-0);
* ``Shell-j`` — nodes of degree > 1 at BFS distance ``j`` from the core;
* ``Hang-j`` — degree-1 nodes at distance ``j + 1`` from the core;
* ``Layer(j) = Shell-j ∪ Hang-(j-1)`` for ``j ≥ 1``; ``Layer(0) = Shell-0``.

The layer ratios ``r_j = |Layer(j)| / n`` are the only topology input the
§V response-time bound consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

import numpy as np

from ..errors import TopologyError
from .graph import ASTopology


@dataclass
class JellyfishDecomposition:
    """The computed decomposition.

    Attributes
    ----------
    root:
        Highest-degree AS (ties broken by lowest ASN for determinism).
    core:
        Members of Shell-0 (a maximal clique containing ``root``).
    shells:
        ``shells[j]`` = Shell-j membership.
    hangs:
        ``hangs[j]`` = Hang-j membership (degree-1 nodes at distance j+1).
    layers:
        ``layers[j]`` = Layer(j) membership.
    """

    root: int
    core: List[int]
    shells: List[List[int]]
    hangs: List[List[int]]
    layers: List[List[int]]

    @property
    def n_layers(self) -> int:
        """N in the paper's notation — the number of non-empty layers."""
        return len(self.layers)

    def layer_ratios(self) -> np.ndarray:
        """``r_j = |Layer(j)| / n`` — input to the §V analytical model."""
        total = sum(len(layer) for layer in self.layers)
        return np.asarray([len(layer) / total for layer in self.layers], dtype=float)

    def layer_of(self) -> Dict[int, int]:
        """Mapping AS → layer index."""
        out: Dict[int, int] = {}
        for j, layer in enumerate(self.layers):
            for asn in layer:
                out[asn] = j
        return out


def _greedy_maximal_clique(
    adjacency: Dict[int, Set[int]], root: int
) -> List[int]:
    """Greedy maximal clique containing ``root``.

    Maximum clique is NP-hard; the paper only requires *a* maximal clique
    containing the highest-degree node, which greedy extension by
    descending degree provides deterministically.
    """
    clique = [root]
    members = {root}
    candidates = sorted(
        adjacency[root], key=lambda v: (-len(adjacency[v]), v)
    )
    for candidate in candidates:
        if members <= adjacency[candidate]:
            clique.append(candidate)
            members.add(candidate)
    return sorted(clique)


def decompose(topology: ASTopology) -> JellyfishDecomposition:
    """Compute the Jellyfish decomposition of ``topology``.

    Every AS lands in exactly one layer (the graph must be connected,
    which :meth:`ASTopology.validate` guarantees for generated instances).
    """
    asns = topology.asns()
    if not asns:
        raise TopologyError("cannot decompose an empty topology")

    adjacency: Dict[int, Set[int]] = {
        asn: set(topology.neighbors(asn)) for asn in asns
    }
    root = min(asns, key=lambda a: (-len(adjacency[a]), a))
    core = _greedy_maximal_clique(adjacency, root)
    core_set = set(core)

    # Multi-source BFS from the core: distance-to-core for every node.
    distance: Dict[int, int] = {asn: 0 for asn in core}
    frontier = list(core)
    level = 0
    while frontier:
        level += 1
        nxt: List[int] = []
        for asn in frontier:
            for nbr in adjacency[asn]:
                if nbr not in distance:
                    distance[nbr] = level
                    nxt.append(nbr)
        frontier = nxt

    unreachable = [asn for asn in asns if asn not in distance]
    if unreachable:
        raise TopologyError(
            f"{len(unreachable)} ASs unreachable from the core; "
            "Jellyfish decomposition requires a connected graph"
        )

    max_distance = max(distance.values())
    shells: List[List[int]] = [[] for _ in range(max_distance + 1)]
    hangs: List[List[int]] = [[] for _ in range(max_distance + 1)]
    for asn in asns:
        d = distance[asn]
        if len(adjacency[asn]) == 1 and d >= 1:
            # Hang-j holds degree-1 nodes at distance j + 1.
            hangs[d - 1].append(asn)
        else:
            shells[d].append(asn)

    n_layers = max_distance + 1
    # A final hang group at distance max+1 would extend the layer count.
    while len(hangs) < n_layers:
        hangs.append([])
    layers: List[List[int]] = [sorted(shells[0])]
    for j in range(1, n_layers + 1):
        shell_j = shells[j] if j < len(shells) else []
        hang_prev = hangs[j - 1] if j - 1 < len(hangs) else []
        layer = sorted(set(shell_j) | set(hang_prev))
        layers.append(layer)
    while layers and not layers[-1]:
        layers.pop()

    return JellyfishDecomposition(
        root=root,
        core=core,
        shells=[sorted(s) for s in shells],
        hangs=[sorted(h) for h in hangs[:n_layers]],
        layers=layers,
    )
