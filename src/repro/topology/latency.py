"""Latency models for inter-AS links and AS interiors.

The paper extracts inter-AS and intra-AS latency medians from DIMES
(§IV-B.1).  Offline, we synthesize latencies from a geographic embedding:

* **link latency** = propagation over the great-circle-like planar distance
  between the two ASs' positions, plus a per-hop floor (serialization,
  queueing, router processing);
* **intra-AS latency** is lognormal with median 3.5 ms — the value the
  paper substitutes for the ~6% of ASs whose DIMES data is missing — plus
  a small fraction of extreme outliers.  The outliers matter: the paper's
  response-time CDF has a long tail traced to "a few queries originating
  from those ASs with unusually long intra-AS response times" (e.g. AS
  23951 with >2.3 s one-way latency, §IV-B.2a).  Without them the tail of
  Fig. 4 cannot be reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError

#: Median intra-AS latency in the paper's DIMES dataset (ms, one-way).
PAPER_MEDIAN_INTRA_MS = 3.5


@dataclass(frozen=True)
class LatencyModel:
    """Parameters of the synthetic latency generator.

    Attributes
    ----------
    per_km_ms:
        Propagation delay per planar kilometre.  Light in fibre is
        ~5 µs/km; the default adds slack for non-great-circle paths.
    link_floor_ms:
        Per-link fixed cost (router processing, serialization).
    intra_median_ms, intra_sigma:
        Lognormal intra-AS latency: ``exp(N(ln(median), sigma))``.
    outlier_fraction:
        Fraction of (stub) ASs with pathological intra-AS latency.
    outlier_low_ms, outlier_high_ms:
        Log-uniform range of those outliers (one-way).
    """

    per_km_ms: float = 0.0032
    link_floor_ms: float = 0.4
    intra_median_ms: float = PAPER_MEDIAN_INTRA_MS
    intra_sigma: float = 1.15
    outlier_fraction: float = 0.004
    outlier_low_ms: float = 150.0
    outlier_high_ms: float = 2500.0

    def validate(self) -> None:
        if self.per_km_ms <= 0 or self.link_floor_ms < 0:
            raise ConfigurationError("propagation parameters must be positive")
        if self.intra_median_ms <= 0 or self.intra_sigma < 0:
            raise ConfigurationError("intra-AS latency parameters invalid")
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ConfigurationError("outlier_fraction must lie in [0, 1)")
        if not 0 < self.outlier_low_ms <= self.outlier_high_ms:
            raise ConfigurationError("outlier latency range invalid")

    def link_latency_ms(
        self, pos_a: Tuple[float, float], pos_b: Tuple[float, float]
    ) -> float:
        """One-way latency of a link between ASs at the two positions."""
        dx = pos_a[0] - pos_b[0]
        dy = pos_a[1] - pos_b[1]
        return self.link_floor_ms + self.per_km_ms * math.hypot(dx, dy)

    def intra_latencies_ms(
        self, count: int, rng: np.random.Generator, allow_outliers: bool = True
    ) -> np.ndarray:
        """Draw ``count`` intra-AS latencies (one-way, ms)."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        base = np.exp(
            rng.normal(math.log(self.intra_median_ms), self.intra_sigma, size=count)
        )
        if allow_outliers and self.outlier_fraction > 0 and count > 0:
            mask = rng.random(count) < self.outlier_fraction
            n_out = int(mask.sum())
            if n_out:
                log_low = math.log(self.outlier_low_ms)
                log_high = math.log(self.outlier_high_ms)
                base[mask] = np.exp(rng.uniform(log_low, log_high, size=n_out))
        return base


@dataclass(frozen=True)
class GeographyModel:
    """Planar world the ASs are embedded in.

    A ``width × height`` km rectangle roughly matching the land surface
    dimensions relevant to fibre routes.  Tier-1 backbones sit at
    well-separated sites; lower tiers cluster near their providers, giving
    the geographic locality that makes nearby ASs cheap to reach.
    """

    width_km: float = 18_000.0
    height_km: float = 9_000.0
    transit_spread_km: float = 1_500.0
    stub_spread_km: float = 500.0

    def validate(self) -> None:
        if self.width_km <= 0 or self.height_km <= 0:
            raise ConfigurationError("world dimensions must be positive")
        if self.transit_spread_km < 0 or self.stub_spread_km < 0:
            raise ConfigurationError("spreads must be non-negative")

    def random_site(self, rng: np.random.Generator) -> Tuple[float, float]:
        """Uniform position in the world rectangle."""
        return (
            float(rng.uniform(0.0, self.width_km)),
            float(rng.uniform(0.0, self.height_km)),
        )

    def near(
        self,
        anchor: Tuple[float, float],
        spread_km: float,
        rng: np.random.Generator,
    ) -> Tuple[float, float]:
        """Gaussian-perturbed position near ``anchor``, clamped to the world."""
        x = min(max(anchor[0] + rng.normal(0.0, spread_km), 0.0), self.width_km)
        y = min(max(anchor[1] + rng.normal(0.0, spread_km), 0.0), self.height_km)
        return (float(x), float(y))
