"""Shortest-path routing over the AS graph.

DMap reaches a hosting AS in a single *overlay* hop, but that hop rides on
the underlying inter-domain routes; the simulation therefore needs
source→destination network latencies and hop counts for ~26k ASs.  This
module wraps :func:`scipy.sparse.csgraph.dijkstra` with per-source caching:
a workload touches the same source ASs repeatedly (origins are weighted by
end-node population), so one Dijkstra run per distinct source amortizes to
near-zero.

End-to-end one-way latency follows the paper's DIMES-derived model
(§IV-B.1): half the intra-AS latency contribution at each end plus the
inter-AS path::

    one_way(s, t) = intra(s) + path(s, t) + intra(t)   for s != t
    one_way(s, s) = intra(s)

and the round-trip query time is twice that (the reply retraces the path,
§IV-B).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..errors import RoutingError
from .graph import ASTopology


class Router:
    """Latency/hop oracle over a frozen :class:`ASTopology`.

    Parameters
    ----------
    topology:
        The AS graph.  The router snapshots its structure at construction;
        rebuild the router after mutating the topology.
    cache_size:
        Number of per-source distance rows kept (LRU).  A row is
        ``8 bytes × n`` — 26k ASs ≈ 0.2 MB — so thousands of rows fit
        comfortably.
    """

    def __init__(self, topology: ASTopology, cache_size: int = 4096) -> None:
        if cache_size < 1:
            raise RoutingError("cache_size must be >= 1")
        self.topology = topology
        self.cache_size = cache_size
        self.n = len(topology)
        rows, cols, weights = topology.edge_arrays()
        self._matrix = csr_matrix(
            (weights, (rows, cols)), shape=(self.n, self.n)
        )
        # Hop counts are *unit* weights, independent of the latency dtype:
        # an explicit small-int matrix keeps every shortest-hop distance an
        # exact integer (scipy widens to float64 internally, where counts
        # up to 2**53 are exact).
        self._hop_matrix = csr_matrix(
            (np.ones(len(weights), dtype=np.int8), (rows, cols)),
            shape=(self.n, self.n),
        )
        self._intra = topology.intra_latency_array()
        # Dense asn -> index translation for vectorized queries: ASNs are
        # small positive integers, so a flat lookup vector replaces the
        # per-element ``index_of`` dict probes on the hot path.
        asns = np.asarray(topology.asns(), dtype=np.int64)
        size = int(asns.max()) + 1 if asns.size else 1
        self._asn_table = np.full(size, -1, dtype=np.int64)
        if asns.size:
            self._asn_table[asns] = np.arange(self.n, dtype=np.int64)
        self._latency_rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._hop_rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.dijkstra_runs = 0

    # ------------------------------------------------------------------
    # Cached distance rows
    # ------------------------------------------------------------------
    def _row(
        self,
        cache: "OrderedDict[int, np.ndarray]",
        matrix: csr_matrix,
        src_index: int,
    ) -> np.ndarray:
        row = cache.get(src_index)
        if row is not None:
            cache.move_to_end(src_index)
            return row
        # float32 halves the cache footprint; at 26k ASs a row is ~100 KB,
        # so thousands of distinct sources stay resident.
        row = dijkstra(matrix, directed=False, indices=src_index).astype(np.float32)
        self.dijkstra_runs += 1
        cache[src_index] = row
        if len(cache) > self.cache_size:
            cache.popitem(last=False)
        return row

    def latency_row(self, src_asn: int) -> np.ndarray:
        """Inter-AS path latency (ms) from ``src_asn`` to every AS, in
        dense-index order.  ``inf`` marks unreachable ASs."""
        idx = self.topology.index_of(src_asn)
        return self._row(self._latency_rows, self._matrix, idx)

    def hop_row(self, src_asn: int) -> np.ndarray:
        """AS-path hop counts from ``src_asn`` in dense-index order."""
        idx = self.topology.index_of(src_asn)
        return self._row(self._hop_rows, self._hop_matrix, idx)

    # ------------------------------------------------------------------
    # Scalar queries
    # ------------------------------------------------------------------
    def path_latency_ms(self, src_asn: int, dst_asn: int) -> float:
        """Inter-AS shortest-path latency (0 when src == dst)."""
        if src_asn == dst_asn:
            return 0.0
        value = float(self.latency_row(src_asn)[self.topology.index_of(dst_asn)])
        if not np.isfinite(value):
            raise RoutingError(f"AS {dst_asn} unreachable from AS {src_asn}")
        return value

    def hops(self, src_asn: int, dst_asn: int) -> int:
        """AS-path length in hops (0 when src == dst)."""
        if src_asn == dst_asn:
            return 0
        value = float(self.hop_row(src_asn)[self.topology.index_of(dst_asn)])
        if not np.isfinite(value):
            raise RoutingError(f"AS {dst_asn} unreachable from AS {src_asn}")
        return int(value)

    def one_way_ms(self, src_asn: int, dst_asn: int) -> float:
        """End-to-end one-way latency host-in-``src`` → server-in-``dst``."""
        src_idx = self.topology.index_of(src_asn)
        if src_asn == dst_asn:
            return float(self._intra[src_idx])
        dst_idx = self.topology.index_of(dst_asn)
        path = float(self.latency_row(src_asn)[dst_idx])
        if not np.isfinite(path):
            raise RoutingError(f"AS {dst_asn} unreachable from AS {src_asn}")
        return float(self._intra[src_idx]) + path + float(self._intra[dst_idx])

    def rtt_ms(self, src_asn: int, dst_asn: int) -> float:
        """Round-trip time of a query+response between the two ASs."""
        return 2.0 * self.one_way_ms(src_asn, dst_asn)

    # ------------------------------------------------------------------
    # Vectorized queries (replica selection over K candidates)
    # ------------------------------------------------------------------
    def indices_of(self, asns: np.ndarray) -> np.ndarray:
        """Dense indices of an ASN array (vectorized ``index_of``)."""
        arr = np.asarray(asns, dtype=np.int64)
        if arr.size and (
            arr.min() < 0 or arr.max() >= len(self._asn_table)
        ):
            raise RoutingError("unknown AS in destination array")
        idx = self._asn_table[arr]
        if arr.size and int(idx.min()) < 0:
            missing = arr[idx < 0].ravel()
            raise RoutingError(f"unknown AS {int(missing[0])}")
        return idx

    def one_way_to_many(self, src_asn: int, dst_asns: np.ndarray) -> np.ndarray:
        """One-way latencies from ``src_asn`` to an array of ASNs."""
        src_idx = self.topology.index_of(src_asn)
        row = self.latency_row(src_asn)
        dst_idx = self.indices_of(dst_asns)
        path = row[dst_idx]
        result = self._intra[src_idx] + path + self._intra[dst_idx]
        same = dst_idx == src_idx
        result[same] = self._intra[src_idx]
        return result

    @property
    def intra_array(self) -> np.ndarray:
        """Cached intra-AS latencies in dense-index order (read-only)."""
        return self._intra

    def rtt_to_many(
        self, src_asn: int, dst_asns: np.ndarray, strict: bool = True
    ) -> np.ndarray:
        """Round-trip times from ``src_asn`` to an array of ASNs.

        Bit-identical to looping :meth:`rtt_ms` over the array: the path
        term is widened to float64 before the same left-to-right latency
        sum, so the fastpath engine can assert exact equality against the
        scalar resolver.  Raises on unreachable destinations, like the
        scalar query; ``strict=False`` instead leaves ``inf`` in place for
        callers that only consume a reachable subset.
        """
        src_idx = self.topology.index_of(src_asn)
        dst_idx = self.indices_of(dst_asns)
        path = self.latency_row(src_asn)[dst_idx].astype(np.float64)
        one_way = self._intra[src_idx] + path + self._intra[dst_idx]
        same = dst_idx == src_idx
        one_way[same] = self._intra[src_idx]
        if strict and not np.all(np.isfinite(one_way)):
            bad = np.asarray(dst_asns, dtype=np.int64)[~np.isfinite(one_way)]
            raise RoutingError(
                f"AS {int(bad.ravel()[0])} unreachable from AS {src_asn}"
            )
        return 2.0 * one_way

    def closest_of(
        self, src_asn: int, dst_asns: np.ndarray, by: str = "latency"
    ) -> Tuple[int, float]:
        """Replica selection: the destination minimizing latency or hops.

        ``by="latency"`` models a querying node with response-time
        estimates; ``by="hops"`` models the least-hop-count fallback the
        paper notes is available from BGP today and "leads to similar
        results albeit with marginally increased latencies" (§IV-B.2a).

        Returns ``(chosen_asn, one_way_latency_ms_to_it)``.
        """
        dst = np.asarray(dst_asns, dtype=np.int64)
        if dst.size == 0:
            raise RoutingError("closest_of needs at least one destination")
        if by == "latency":
            lat = self.one_way_to_many(src_asn, dst)
            pick = int(np.argmin(lat))
            return int(dst[pick]), float(lat[pick])
        if by == "hops":
            row = self.hop_row(src_asn)
            idx = self.indices_of(dst)
            hops = row[idx].copy()
            hops[idx == self.topology.index_of(src_asn)] = 0
            pick = int(np.argmin(hops))
            chosen = int(dst[pick])
            return chosen, self.one_way_ms(src_asn, chosen)
        raise RoutingError(f"unknown selection criterion {by!r}")

    def cache_stats(self) -> Dict[str, int]:
        """Diagnostics: cached rows and total Dijkstra executions."""
        return {
            "latency_rows": len(self._latency_rows),
            "hop_rows": len(self._hop_rows),
            "dijkstra_runs": self.dijkstra_runs,
        }
