"""Differential cross-validation of the two DMap execution paths.

DESIGN.md §4 promises that :class:`~repro.core.resolver.DMapResolver`
(instant accounting) and :mod:`repro.sim` (true discrete-event replay)
execute the *identical* protocol.  This package makes that promise
checkable: it generates seeded randomized scenarios, replays the same
insert/update/churn/lookup trace through both engines (and, for LPM,
through all three prefix-match implementations), and reports structured
mismatch bundles with minimal reproducer seeds.

Run it as ``python -m repro.validation --scenarios 50 --seed 0``; the
tier-1 suite runs a small smoke set, CI a larger one on every push.
"""

from .differ import ScenarioDiff, diff_scenario
from .live import LiveComparison, run_live_check
from .report import Mismatch, ValidationReport
from .scenarios import Scenario, ScenarioAvailability, ScenarioConfig, generate_scenario

__all__ = [
    "LiveComparison",
    "Mismatch",
    "Scenario",
    "ScenarioAvailability",
    "ScenarioConfig",
    "ScenarioDiff",
    "ValidationReport",
    "diff_scenario",
    "generate_scenario",
    "run_live_check",
]
