"""CLI for the differential cross-validation harness.

Usage::

    python -m repro.validation --scenarios 50 --seed 0 [--json]

Exit status 0 when every scenario replays identically through the
analytic resolver and the discrete-event simulation (and all three LPM
implementations agree); 1 otherwise, with reproducer seeds printed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .differ import diff_scenario
from .report import ValidationReport
from .scenarios import generate_scenario


def build_report(
    scenarios: int, seed: int, verbose: bool = False, fastpath: bool = True
) -> ValidationReport:
    """Diff ``scenarios`` consecutive seeds starting at ``seed``."""
    report = ValidationReport()
    for offset in range(scenarios):
        diff = diff_scenario(generate_scenario(seed + offset), fastpath=fastpath)
        report.add_scenario(
            diff.config_line,
            diff.lookups,
            diff.writes,
            diff.lpm_checks,
            diff.mismatches,
            fastpath_lookups=diff.fastpath_lookups,
        )
        if verbose:
            status = "ok" if diff.clean else f"{len(diff.mismatches)} mismatches"
            print(f"  seed {diff.seed}: {status}", file=sys.stderr)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="Differential cross-validation of the DMap execution paths.",
    )
    parser.add_argument(
        "--scenarios", type=int, default=25, help="number of scenarios to replay"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="first scenario seed (consecutive)"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="per-scenario progress on stderr"
    )
    parser.add_argument(
        "--skip-fastpath",
        action="store_true",
        help="disable the fastpath-vs-resolver differential lane",
    )
    parser.add_argument(
        "--live",
        type=int,
        default=0,
        metavar="QUERIES",
        help="also run the live wire-vs-analytic lane over this many "
        "lookups on a booted loopback cluster (0 = skip)",
    )
    args = parser.parse_args(argv)
    if args.scenarios <= 0:
        parser.error("--scenarios must be positive")
    report = build_report(
        args.scenarios,
        args.seed,
        verbose=args.verbose,
        fastpath=not args.skip_fastpath,
    )
    live_comparison = None
    if args.live > 0:
        from .live import run_live_check

        live_comparison = run_live_check(seed=args.seed, queries=args.live)
    if args.json:
        payload = report.as_dict()
        if live_comparison is not None:
            payload["live"] = live_comparison.as_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
        if live_comparison is not None:
            print(live_comparison.render())
    clean = report.clean and (live_comparison is None or live_comparison.ok)
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
