"""Replay one scenario through both execution paths and diff everything.

The analytic path drives a :class:`~repro.core.resolver.DMapResolver`
(churn via :mod:`repro.core.consistency`); the event path drives a
:class:`~repro.sim.simulation.DMapSimulation`.  Both receive independent
copies of the scenario's prefix table, the *shared* read-only router, the
same availability oracle, and replica selectors seeded identically — so
every remaining difference in behaviour is a protocol divergence, not an
environment artifact.

Per-lookup outcomes are matched by issue time (unique per operation) and
compared field by field; RTTs are compared with a tolerance because the
DES accumulates the same latency terms in a different association order.
The final storage state, the two prefix tables, and a three-way LPM
sweep (trie / interval index / flat scan) complete the diff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bgp.interval_index import HOLE
from ..bgp.table import GlobalPrefixTable
from ..core.consistency import handle_new_announcement, prepare_withdrawal
from ..core.guid import GUID
from ..core.resolver import DMapResolver
from ..errors import LookupFailedError
from ..fastpath import FastpathEngine
from ..obs.trace import CollectingTracer, QueryTrace
from ..sim.simulation import DMapSimulation
from .report import (
    KIND_FASTPATH_ATTEMPTS,
    KIND_FASTPATH_RTT,
    KIND_FASTPATH_SERVED_BY,
    KIND_FASTPATH_SUCCESS,
    KIND_FASTPATH_USED_LOCAL,
    KIND_FASTPATH_WRITE_RTT,
    KIND_LOOKUP_ATTEMPTS,
    KIND_LOOKUP_LOST,
    KIND_LOOKUP_RTT,
    KIND_LOOKUP_SERVED_BY,
    KIND_LOOKUP_SUCCESS,
    KIND_LOOKUP_USED_LOCAL,
    KIND_LPM,
    KIND_STORAGE,
    KIND_TABLE,
    KIND_WRITE_RTT,
    Mismatch,
)
from .scenarios import (
    OP_ANNOUNCE,
    OP_INSERT,
    OP_LOOKUP,
    OP_UPDATE,
    OP_WITHDRAW,
    Scenario,
)

#: RTT comparison tolerance: the two paths sum identical float terms in
#: different orders, so exact equality is too strict but anything beyond
#: accumulation noise is a real divergence.
_REL_TOL = 1e-9
_ABS_TOL = 1e-6

#: Domain separation for the LPM probe-address stream.
_LPM_STREAM = 0x1B4D

#: Per-field mismatch kinds for the DES lane and the fastpath lane.
_SIM_LOOKUP_KINDS = {
    "success": KIND_LOOKUP_SUCCESS,
    "served_by": KIND_LOOKUP_SERVED_BY,
    "used_local": KIND_LOOKUP_USED_LOCAL,
    "attempts": KIND_LOOKUP_ATTEMPTS,
    "rtt_ms": KIND_LOOKUP_RTT,
}
_FASTPATH_LOOKUP_KINDS = {
    "success": KIND_FASTPATH_SUCCESS,
    "served_by": KIND_FASTPATH_SERVED_BY,
    "used_local": KIND_FASTPATH_USED_LOCAL,
    "attempts": KIND_FASTPATH_ATTEMPTS,
    "rtt_ms": KIND_FASTPATH_RTT,
}


@dataclass(frozen=True)
class LookupOutcome:
    """Normalized per-lookup observation from either path."""

    success: bool
    served_by: Optional[int]
    used_local: bool
    attempts: int
    rtt_ms: float


@dataclass
class PathResult:
    """Everything one execution path produced for the diff."""

    lookups: Dict[float, LookupOutcome]
    write_rtts: Dict[float, float]
    storage: Dict[int, frozenset]
    table: GlobalPrefixTable
    replica_addresses: Tuple[int, ...]
    #: Per-lookup traces keyed by issue time; attached to divergence
    #: reports so a mismatch arrives with both sides' full provenance.
    traces: Dict[float, QueryTrace] = field(default_factory=dict)


@dataclass
class ScenarioDiff:
    """Outcome of diffing one scenario."""

    seed: int
    config_line: str
    lookups: int
    writes: int
    lpm_checks: int
    mismatches: Tuple[Mismatch, ...]
    fastpath_lookups: int = 0

    @property
    def clean(self) -> bool:
        return not self.mismatches


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


def _storage_snapshot(stores: Dict[int, object]) -> Dict[int, frozenset]:
    """Per-AS content sets.  Versions/timestamps are excluded on purpose:
    the resolver derives versions from surviving copies while the DES
    uses a source-side counter, and the two legitimately differ."""
    snapshot: Dict[int, frozenset] = {}
    for asn in sorted(stores):
        store = stores[asn]
        content = frozenset(
            (entry.guid.value, entry.locators) for entry in store
        )
        if content:
            snapshot[asn] = content
    return snapshot


def run_analytic(scenario: Scenario) -> PathResult:
    """Replay the trace through the instant-accounting resolver."""
    table = scenario.fresh_table()
    config = scenario.config
    tracer = CollectingTracer()
    resolver = DMapResolver(
        table,
        scenario.router,
        selection_policy=config.selection_policy,
        local_replica=config.local_replica,
        timeout_ms=config.timeout_ms,
        selection_rng=np.random.default_rng(scenario.selector_seed),
        placer=scenario.make_placer(table),
        tracer=tracer,
    )
    availability = scenario.availability
    lookups: Dict[float, LookupOutcome] = {}
    write_rtts: Dict[float, float] = {}
    for op in scenario.trace:
        if op.kind == OP_INSERT:
            result = resolver.insert(
                GUID(op.guid_value), op.locators, op.asn, time=op.at
            )
            write_rtts[op.at] = result.rtt_ms
        elif op.kind == OP_UPDATE:
            result = resolver.update(
                GUID(op.guid_value), op.locators, op.asn, time=op.at
            )
            write_rtts[op.at] = result.rtt_ms
        elif op.kind == OP_WITHDRAW:
            prepare_withdrawal(resolver, op.prefix)
        elif op.kind == OP_ANNOUNCE:
            handle_new_announcement(resolver, op.announcement, eager=False)
        elif op.kind == OP_LOOKUP:
            try:
                found = resolver.lookup(
                    GUID(op.guid_value),
                    op.asn,
                    probe=availability.lookup_outcome,
                    is_down=availability.is_down,
                    time=op.at,
                )
                lookups[op.at] = LookupOutcome(
                    success=True,
                    served_by=found.served_by,
                    used_local=found.used_local,
                    attempts=len(found.attempts),
                    rtt_ms=found.rtt_ms,
                )
            except LookupFailedError as failure:
                lookups[op.at] = LookupOutcome(
                    success=False,
                    served_by=None,
                    used_local=False,
                    attempts=failure.attempts,
                    rtt_ms=failure.elapsed_ms,
                )
    replica_addresses: List[int] = []
    if config.placement == "address":
        for guid in sorted(resolver.replica_sets, key=lambda g: g.value):
            for res in resolver.replica_sets[guid].global_replicas:
                replica_addresses.append(int(res.address))
    return PathResult(
        lookups=lookups,
        write_rtts=write_rtts,
        storage=_storage_snapshot(resolver.stores),
        table=table,
        replica_addresses=tuple(replica_addresses),
        traces={trace.issued_at: trace for trace in tracer.traces},
    )


def run_simulation(scenario: Scenario) -> PathResult:
    """Replay the trace through the discrete-event simulation."""
    table = scenario.fresh_table()
    config = scenario.config
    tracer = CollectingTracer()
    sim = DMapSimulation(
        scenario.topology,
        table,
        selection_policy=config.selection_policy,
        local_replica=config.local_replica,
        timeout_ms=config.timeout_ms,
        failure_model=scenario.availability,
        router=scenario.router,
        seed=scenario.selector_seed,
        placer=scenario.make_placer(table),
        tracer=tracer,
    )
    for op in scenario.trace:
        if op.kind == OP_INSERT:
            sim.schedule_insert(GUID(op.guid_value), op.locators, op.asn, at=op.at)
        elif op.kind == OP_UPDATE:
            sim.schedule_update(GUID(op.guid_value), op.locators, op.asn, at=op.at)
        elif op.kind == OP_WITHDRAW:
            sim.schedule_withdrawal(op.prefix, at=op.at)
        elif op.kind == OP_ANNOUNCE:
            sim.schedule_announcement(op.announcement, at=op.at)
        elif op.kind == OP_LOOKUP:
            sim.schedule_lookup(GUID(op.guid_value), op.asn, at=op.at)
    sim.run()

    lookups: Dict[float, LookupOutcome] = {}
    for record in sim.metrics.records + sim.metrics.failed:
        lookups[record.issued_at] = LookupOutcome(
            success=record.success,
            served_by=record.served_by,
            used_local=record.used_local,
            attempts=record.attempts,
            rtt_ms=record.rtt_ms,
        )
    write_rtts = {
        record.issued_at: record.rtt_ms for record in sim.insert_records
    }
    stores = {asn: node.store for asn, node in sim.nodes.items()}
    return PathResult(
        lookups=lookups,
        write_rtts=write_rtts,
        storage=_storage_snapshot(stores),
        table=table,
        replica_addresses=(),
        traces={trace.issued_at: trace for trace in tracer.traces},
    )


def _table_signature(table: GlobalPrefixTable) -> Tuple[Tuple[int, int, int], ...]:
    return tuple(
        sorted(
            (ann.prefix.base, ann.prefix.length, ann.asn) for ann in iter(table)
        )
    )


def _flat_scan_lpm(
    bases: np.ndarray,
    lengths: np.ndarray,
    owners: np.ndarray,
    bits: int,
    address: int,
) -> int:
    """Third, independent LPM: flat scan for the longest containing prefix."""
    shifts = (bits - lengths).astype(np.uint64)
    match = ((bases ^ np.uint64(address)) >> shifts) == 0
    if not bool(match.any()):
        return HOLE
    matched_lengths = np.where(match, lengths, -1)
    return int(owners[int(matched_lengths.argmax())])


def _lpm_probes(scenario: Scenario, analytic: PathResult) -> List[int]:
    """Probe addresses: every replica address, the boundaries of every
    churned prefix, plus a seeded uniform sample."""
    bits = analytic.table.bits
    space = 1 << bits
    probes = set(analytic.replica_addresses)
    for op in scenario.trace:
        prefix = None
        if op.kind == OP_WITHDRAW:
            prefix = op.prefix
        elif op.kind == OP_ANNOUNCE:
            prefix = op.announcement.prefix
        if prefix is not None:
            for address in (
                prefix.base - 1,
                prefix.base,
                prefix.last,
                prefix.last + 1,
            ):
                if 0 <= address < space:
                    probes.add(address)
    rng = np.random.default_rng(
        np.random.SeedSequence((_LPM_STREAM, scenario.config.seed))
    )
    probes.update(int(v) for v in rng.integers(0, space, size=128))
    return sorted(probes)


def _diff_lpm(scenario: Scenario, analytic: PathResult) -> Tuple[List[Mismatch], int]:
    """Three-way LPM agreement on the final analytic table."""
    table = analytic.table
    announcements = list(table)
    if not announcements:
        return [], 0
    seed = scenario.config.seed
    index = table.build_interval_index()
    bases = np.array([ann.prefix.base for ann in announcements], dtype=np.uint64)
    lengths = np.array([ann.prefix.length for ann in announcements], dtype=np.int64)
    owners = np.array([ann.asn for ann in announcements], dtype=np.int64)
    mismatches: List[Mismatch] = []
    probes = _lpm_probes(scenario, analytic)
    for address in probes:
        ann = table.resolve(address)
        via_trie = HOLE if ann is None else ann.asn
        via_index = index.lookup_one(address)
        via_scan = _flat_scan_lpm(bases, lengths, owners, table.bits, address)
        if not (via_trie == via_index == via_scan):
            mismatches.append(
                Mismatch(
                    seed,
                    KIND_LPM,
                    subject=f"address={address:#x}",
                    analytic=f"trie={via_trie}",
                    simulated=f"interval={via_index} scan={via_scan}",
                )
            )
            if len(mismatches) >= 8:
                break
    return mismatches, len(probes)


def _entry_repr(item: Tuple[int, tuple]) -> str:
    guid_value, locators = item
    rendered = ",".join(str(loc) for loc in locators)
    return f"{guid_value:#x}@[{rendered}]"


def _diff_storage(
    seed: int, analytic: PathResult, simulated: PathResult
) -> List[Mismatch]:
    mismatches: List[Mismatch] = []
    for asn in sorted(set(analytic.storage) | set(simulated.storage)):
        ours = analytic.storage.get(asn, frozenset())
        theirs = simulated.storage.get(asn, frozenset())
        if ours == theirs:
            continue
        only_analytic = sorted(ours - theirs)
        only_sim = sorted(theirs - ours)
        mismatches.append(
            Mismatch(
                seed,
                KIND_STORAGE,
                subject=f"as={asn}",
                analytic=";".join(_entry_repr(e) for e in only_analytic) or "-",
                simulated=";".join(_entry_repr(e) for e in only_sim) or "-",
                detail=f"{len(ours)} vs {len(theirs)} entries",
            )
        )
        if len(mismatches) >= 8:
            break
    return mismatches


def _trace_pair(
    ours: Optional[QueryTrace], theirs: Optional[QueryTrace]
) -> str:
    """Both sides' compact provenance, for a divergence bundle's detail."""
    if ours is None and theirs is None:
        return ""
    left = ours.compact() if ours is not None else "-"
    right = theirs.compact() if theirs is not None else "-"
    return f"ours[{left}] theirs[{right}]"


def _diff_lookup(
    seed: int,
    subject: str,
    ours: LookupOutcome,
    theirs: LookupOutcome,
    kinds: Dict[str, str] = _SIM_LOOKUP_KINDS,
    trace_detail: str = "",
) -> List[Mismatch]:
    mismatches: List[Mismatch] = []
    if ours.success != theirs.success:
        mismatches.append(
            Mismatch(
                seed,
                kinds["success"],
                subject,
                str(ours.success),
                str(theirs.success),
                detail=trace_detail,
            )
        )
        return mismatches  # dependent fields are meaningless on disagreement
    if ours.served_by != theirs.served_by:
        mismatches.append(
            Mismatch(
                seed,
                kinds["served_by"],
                subject,
                str(ours.served_by),
                str(theirs.served_by),
                detail=trace_detail,
            )
        )
    if ours.used_local != theirs.used_local:
        mismatches.append(
            Mismatch(
                seed,
                kinds["used_local"],
                subject,
                str(ours.used_local),
                str(theirs.used_local),
                detail=trace_detail,
            )
        )
    if ours.attempts != theirs.attempts:
        mismatches.append(
            Mismatch(
                seed,
                kinds["attempts"],
                subject,
                str(ours.attempts),
                str(theirs.attempts),
                detail=trace_detail,
            )
        )
    if not _close(ours.rtt_ms, theirs.rtt_ms):
        mismatches.append(
            Mismatch(
                seed,
                kinds["rtt_ms"],
                subject,
                f"{ours.rtt_ms:.6f}",
                f"{theirs.rtt_ms:.6f}",
                detail=trace_detail,
            )
        )
    return mismatches


def fastpath_supported(scenario: Scenario) -> bool:
    """Whether the batched engine can replay this scenario exactly.

    The fastpath lane models the *converged, table-frozen* regime: BGP
    churn mutates the prefix table mid-trace, and the ``"random"``
    selection policy consumes a sequential per-lookup RNG stream —
    both need the scalar oracle.
    """
    config = scenario.config
    return not config.with_churn and config.selection_policy in ("latency", "hops")


def run_fastpath(
    scenario: Scenario,
) -> Tuple[
    Dict[float, LookupOutcome], Dict[float, float], Dict[float, QueryTrace]
]:
    """Replay a (no-churn) trace through the batched fastpath engine.

    Returns per-lookup outcomes, per-write RTTs, and per-lookup traces
    keyed by issue time, shaped exactly like the analytic
    :class:`PathResult` fields so the same comparison code applies.
    """
    table = scenario.fresh_table()
    config = scenario.config
    tracer = CollectingTracer()
    engine = FastpathEngine(
        table,
        scenario.router,
        selection_policy=config.selection_policy,
        local_replica=config.local_replica,
        timeout_ms=config.timeout_ms,
        placer=scenario.make_placer(table),
        tracer=tracer,
    )
    write_order: Dict[int, int] = {}
    local_asn: Dict[int, int] = {}
    write_ops: List = []
    lookup_ops: List = []
    for op in scenario.trace:
        if op.kind in (OP_INSERT, OP_UPDATE):
            write_order.setdefault(op.guid_value, len(write_order))
            local_asn[op.guid_value] = op.asn
            write_ops.append(op)
        elif op.kind == OP_LOOKUP:
            lookup_ops.append(op)
    batch = engine.index_guids(
        [GUID(value) for value in write_order],
        [local_asn[value] for value in write_order],
    )
    w_rtts = engine.write_rtts(
        batch,
        np.asarray([write_order[op.guid_value] for op in write_ops], dtype=np.int64),
        np.asarray([op.asn for op in write_ops], dtype=np.int64),
    )
    write_rtts = {op.at: float(rtt) for op, rtt in zip(write_ops, w_rtts)}
    lookups: Dict[float, LookupOutcome] = {}
    if lookup_ops:
        result = engine.lookup_batch(
            batch,
            np.asarray(
                [write_order[op.guid_value] for op in lookup_ops], dtype=np.int64
            ),
            np.asarray([op.asn for op in lookup_ops], dtype=np.int64),
            availability=scenario.availability,
            issued_at=np.asarray([op.at for op in lookup_ops], dtype=np.float64),
        )
        for i, op in enumerate(lookup_ops):
            success = bool(result.success[i])
            lookups[op.at] = LookupOutcome(
                success=success,
                served_by=int(result.served_by[i]) if success else None,
                used_local=bool(result.used_local[i]),
                attempts=int(result.attempts[i]),
                rtt_ms=float(result.rtt_ms[i]),
            )
    return (
        lookups,
        write_rtts,
        {trace.issued_at: trace for trace in tracer.traces},
    )


def _diff_fastpath(
    scenario: Scenario, analytic: PathResult, ops_by_time: Dict[float, object]
) -> Tuple[List[Mismatch], int]:
    """Fastpath lane: batched engine vs the analytic oracle."""
    seed = scenario.config.seed
    fp_lookups, fp_writes, fp_traces = run_fastpath(scenario)
    mismatches: List[Mismatch] = []
    for at in sorted(analytic.lookups):
        op = ops_by_time[at]
        subject = f"guid={op.guid_value:#x} querier={op.asn} t={at:g}"
        ours = analytic.lookups[at]
        theirs = fp_lookups.get(at)
        if theirs is None:
            mismatches.append(
                Mismatch(
                    seed,
                    KIND_FASTPATH_SUCCESS,
                    subject,
                    analytic=f"success={ours.success}",
                    simulated="no record (lookup missing from batch)",
                    detail=_trace_pair(analytic.traces.get(at), None),
                )
            )
            continue
        mismatches.extend(
            _diff_lookup(
                seed,
                subject,
                ours,
                theirs,
                kinds=_FASTPATH_LOOKUP_KINDS,
                trace_detail=_trace_pair(
                    analytic.traces.get(at), fp_traces.get(at)
                ),
            )
        )
    for at in sorted(analytic.write_rtts):
        op = ops_by_time[at]
        subject = f"guid={op.guid_value:#x} source={op.asn} t={at:g}"
        ours_rtt = analytic.write_rtts[at]
        theirs_rtt = fp_writes.get(at)
        if theirs_rtt is None or not _close(ours_rtt, theirs_rtt):
            mismatches.append(
                Mismatch(
                    seed,
                    KIND_FASTPATH_WRITE_RTT,
                    subject,
                    f"{ours_rtt:.6f}",
                    "no record" if theirs_rtt is None else f"{theirs_rtt:.6f}",
                )
            )
    return mismatches, len(fp_lookups)


def diff_scenario(scenario: Scenario, fastpath: bool = True) -> ScenarioDiff:
    """Run both paths on ``scenario`` and return the structured diff.

    ``fastpath`` additionally replays supported scenarios (no churn,
    deterministic selection policy) through the batched engine and diffs
    it against the analytic resolver — three-way validation.
    """
    seed = scenario.config.seed
    analytic = run_analytic(scenario)
    simulated = run_simulation(scenario)
    mismatches: List[Mismatch] = []

    ops_by_time = {op.at: op for op in scenario.trace}
    for at in sorted(analytic.lookups):
        op = ops_by_time[at]
        subject = f"guid={op.guid_value:#x} querier={op.asn} t={at:g}"
        ours = analytic.lookups[at]
        theirs = simulated.lookups.get(at)
        if theirs is None:
            mismatches.append(
                Mismatch(
                    seed,
                    KIND_LOOKUP_LOST,
                    subject,
                    analytic=(
                        f"success={ours.success} rtt={ours.rtt_ms:.3f} "
                        f"attempts={ours.attempts}"
                    ),
                    simulated="no record (lookup never completed)",
                    detail=_trace_pair(analytic.traces.get(at), None),
                )
            )
            continue
        mismatches.extend(
            _diff_lookup(
                seed,
                subject,
                ours,
                theirs,
                trace_detail=_trace_pair(
                    analytic.traces.get(at), simulated.traces.get(at)
                ),
            )
        )

    for at in sorted(analytic.write_rtts):
        op = ops_by_time[at]
        subject = f"guid={op.guid_value:#x} source={op.asn} t={at:g}"
        ours_rtt = analytic.write_rtts[at]
        theirs_rtt = simulated.write_rtts.get(at)
        if theirs_rtt is None:
            mismatches.append(
                Mismatch(
                    seed,
                    KIND_WRITE_RTT,
                    subject,
                    f"{ours_rtt:.6f}",
                    "no record (write never completed)",
                )
            )
        elif not _close(ours_rtt, theirs_rtt):
            mismatches.append(
                Mismatch(
                    seed, KIND_WRITE_RTT, subject, f"{ours_rtt:.6f}", f"{theirs_rtt:.6f}"
                )
            )

    if _table_signature(analytic.table) != _table_signature(simulated.table):
        mismatches.append(
            Mismatch(
                seed,
                KIND_TABLE,
                subject="prefix-table",
                analytic=f"{len(analytic.table)} announcements",
                simulated=f"{len(simulated.table)} announcements",
                detail="tables diverged under the identical churn schedule",
            )
        )

    mismatches.extend(_diff_storage(seed, analytic, simulated))
    lpm_mismatches, lpm_checks = _diff_lpm(scenario, analytic)
    mismatches.extend(lpm_mismatches)

    fastpath_lookups = 0
    if fastpath and fastpath_supported(scenario):
        fastpath_mismatches, fastpath_lookups = _diff_fastpath(
            scenario, analytic, ops_by_time
        )
        mismatches.extend(fastpath_mismatches)

    return ScenarioDiff(
        seed=seed,
        config_line=scenario.config.describe(),
        lookups=scenario.n_lookup_ops,
        writes=scenario.n_write_ops,
        lpm_checks=lpm_checks,
        mismatches=tuple(mismatches),
        fastpath_lookups=fastpath_lookups,
    )
