"""The live lane: wire-measured RTTs vs. the analytic resolver.

The differential lanes in :mod:`repro.validation.differ` cross-check the
three *offline* engines against each other.  This lane closes the last
gap: it boots a real :class:`~repro.net.cluster.LocalCluster` (asyncio
datagram servers, shaped loopback wire) and replays workload lookups
through a live :class:`~repro.net.client.DMapClient`, comparing every
wire-measured latency against the analytic
:class:`~repro.core.resolver.DMapResolver` prediction on identical
seeds and identical stores.

With no packet loss the client's K-parallel race resolves to the same
replica the analytic best-first walk charges for, so the two
distributions must agree up to event-loop scheduling noise; the check
asserts the median of per-query live/analytic ratios stays within a
pinned tolerance and that success stays ≥ ``min_success_rate``.
"""

from __future__ import annotations

import asyncio
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.client import ClientConfig
from ..net.cluster import ClusterConfig, LocalCluster

#: Pinned acceptance bounds: the selftest, the tests, and CI's net-smoke
#: job all assert against these same numbers.
DEFAULT_TOLERANCE = 0.25
DEFAULT_MIN_SUCCESS_RATE = 0.99


@dataclass(frozen=True)
class LiveComparison:
    """Outcome of one live-vs-analytic run.

    ``median_ratio`` is the median over queries of
    ``live_rtt / analytic_rtt`` — robust to a few scheduler-delayed
    outliers, 1.0 under perfect shaping.
    """

    queries: int
    successes: int
    failures: int
    n_nodes: int
    tolerance: float
    min_success_rate: float
    median_live_ms: float
    median_analytic_ms: float
    median_ratio: float
    ratios: Tuple[float, ...] = field(repr=False, default=())

    @property
    def success_rate(self) -> float:
        return self.successes / self.queries if self.queries else 0.0

    @property
    def within_tolerance(self) -> bool:
        return abs(self.median_ratio - 1.0) <= self.tolerance

    @property
    def ok(self) -> bool:
        return self.within_tolerance and self.success_rate >= self.min_success_rate

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "successes": self.successes,
            "failures": self.failures,
            "success_rate": self.success_rate,
            "n_nodes": self.n_nodes,
            "median_live_ms": self.median_live_ms,
            "median_analytic_ms": self.median_analytic_ms,
            "median_ratio": self.median_ratio,
            "tolerance": self.tolerance,
            "min_success_rate": self.min_success_rate,
            "ok": self.ok,
        }

    def render(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        return (
            f"live lane [{verdict}]: {self.successes}/{self.queries} lookups ok "
            f"({100.0 * self.success_rate:.2f}%) across {self.n_nodes} nodes | "
            f"median live {self.median_live_ms:.1f} ms vs analytic "
            f"{self.median_analytic_ms:.1f} ms (ratio {self.median_ratio:.3f}, "
            f"tolerance ±{self.tolerance:.2f})"
        )


async def _run_queries(
    cluster: LocalCluster, queries: int, client_config: Optional[ClientConfig]
) -> Tuple[List[Optional[float]], List[float]]:
    """Sequentially replay ``queries`` servable lookups on the wire.

    Returns per-query live RTTs (``None`` where the lookup failed) and
    the matching analytic predictions.  Sequential issue keeps each
    measurement free of cross-query event-loop contention.
    """
    from ..errors import DMapError

    await cluster.start()
    client = cluster.client(config=client_config)
    await client.start()
    live: List[Optional[float]] = []
    analytic: List[float] = []
    try:
        stream = cluster.lookup_stream()
        for i in range(queries):
            lookup = stream[i % len(stream)]
            analytic.append(cluster.analytic_rtt_ms(lookup.guid, lookup.source_asn))
            try:
                result = await client.lookup(lookup.guid, lookup.source_asn)
                live.append(result.rtt_ms)
            except DMapError:
                live.append(None)
    finally:
        client.close()
        await cluster.stop()
    return live, analytic


def run_live_check(
    seed: int = 0,
    queries: int = 200,
    scale: str = "small",
    max_nodes: int = 25,
    n_guids: int = 150,
    k: int = 5,
    loss_rate: float = 0.0,
    time_scale: Optional[float] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    min_success_rate: float = DEFAULT_MIN_SUCCESS_RATE,
    client_config: Optional[ClientConfig] = None,
    cluster: Optional[LocalCluster] = None,
) -> LiveComparison:
    """Boot a seeded cluster, replay lookups, compare against analytic.

    A pre-built ``cluster`` can be passed (tests reuse one across
    checks); otherwise one is built from the arguments.  The cluster is
    started and stopped inside a private event loop, so this function is
    callable from synchronous CLI / pytest code.
    """
    if cluster is None:
        kwargs = dict(
            scale=scale,
            seed=seed,
            k=k,
            max_nodes=max_nodes,
            n_guids=n_guids,
            n_lookups=max(queries, 1) * 2,
            loss_rate=loss_rate,
        )
        if time_scale is not None:
            kwargs["time_scale"] = time_scale
        cluster = LocalCluster.build(ClusterConfig(**kwargs))
    live, analytic = asyncio.run(_run_queries(cluster, queries, client_config))

    ratios = [
        measured / predicted
        for measured, predicted in zip(live, analytic)
        if measured is not None and predicted > 0.0
    ]
    successes = sum(1 for measured in live if measured is not None)
    measured_ok = [m for m in live if m is not None]
    return LiveComparison(
        queries=len(live),
        successes=successes,
        failures=len(live) - successes,
        n_nodes=len(cluster.node_asns),
        tolerance=tolerance,
        min_success_rate=min_success_rate,
        median_live_ms=statistics.median(measured_ok) if measured_ok else 0.0,
        median_analytic_ms=statistics.median(analytic) if analytic else 0.0,
        median_ratio=statistics.median(ratios) if ratios else 0.0,
        ratios=tuple(ratios),
    )
