"""Structured mismatch bundles and human/JSON reporting.

Every discrepancy the differ finds becomes a :class:`Mismatch` carrying
the scenario seed, a stable ``kind`` tag, and the two observed values.
The aggregate :class:`ValidationReport` groups them by kind, lists the
reproducer seeds, and renders both a terminal summary and a JSON dict
(for CI artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Mismatch kind tags (stable identifiers; tests and CI grep for these).
KIND_LOOKUP_LOST = "lookup.lost"
KIND_LOOKUP_SUCCESS = "lookup.success"
KIND_LOOKUP_SERVED_BY = "lookup.served_by"
KIND_LOOKUP_USED_LOCAL = "lookup.used_local"
KIND_LOOKUP_ATTEMPTS = "lookup.attempts"
KIND_LOOKUP_RTT = "lookup.rtt"
KIND_WRITE_RTT = "write.rtt"
KIND_STORAGE = "storage"
KIND_TABLE = "table"
KIND_LPM = "lpm"
#: Fastpath-lane kinds: the batched engine diffed against the analytic
#: resolver (its oracle) on the same scenario.
KIND_FASTPATH_SUCCESS = "fastpath.success"
KIND_FASTPATH_SERVED_BY = "fastpath.served_by"
KIND_FASTPATH_USED_LOCAL = "fastpath.used_local"
KIND_FASTPATH_ATTEMPTS = "fastpath.attempts"
KIND_FASTPATH_RTT = "fastpath.rtt"
KIND_FASTPATH_WRITE_RTT = "fastpath.write_rtt"


@dataclass(frozen=True)
class Mismatch:
    """One observed divergence between the two execution paths.

    Attributes
    ----------
    seed:
        Scenario seed that reproduces the divergence
        (``python -m repro.validation --scenarios 1 --seed <seed>``).
    kind:
        Stable tag from the ``KIND_*`` constants above.
    subject:
        What diverged — a GUID/querier pair, an AS, an address.
    analytic / simulated:
        The two observed values, rendered as strings.
    detail:
        Free-form context (attempt sequences, storage diffs, ...).
    """

    seed: int
    kind: str
    subject: str
    analytic: str
    simulated: str
    detail: str = ""

    def render(self) -> str:
        """One-line human rendering."""
        line = (
            f"[seed {self.seed}] {self.kind} {self.subject}: "
            f"analytic={self.analytic} simulated={self.simulated}"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass
class ValidationReport:
    """Aggregate over all diffed scenarios."""

    scenarios: int = 0
    lookups: int = 0
    writes: int = 0
    lpm_checks: int = 0
    fastpath_lookups: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)

    def add_scenario(
        self,
        config_line: str,
        lookups: int,
        writes: int,
        lpm_checks: int,
        mismatches: Tuple[Mismatch, ...],
        fastpath_lookups: int = 0,
    ) -> None:
        """Fold one scenario's diff into the aggregate."""
        self.scenarios += 1
        self.lookups += lookups
        self.writes += writes
        self.lpm_checks += lpm_checks
        self.fastpath_lookups += fastpath_lookups
        self.mismatches.extend(mismatches)
        if mismatches:
            self.configs.append(config_line)

    @property
    def clean(self) -> bool:
        """Whether every scenario replayed identically on both paths."""
        return not self.mismatches

    def by_kind(self) -> Dict[str, List[Mismatch]]:
        """Mismatches grouped by kind, insertion order preserved."""
        grouped: Dict[str, List[Mismatch]] = {}
        for mismatch in self.mismatches:
            grouped.setdefault(mismatch.kind, []).append(mismatch)
        return grouped

    def reproducer_seeds(self) -> List[int]:
        """Sorted seeds of every scenario with at least one mismatch."""
        return sorted({m.seed for m in self.mismatches})

    def render(self, max_lines: int = 40) -> str:
        """Terminal summary: headline, per-kind counts, sample lines."""
        seeds = self.reproducer_seeds()
        lines = [
            f"repro.validation: {self.scenarios} scenarios, "
            f"{self.lookups} lookups, {self.writes} writes, "
            f"{self.lpm_checks} LPM probes, "
            f"{self.fastpath_lookups} fastpath lookups — "
            + (
                "all paths agree"
                if self.clean
                else f"{len(self.mismatches)} mismatches in "
                f"{len(seeds)} scenario(s)"
            )
        ]
        if self.clean:
            return "\n".join(lines)
        for kind, group in sorted(self.by_kind().items()):
            kind_seeds = sorted({m.seed for m in group})
            shown = ", ".join(str(s) for s in kind_seeds[:8])
            if len(kind_seeds) > 8:
                shown += ", ..."
            lines.append(f"  {kind:<20} {len(group):>4}  (seeds: {shown})")
        lines.append(
            "Reproduce: python -m repro.validation --scenarios 1 --seed "
            + str(seeds[0])
        )
        for config_line in self.configs[:5]:
            lines.append(f"  config: {config_line}")
        for mismatch in self.mismatches[:max_lines]:
            lines.append("  " + mismatch.render())
        if len(self.mismatches) > max_lines:
            lines.append(f"  ... {len(self.mismatches) - max_lines} more")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (CI artifact)."""
        return {
            "scenarios": self.scenarios,
            "lookups": self.lookups,
            "writes": self.writes,
            "lpm_checks": self.lpm_checks,
            "fastpath_lookups": self.fastpath_lookups,
            "clean": self.clean,
            "reproducer_seeds": self.reproducer_seeds(),
            "mismatches": [
                {
                    "seed": m.seed,
                    "kind": m.kind,
                    "subject": m.subject,
                    "analytic": m.analytic,
                    "simulated": m.simulated,
                    "detail": m.detail,
                }
                for m in self.mismatches
            ],
        }
