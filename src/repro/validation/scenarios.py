"""Seeded randomized scenario generation for differential testing.

A *scenario* is everything both execution paths need to replay the same
experiment: a topology + router substrate, a synthetic BGP table, a
deterministic availability model, and a timed insert / update / churn /
lookup trace.  One integer seed fully determines all of it, so any
mismatch the differ finds is reproducible from that seed alone.

Two determinism rules shape the design:

* **Availability is a pure function of (asn, guid).**  The DES probes a
  replica once per contact while the analytic resolver evaluates the
  whole attempt sequence up front, so i.i.d. per-attempt draws (as in
  :class:`~repro.sim.failures.ChurnFailureModel`) would desynchronize
  the two paths by construction.  :class:`ScenarioAvailability` instead
  derives every outcome from a salted SHA-256 of the (asn, guid) pair.
* **Downness comes in two tiers.**  A ``lossy`` AS times out on global
  lookups but still accepts writes and migrations (a mapping-service
  brown-out); a ``dead`` AS drops every request.  Dead ASs are restricted
  to non-hosting, non-home ASs — a dead *host* would swallow INSERTs and
  stall the write path in the DES, which the instant-mode resolver cannot
  model — and are disabled in churn scenarios, where a MIGRATE to a dead
  AS would silently diverge from the resolver's instant migration.

Trace phases are spaced far apart (100 s of virtual time) so every
operation quiesces in the DES before the next one starts; within the
lookup phase each query gets its own timestamp, which doubles as the
match key between the two paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..bgp.allocation import AllocationConfig, generate_global_prefix_table
from ..bgp.prefix import Announcement, Prefix
from ..bgp.table import GlobalPrefixTable
from ..core.guid import GUID, NetworkAddress
from ..core.resolver import OUTCOME_HIT, OUTCOME_MISSING, OUTCOME_TIMEOUT
from ..hashing.asnum_placer import ASNumberPlacer
from ..hashing.hashers import Sha256Hasher
from ..hashing.rehash import GuidPlacer
from ..sim.failures import FailureModel
from ..topology.generator import generate_internet_topology, small_scale_config
from ..topology.graph import ASTopology
from ..topology.routing import Router

#: Trace operation kinds.
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_WITHDRAW = "withdraw"
OP_ANNOUNCE = "announce"
OP_LOOKUP = "lookup"

#: Domain-separation constant mixed into every scenario seed.
_SCENARIO_STREAM = 0xD1FF


@dataclass(frozen=True)
class TraceOp:
    """One timed operation, replayed identically through both paths.

    ``at`` is the virtual issue time in ms; it is unique per operation
    and serves as the correlation key between the analytic replay and
    the DES records.
    """

    kind: str
    at: float
    guid_value: Optional[int] = None
    asn: Optional[int] = None
    locators: Tuple[NetworkAddress, ...] = ()
    prefix: Optional[Prefix] = None
    announcement: Optional[Announcement] = None


@dataclass(frozen=True)
class ScenarioConfig:
    """The randomized dimensions drawn for one scenario."""

    seed: int
    n_as: int
    topo_seed: int
    prefixes_per_as: float
    target_ratio: float
    k: int
    placement: str  # "address" (Algorithm 1) or "asnum" (§VII variant)
    selection_policy: str
    local_replica: bool
    timeout_ms: float
    stale_rate: float
    lossy_fraction: float
    with_churn: bool
    n_guids: int
    n_moves: int
    n_lookups: int
    n_dead: int

    def describe(self) -> str:
        """One-line rendering for reports."""
        return (
            f"seed={self.seed} n_as={self.n_as} k={self.k} "
            f"placement={self.placement} policy={self.selection_policy} "
            f"local={self.local_replica} timeout={self.timeout_ms:g}ms "
            f"stale={self.stale_rate:g} lossy={self.lossy_fraction:g} "
            f"churn={self.with_churn} guids={self.n_guids} "
            f"moves={self.n_moves} lookups={self.n_lookups} dead={self.n_dead}"
        )


class ScenarioAvailability(FailureModel):
    """Deterministic per-(asn, guid) availability shared by both paths.

    * ``lossy`` ASs: every global lookup times out; writes and local
      reads succeed (``is_down`` stays ``False`` so INSERT/MIGRATE land).
    * ``dead`` ASs: the whole mapping service is down (``is_down``);
      requests vanish, including the querier's own local branch.
    * Stale-view misses: a salted hash of (asn, guid) fires a "GUID
      missing" reply with probability ``stale_rate`` — the same fate on
      every contact, however many times either path probes the pair.
    """

    def __init__(
        self,
        stale_rate: float,
        lossy_asns: FrozenSet[int],
        dead_asns: FrozenSet[int],
        salt: int,
    ) -> None:
        self.stale_rate = float(stale_rate)
        self.lossy = frozenset(int(a) for a in lossy_asns)
        self.dead = frozenset(int(a) for a in dead_asns)
        self.salt = int(salt)

    def _stale(self, asn: int, guid: GUID) -> bool:
        if self.stale_rate <= 0.0:
            return False
        digest = hashlib.sha256(
            f"stale:{self.salt}:{asn}:{guid.value}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return unit < self.stale_rate

    def lookup_outcome(self, asn: int, guid: GUID) -> str:
        """Fate of a global lookup arriving at ``asn``."""
        if asn in self.lossy or asn in self.dead:
            return OUTCOME_TIMEOUT
        if self._stale(asn, guid):
            return OUTCOME_MISSING
        return OUTCOME_HIT

    def is_down(self, asn: int) -> bool:
        """Whether the AS's mapping service drops every request."""
        return asn in self.dead


@dataclass(frozen=True)
class Scenario:
    """A fully-materialized scenario, ready for both engines.

    The substrate (topology, router) is shared read-only between the two
    paths; the prefix table is *not* — each engine mutates its own copy
    (obtained via :meth:`fresh_table`) through the identical churn
    schedule, modelling two gateways tracking the same BGP feed.
    """

    config: ScenarioConfig
    topology: ASTopology
    router: Router
    base_table: GlobalPrefixTable
    availability: ScenarioAvailability
    trace: Tuple[TraceOp, ...]
    guids: Tuple[GUID, ...]
    selector_seed: int

    def fresh_table(self) -> GlobalPrefixTable:
        """An independent table copy for one engine to mutate."""
        return self.base_table.copy()

    def make_placer(self, table: GlobalPrefixTable):
        """The configured placement scheme bound to ``table``."""
        if self.config.placement == "asnum":
            return ASNumberPlacer(self.base_table.asns(), self.config.k)
        hash_family = Sha256Hasher(self.config.k, address_bits=table.bits)
        return GuidPlacer(hash_family, table)

    @property
    def n_lookup_ops(self) -> int:
        """Number of lookup operations in the trace."""
        return sum(1 for op in self.trace if op.kind == OP_LOOKUP)

    @property
    def n_write_ops(self) -> int:
        """Number of insert/update operations in the trace."""
        return sum(1 for op in self.trace if op.kind in (OP_INSERT, OP_UPDATE))


#: Substrate cache: topology generation dominates scenario cost and the
#: (n_as, topo_seed) grid is tiny, so substrates are shared per process.
_SUBSTRATE_CACHE: Dict[Tuple[int, int], Tuple[ASTopology, Router]] = {}


def _substrate(n_as: int, topo_seed: int) -> Tuple[ASTopology, Router]:
    key = (n_as, topo_seed)
    cached = _SUBSTRATE_CACHE.get(key)
    if cached is None:
        topology = generate_internet_topology(small_scale_config(n_as=n_as), topo_seed)
        cached = (topology, Router(topology))
        _SUBSTRATE_CACHE[key] = cached
    return cached


def _draw_config(seed: int, rng: np.random.Generator) -> ScenarioConfig:
    with_churn = bool(rng.random() < 0.45)
    return ScenarioConfig(
        seed=seed,
        n_as=int(rng.choice(np.array([60, 90, 120]))),
        topo_seed=int(rng.integers(0, 4)),
        prefixes_per_as=float(rng.choice(np.array([3.0, 5.0, 8.0]))),
        target_ratio=float(rng.choice(np.array([0.35, 0.52]))),
        k=int(rng.choice(np.array([1, 3, 5]))),
        placement="asnum" if rng.random() < 0.25 else "address",
        selection_policy=str(
            rng.choice(np.array(["latency", "latency", "hops", "random"]))
        ),
        local_replica=bool(rng.random() < 0.7),
        timeout_ms=float(rng.choice(np.array([400.0, 1000.0, 2500.0]))),
        stale_rate=float(rng.choice(np.array([0.0, 0.05, 0.2]))),
        lossy_fraction=float(rng.choice(np.array([0.0, 0.15, 0.35]))),
        with_churn=with_churn,
        n_guids=int(rng.integers(10, 25)),
        n_moves=int(rng.integers(0, 8)),
        n_lookups=int(rng.integers(25, 50)),
        n_dead=0 if with_churn else int(rng.integers(0, 3)),
    )


def _pick(rng: np.random.Generator, pool: List[int]) -> int:
    return int(pool[int(rng.integers(0, len(pool)))])


def generate_scenario(seed: int) -> Scenario:
    """Materialize the scenario determined by ``seed``."""
    rng = np.random.default_rng(np.random.SeedSequence((_SCENARIO_STREAM, seed)))
    config = _draw_config(seed, rng)
    topology, router = _substrate(config.n_as, config.topo_seed)
    table = generate_global_prefix_table(
        topology.asns(),
        AllocationConfig(
            prefixes_per_as=config.prefixes_per_as,
            target_ratio=config.target_ratio,
        ),
        seed=int(rng.integers(0, 1 << 31)),
    )
    asns = table.asns()

    # Placement used only to *generate* the trace (hosting sets, lossy
    # replicas, withdrawal targets); both engines re-derive their own.
    if config.placement == "asnum":
        gen_placer = ASNumberPlacer(asns, config.k)
    else:
        gen_placer = GuidPlacer(
            Sha256Hasher(config.k, address_bits=table.bits), table
        )

    guids = tuple(
        GUID.from_name(f"dmap-scn-{seed}-g{i}") for i in range(config.n_guids)
    )
    homes: List[int] = [_pick(rng, asns) for _ in guids]
    home_history: List[List[int]] = [[h] for h in homes]

    hosting: Dict[int, List[int]] = {
        g.value: gen_placer.hosting_asns(g) for g in guids
    }
    hosting_union = sorted({asn for hosts in hosting.values() for asn in hosts})

    trace: List[TraceOp] = []

    # -- Phase 0: one insert per GUID (spaced; inter-GUID independent). --
    for i, guid in enumerate(guids):
        trace.append(
            TraceOp(
                OP_INSERT,
                at=50.0 * i,
                guid_value=guid.value,
                asn=homes[i],
                locators=(table.representative_address(homes[i]),),
            )
        )

    # -- Phase 1: mobility — re-bind some GUIDs to a new attachment AS. --
    moved: List[int] = []
    move_targets = sorted(rng.permutation(len(guids)).tolist()[: config.n_moves])
    for j, gi in enumerate(move_targets):
        new_home = _pick(rng, asns)
        while new_home == homes[gi] and len(asns) > 1:
            new_home = _pick(rng, asns)
        homes[gi] = new_home
        home_history[gi].append(new_home)
        moved.append(gi)
        trace.append(
            TraceOp(
                OP_UPDATE,
                at=1_000_000.0 + 100_000.0 * j,
                guid_value=guids[gi].value,
                asn=new_home,
                locators=(table.representative_address(new_home),),
            )
        )

    homes_ever = sorted({h for history in home_history for h in history})

    # -- Failure sets (drawn before churn so both phases see them). -----
    lossy: List[int] = []
    blackout_gi: Optional[int] = None
    if config.lossy_fraction > 0.0 and hosting_union:
        n_lossy = int(round(config.lossy_fraction * len(hosting_union)))
        if n_lossy:
            picked = rng.choice(
                len(hosting_union), size=min(n_lossy, len(hosting_union)), replace=False
            )
            lossy = sorted(int(hosting_union[int(i)]) for i in picked)
        if rng.random() < 0.5:
            # Blackout: every global replica of one GUID times out, so
            # only the local branch (or nothing) can answer it.
            blackout_gi = int(rng.integers(0, len(guids)))
            lossy = sorted(set(lossy) | set(hosting[guids[blackout_gi].value]))
    dead: List[int] = []
    if config.n_dead:
        eligible = sorted(set(asns) - set(hosting_union) - set(homes_ever))
        for _ in range(min(config.n_dead, len(eligible))):
            choice = _pick(rng, eligible)
            dead.append(choice)
            eligible.remove(choice)
        dead.sort()

    availability = ScenarioAvailability(
        config.stale_rate, frozenset(lossy), frozenset(dead), salt=seed
    )

    # -- Phase 2: churn — withdraw prefixes that host live replicas. ----
    withdrawn: List[Prefix] = []
    if config.with_churn:
        candidates: List[Prefix] = []
        seen = set()
        if config.placement == "address":
            for guid in guids:
                for res in gen_placer.resolve_all(guid):
                    ann = table.resolve(res.address)
                    if ann is None or ann.asn in homes_ever:
                        continue
                    if ann.prefix not in seen:
                        seen.add(ann.prefix)
                        candidates.append(ann.prefix)
        else:
            for asn in asns:
                if asn in homes_ever:
                    continue
                for prefix in table.prefixes_of(asn):
                    if prefix not in seen:
                        seen.add(prefix)
                        candidates.append(prefix)
        n_withdraw = min(int(rng.integers(1, 3)), len(candidates))
        for j in range(n_withdraw):
            prefix = candidates.pop(int(rng.integers(0, len(candidates))))
            withdrawn.append(prefix)
            trace.append(
                TraceOp(OP_WITHDRAW, at=2_000_000.0 + 100_000.0 * j, prefix=prefix)
            )

        # Mid-churn lookups: exercise the post-withdrawal placement
        # (deputy fallback / migrated copies) before any re-announcement.
        for q in range(int(rng.integers(3, 7))):
            gi = int(rng.integers(0, len(guids)))
            trace.append(
                TraceOp(
                    OP_LOOKUP,
                    at=2_500_000.0 + 50_000.0 * q,
                    guid_value=guids[gi].value,
                    asn=_pick(rng, asns),
                )
            )

    # -- Phase 3: flap — re-announce the first withdrawn prefix. --------
    if withdrawn:
        original = None
        for ann in sorted(
            iter(table), key=lambda a: (a.prefix.base, a.prefix.length)
        ):
            if ann.prefix == withdrawn[0]:
                original = ann
                break
        if original is not None:
            trace.append(
                TraceOp(OP_ANNOUNCE, at=3_000_000.0, announcement=original)
            )

    # -- Phase 4: the main lookup batch. --------------------------------
    # Bias queries toward moved GUIDs and their previous homes — that is
    # where stale local copies and capture/migration transients live.
    guid_pool = list(range(len(guids))) + moved + moved
    querier_pool = list(asns) + homes_ever + homes_ever + dead + dead
    forced: List[Tuple[int, int]] = []
    if dead:
        # Dead queriers exercise the dropped-local-branch corner; pair
        # one with the blackout GUID when both exist so the all-fail
        # path is hit deterministically.
        gi = blackout_gi if blackout_gi is not None else int(rng.integers(0, len(guids)))
        forced.append((gi, dead[0]))
    for q in range(config.n_lookups):
        if forced:
            gi, querier = forced.pop()
        else:
            gi = guid_pool[int(rng.integers(0, len(guid_pool)))]
            querier = querier_pool[int(rng.integers(0, len(querier_pool)))]
        trace.append(
            TraceOp(
                OP_LOOKUP,
                at=4_000_000.0 + 100_000.0 * q,
                guid_value=guids[gi].value,
                asn=int(querier),
            )
        )

    trace.sort(key=lambda op: op.at)
    return Scenario(
        config=config,
        topology=topology,
        router=router,
        base_table=table,
        availability=availability,
        trace=tuple(trace),
        guids=guids,
        selector_seed=int(rng.integers(0, 1 << 31)),
    )
