"""Workload models: popularity, source weighting, event streams, mobility."""

from .generator import (
    EventKind,
    Workload,
    WorkloadConfig,
    WorkloadEvent,
    WorkloadGenerator,
)
from .mobility import (
    MobilityModel,
    MoveEvent,
    PAPER_UPDATES_PER_DAY,
    update_traffic_gbps,
)
from .popularity import MandelbrotZipf, PAPER_ALPHA, PAPER_Q
from .sources import SourceSampler

__all__ = [
    "EventKind",
    "Workload",
    "WorkloadConfig",
    "WorkloadEvent",
    "WorkloadGenerator",
    "MobilityModel",
    "MoveEvent",
    "PAPER_UPDATES_PER_DAY",
    "update_traffic_gbps",
    "MandelbrotZipf",
    "PAPER_ALPHA",
    "PAPER_Q",
    "SourceSampler",
]
