"""Workload generation: GUID insert / update / lookup event streams.

Reproduces the paper's workload (§IV-B.1):

* each GUID's **home AS** (insert origin) is drawn population-weighted;
* **lookup targets** follow the Mandelbrot-Zipf popularity model (Eq. 1);
* **lookup origins** are drawn population-weighted, independently of the
  target, globally distributing sources;
* inserts happen in a first phase, lookups in a second, so every query
  targets a fully inserted mapping (the paper verified convergence at
  10^5 GUIDs / 10^6 queries).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..bgp.table import GlobalPrefixTable
from ..core.guid import GUID, NetworkAddress
from ..errors import LookupFailedError, WorkloadError
from ..topology.graph import ASTopology
from .popularity import MandelbrotZipf, PAPER_ALPHA, PAPER_Q
from .sources import SourceSampler


class EventKind(enum.Enum):
    """The three event types the paper simulates (§IV-B.1)."""

    INSERT = "insert"
    UPDATE = "update"
    LOOKUP = "lookup"


@dataclass(frozen=True)
class WorkloadEvent:
    """One scheduled protocol operation."""

    kind: EventKind
    time_ms: float
    guid: GUID
    source_asn: int


@dataclass
class WorkloadConfig:
    """Workload shape parameters.

    Defaults follow the paper's converged configuration: 10^5 GUIDs and
    10^6 lookups (scale down for tests via the constructor).
    """

    n_guids: int = 100_000
    n_lookups: int = 1_000_000
    alpha: float = PAPER_ALPHA
    q: float = PAPER_Q
    insert_window_ms: float = 60_000.0
    lookup_window_ms: float = 600_000.0
    gap_ms: float = 10_000.0
    seed: int = 0

    def validate(self) -> None:
        if self.n_guids < 1:
            raise WorkloadError("n_guids must be >= 1")
        if self.n_lookups < 0:
            raise WorkloadError("n_lookups must be >= 0")
        if self.insert_window_ms < 0 or self.lookup_window_ms < 0 or self.gap_ms < 0:
            raise WorkloadError("windows must be non-negative")


@dataclass
class Workload:
    """A fully materialized event stream plus host placement."""

    config: WorkloadConfig
    home_asn: Dict[GUID, int]
    events: List[WorkloadEvent]

    @property
    def guids(self) -> List[GUID]:
        """All GUIDs, rank order (rank 1 = most popular)."""
        return list(self.home_asn)

    def locator_for(self, guid: GUID, table: GlobalPrefixTable) -> NetworkAddress:
        """The locator a host inserts: an address inside its home AS."""
        return table.representative_address(self.home_asn[guid])

    def apply_to_simulation(self, simulation, table: GlobalPrefixTable) -> None:
        """Schedule every event onto a
        :class:`~repro.sim.simulation.DMapSimulation`."""
        for event in self.events:
            locator = self.locator_for(event.guid, table)
            if event.kind is EventKind.INSERT:
                simulation.schedule_insert(
                    event.guid, [locator], event.source_asn, at=event.time_ms
                )
            elif event.kind is EventKind.UPDATE:
                simulation.schedule_update(
                    event.guid, [locator], event.source_asn, at=event.time_ms
                )
            else:
                simulation.schedule_lookup(
                    event.guid, event.source_asn, at=event.time_ms
                )

    def run_through_resolver(
        self,
        resolver,
        table: GlobalPrefixTable,
        probe=None,
        max_retry_rounds: int = 20,
        group_by_source: bool = True,
        engine: str = "scalar",
        n_jobs: int = 1,
    ) -> List[float]:
        """Execute the stream on an instant-mode
        :class:`~repro.core.resolver.DMapResolver`; returns lookup RTTs.

        This is the fast path for latency experiments — identical protocol
        arithmetic to the event simulation (cross-checked in tests), but
        without per-message event scheduling overhead.

        When every replica fails a lookup (possible under injected churn),
        the querier retries the whole replica set, carrying the time
        already spent — the §III-D.2 "keep checking" behaviour — up to
        ``max_retry_rounds`` rounds.

        ``group_by_source`` processes events grouped by (phase, source AS)
        instead of strict time order.  Instant-mode execution is
        order-independent within a phase (inserts all precede lookups, and
        lookups mutate nothing), so the RTT multiset is unchanged — but
        each source's routing row is computed once instead of being evicted
        and recomputed, which is what makes the paper-scale run (26k ASs,
        10^6 lookups) tractable.

        ``engine="fastpath"`` executes the lookups through the batched
        :class:`~repro.fastpath.engine.FastpathEngine` built from the
        resolver's configuration (``n_jobs > 1`` additionally shards
        source-AS groups across worker processes).  Per-query RTTs are
        bit-identical to the scalar walk; the returned list is in event
        order rather than grouped order, and the resolver's stores are
        *not* populated (the engine models the converged post-write
        state).  Probes and write-after-lookup streams need the scalar
        oracle and are rejected.
        """
        if engine == "fastpath":
            return self._run_fastpath(resolver, probe, n_jobs)
        if engine != "scalar":
            raise WorkloadError(f"unknown engine {engine!r}")
        events = self.events
        has_updates = any(e.kind is EventKind.UPDATE for e in events)
        if group_by_source and not has_updates:
            # Updates interleaved with lookups are time-sensitive (a lookup
            # must see the binding of its era), so grouping only applies to
            # the insert-then-lookup workloads the generator produces.
            events = sorted(
                events,
                key=lambda e: (e.kind is EventKind.LOOKUP, e.source_asn, e.time_ms),
            )
        rtts: List[float] = []
        for event in events:
            if event.kind is EventKind.LOOKUP:
                carried_ms = 0.0
                for _round in range(max_retry_rounds):
                    try:
                        result = resolver.lookup(
                            event.guid,
                            event.source_asn,
                            probe=probe,
                            time=event.time_ms,
                        )
                        break
                    except LookupFailedError as exc:
                        carried_ms += exc.elapsed_ms
                else:
                    raise WorkloadError(
                        f"lookup of {event.guid} kept failing for "
                        f"{max_retry_rounds} rounds"
                    )
                rtts.append(result.rtt_ms + carried_ms)
            else:
                locator = self.locator_for(event.guid, table)
                op = (
                    resolver.insert
                    if event.kind is EventKind.INSERT
                    else resolver.update
                )
                op(event.guid, [locator], event.source_asn, time=event.time_ms)
        return rtts

    def _run_fastpath(self, resolver, probe, n_jobs: int) -> List[float]:
        """Batched-engine execution of an insert-then-lookup stream."""
        from ..fastpath import FastpathEngine, FastpathUnsupportedError

        if probe is not None:
            raise FastpathUnsupportedError(
                "availability probes need the scalar resolver walk"
            )
        # The engine computes against the converged post-write state, so
        # every write must precede every lookup (the generator's streams
        # do; hand-built interleaved streams are rejected).
        write_order: Dict[GUID, int] = {}
        local_asn: Dict[GUID, int] = {}
        lookup_guids: List[int] = []
        lookup_sources: List[int] = []
        lookup_times: List[float] = []
        for event in self.events:
            if event.kind is EventKind.LOOKUP:
                idx = write_order.get(event.guid)
                if idx is None:
                    raise FastpathUnsupportedError(
                        f"lookup of never-written GUID {event.guid}"
                    )
                lookup_guids.append(idx)
                lookup_sources.append(event.source_asn)
                lookup_times.append(event.time_ms)
            else:
                if lookup_guids:
                    raise FastpathUnsupportedError(
                        "writes interleaved with lookups need the scalar resolver"
                    )
                write_order.setdefault(event.guid, len(write_order))
                local_asn[event.guid] = event.source_asn
        engine = FastpathEngine.from_resolver(resolver)
        batch = engine.index_guids(
            list(write_order), [local_asn[g] for g in write_order]
        )
        result = engine.lookup_batch(
            batch,
            np.asarray(lookup_guids, dtype=np.int64),
            np.asarray(lookup_sources, dtype=np.int64),
            n_jobs=n_jobs,
            issued_at=np.asarray(lookup_times, dtype=np.float64),
        )
        return result.rtt_ms.tolist()


class WorkloadGenerator:
    """Builds :class:`Workload` instances over a topology."""

    def __init__(self, topology: ASTopology, config: Optional[WorkloadConfig] = None):
        self.topology = topology
        self.config = config or WorkloadConfig()
        self.config.validate()

    def generate(self) -> Workload:
        """Materialize the event stream (deterministic in the seed)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        sampler = SourceSampler(self.topology, rng)

        # Rank r GUID is "guid-r"; popularity rank == naming rank.
        guids = [GUID.from_name(f"guid-{rank}") for rank in range(1, cfg.n_guids + 1)]
        homes = sampler.sample(cfg.n_guids)
        home_asn = {guid: int(asn) for guid, asn in zip(guids, homes)}

        events: List[WorkloadEvent] = []
        insert_times = np.sort(rng.uniform(0.0, cfg.insert_window_ms, cfg.n_guids))
        for guid, time_ms, asn in zip(guids, insert_times, homes):
            events.append(
                WorkloadEvent(EventKind.INSERT, float(time_ms), guid, int(asn))
            )

        if cfg.n_lookups:
            popularity = MandelbrotZipf(cfg.n_guids, cfg.alpha, cfg.q)
            ranks = popularity.sample_ranks(cfg.n_lookups, rng)
            lookup_sources = sampler.sample(cfg.n_lookups)
            start = cfg.insert_window_ms + cfg.gap_ms
            lookup_times = np.sort(
                rng.uniform(start, start + cfg.lookup_window_ms, cfg.n_lookups)
            )
            for rank, time_ms, asn in zip(ranks, lookup_times, lookup_sources):
                events.append(
                    WorkloadEvent(
                        EventKind.LOOKUP, float(time_ms), guids[int(rank) - 1], int(asn)
                    )
                )

        events.sort(key=lambda e: e.time_ms)
        return Workload(cfg, home_asn, events)
