"""Host mobility: attachment-point changes driving GUID Updates.

§III-D.2 and §IV-A frame the mobility regime DMap targets: billions of
mobile hosts updating their GUID→NA binding ~100 times/day as they move
between networks ("a mobile device in a vehicle may change its network
attachment points many times" during one session).  This module generates
per-host move schedules and the corresponding update events.

Two movement regimes:

* ``"global"`` — the next AS is drawn population-weighted from the whole
  topology (long-range travel);
* ``"neighborhood"`` — the next AS is a topological neighbor of the
  current one (vehicular/commuter movement between adjacent access
  networks), falling back to global when the current AS is isolated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.guid import GUID
from ..errors import WorkloadError
from ..topology.graph import ASTopology
from .generator import EventKind, WorkloadEvent
from .sources import SourceSampler

#: The paper's headline mobility estimate: 100 binding updates per day
#: per mobile host (§IV-A).
PAPER_UPDATES_PER_DAY = 100.0


@dataclass(frozen=True)
class MoveEvent:
    """One attachment change of one host."""

    time_ms: float
    guid: GUID
    from_asn: int
    to_asn: int


class MobilityModel:
    """Generates Poisson move schedules for a population of hosts.

    Parameters
    ----------
    topology:
        The AS graph hosts move over.
    updates_per_day:
        Mean attachment-change rate per host.
    regime:
        ``"global"`` or ``"neighborhood"`` (see module docstring).
    seed:
        Private RNG seed.
    """

    def __init__(
        self,
        topology: ASTopology,
        updates_per_day: float = PAPER_UPDATES_PER_DAY,
        regime: str = "neighborhood",
        seed: int = 0,
    ) -> None:
        if updates_per_day <= 0:
            raise WorkloadError("updates_per_day must be positive")
        if regime not in ("global", "neighborhood"):
            raise WorkloadError(f"unknown mobility regime {regime!r}")
        self.topology = topology
        self.updates_per_day = updates_per_day
        self.regime = regime
        self.rng = np.random.default_rng(seed)
        self._sampler = SourceSampler(topology, self.rng)
        self._mean_interval_ms = 86_400_000.0 / updates_per_day

    def next_attachment(self, current_asn: int) -> int:
        """Draw the AS a host at ``current_asn`` moves to next."""
        if self.regime == "neighborhood":
            neighbors = self.topology.neighbors(current_asn)
            if neighbors:
                return int(neighbors[int(self.rng.integers(0, len(neighbors)))])
        # global regime, or isolated AS fallback
        nxt = self._sampler.sample_one()
        if nxt == current_asn and len(self.topology) > 1:
            nxt = self._sampler.sample_one()
        return nxt

    def moves_for_host(
        self,
        guid: GUID,
        start_asn: int,
        horizon_ms: float,
        start_ms: float = 0.0,
    ) -> List[MoveEvent]:
        """Poisson move schedule for one host over ``[start_ms, horizon_ms)``."""
        if horizon_ms < start_ms:
            raise WorkloadError("horizon precedes start")
        moves: List[MoveEvent] = []
        time_ms = start_ms
        current = start_asn
        while True:
            time_ms += float(self.rng.exponential(self._mean_interval_ms))
            if time_ms >= horizon_ms:
                return moves
            nxt = self.next_attachment(current)
            moves.append(MoveEvent(time_ms, guid, current, nxt))
            current = nxt

    def moves_for_population(
        self,
        homes: Dict[GUID, int],
        horizon_ms: float,
        start_ms: float = 0.0,
    ) -> List[MoveEvent]:
        """Merged, time-sorted move schedule for a host population."""
        moves: List[MoveEvent] = []
        for guid, home in homes.items():
            moves.extend(self.moves_for_host(guid, home, horizon_ms, start_ms))
        moves.sort(key=lambda m: m.time_ms)
        return moves

    @staticmethod
    def to_update_events(moves: Sequence[MoveEvent]) -> List[WorkloadEvent]:
        """Convert moves into GUID Update workload events.

        The update originates from the *destination* AS — the host has
        already re-attached when it refreshes its binding (§III-A).
        """
        return [
            WorkloadEvent(EventKind.UPDATE, move.time_ms, move.guid, move.to_asn)
            for move in moves
        ]


def update_traffic_gbps(
    n_hosts: float,
    updates_per_day: float = PAPER_UPDATES_PER_DAY,
    bits_per_update: float = 352.0 * 5,
) -> float:
    """Global update-traffic estimate, reproducing the §IV-A arithmetic.

    5 billion mobile hosts × 100 updates/day, each update fanned out to
    K = 5 replicas carrying a 352-bit entry, lands at ~10 Gb/s worldwide —
    "a minute fraction of the overall Internet traffic".
    """
    if n_hosts < 0 or updates_per_day < 0 or bits_per_update <= 0:
        raise WorkloadError("traffic parameters must be non-negative")
    updates_per_second = n_hosts * updates_per_day / 86_400.0
    return updates_per_second * bits_per_update / 1e9
