"""Mandelbrot-Zipf host popularity (§IV-B.1, Eq. 1).

The number of queries a GUID receives depends on its popularity.  The
paper models it with a Mandelbrot-Zipf distribution::

    p(k) = H / (k + q)**alpha,    H = 1 / sum_k 1 / (k + q)**alpha

with skewness ``alpha = 1.02`` and plateau factor ``q = 100`` (following
the peer-to-peer traffic study it cites).  ``q`` flattens the head: unlike
pure Zipf, the most popular few objects do not dwarf everything else.
"""

from __future__ import annotations


import numpy as np

from ..errors import WorkloadError

#: Paper parameter choices (§IV-B.1).
PAPER_ALPHA = 1.02
PAPER_Q = 100.0


class MandelbrotZipf:
    """Sampler over ranks ``1..n`` with Mandelbrot-Zipf probabilities.

    Parameters
    ----------
    n:
        Number of objects (GUIDs).
    alpha:
        Skewness; larger concentrates probability on low ranks.
    q:
        Plateau factor; larger flattens the head of the distribution.
    """

    def __init__(self, n: int, alpha: float = PAPER_ALPHA, q: float = PAPER_Q) -> None:
        if n < 1:
            raise WorkloadError("need at least one object")
        if alpha <= 0:
            raise WorkloadError("alpha must be positive")
        if q < 0:
            raise WorkloadError("q must be non-negative")
        self.n = n
        self.alpha = alpha
        self.q = q
        ranks = np.arange(1, n + 1, dtype=float)
        weights = 1.0 / (ranks + q) ** alpha
        self._h = 1.0 / weights.sum()
        self._probabilities = weights * self._h
        self._cdf = np.cumsum(self._probabilities)
        # Guard against floating-point drift in the final bin.
        self._cdf[-1] = 1.0

    @property
    def normalization(self) -> float:
        """H in Eq. 1."""
        return self._h

    def pmf(self, rank: int) -> float:
        """Probability of the object at ``rank`` (1-based)."""
        if not 1 <= rank <= self.n:
            raise WorkloadError(f"rank {rank} out of range [1, {self.n}]")
        return float(self._probabilities[rank - 1])

    def pmf_array(self) -> np.ndarray:
        """All probabilities, rank order (sums to 1)."""
        return self._probabilities.copy()

    def sample_ranks(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` ranks (1-based) by inverse-CDF sampling."""
        if size < 0:
            raise WorkloadError("size must be non-negative")
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64) + 1

    def expected_queries(self, total_queries: int) -> np.ndarray:
        """Expected query count per rank for a workload of ``total_queries``."""
        return self._probabilities * float(total_queries)
