"""Population-weighted selection of event source ASs (§IV-B.1).

"Each GUID in our simulation originates from a randomly picked source AS,
where the probability of choosing a certain AS is weighted in proportion
to the number of end-nodes found in that AS" — i.e. densely populated
regions originate more inserts and more queries.  The same weighting is
applied to lookup origins, which removes the location bias the paper
criticizes in prior DNS-trace-driven evaluations (§VI).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import WorkloadError
from ..topology.graph import ASTopology


class SourceSampler:
    """Samples ASs proportionally to their end-node populations."""

    def __init__(
        self,
        topology: ASTopology,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.topology = topology
        self.rng = rng or np.random.default_rng(0)
        self._asns = np.asarray(topology.asns(), dtype=np.int64)
        populations = topology.endnode_array()
        total = populations.sum()
        if total <= 0:
            raise WorkloadError("topology has no end nodes to originate events")
        self._weights = populations / total

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` source ASNs (with replacement)."""
        if size < 0:
            raise WorkloadError("size must be non-negative")
        return self.rng.choice(self._asns, size=size, p=self._weights)

    def sample_one(self) -> int:
        """Draw a single source ASN."""
        return int(self.sample(1)[0])

    def probability_of(self, asn: int) -> float:
        """Selection probability of ``asn``."""
        idx = self.topology.index_of(asn)
        return float(self._weights[idx])
