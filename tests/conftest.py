"""Shared fixtures: a small deterministic substrate.

Session-scoped objects (topology, router, base table) are treated as
read-only by tests; anything mutating the prefix table or mapping stores
builds its own copy via the factory fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bgp.allocation import AllocationConfig, generate_global_prefix_table
from repro.core.resolver import DMapResolver
from repro.topology.generator import generate_internet_topology, small_scale_config
from repro.topology.routing import Router

#: Substrate size for most tests — big enough for statistical shape
#: checks, small enough to build in well under a second.
TEST_N_AS = 150


@pytest.fixture(scope="session")
def topology():
    """A small generated Internet topology (read-only)."""
    return generate_internet_topology(small_scale_config(n_as=TEST_N_AS), seed=7)


@pytest.fixture(scope="session")
def router(topology):
    """Latency oracle over the session topology (read-only)."""
    return Router(topology)


@pytest.fixture(scope="session")
def base_table(topology):
    """A prefix table over the session topology (read-only)."""
    return generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=5), seed=11
    )


@pytest.fixture
def table(base_table):
    """A private mutable copy of the prefix table."""
    return base_table.copy()


@pytest.fixture
def resolver(base_table, router):
    """A fresh resolver over the shared substrate (stores are private)."""
    return DMapResolver(base_table, router, k=5)


@pytest.fixture
def rng():
    """Deterministic per-test RNG."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def asns(topology):
    """All AS numbers of the session topology."""
    return topology.asns()
