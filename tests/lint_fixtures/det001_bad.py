"""DET001 positive fixture: stdlib random imports."""

import random
from random import choice

value = random.random()
pick = choice([1, 2, 3])
