"""DET001 negative fixture: randomness threaded as a Generator."""

import numpy as np


def draw(rng: np.random.Generator) -> float:
    return float(rng.random())
