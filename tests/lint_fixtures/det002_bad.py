"""DET002 positive fixture: legacy np.random global-state API."""

import numpy as np
from numpy.random import rand

np.random.seed(42)
noise = np.random.normal(0.0, 1.0, size=8)
uniform = rand(4)
