"""DET002 negative fixture: the seeded Generator API is allowed."""

import numpy as np
from numpy.random import Generator, SeedSequence, default_rng

rng = np.random.default_rng(42)
child = default_rng(SeedSequence(7))


def draw(generator: Generator) -> float:
    return float(generator.normal())
