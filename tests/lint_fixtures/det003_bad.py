"""DET003 positive fixture: wall-clock reads."""

import time
from datetime import date, datetime

started = time.time()
nanos = time.time_ns()
stamp = datetime.now()
today = date.today()
