"""DET003 negative fixture: virtual time and explicit timestamps."""


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, delta_ms: float) -> None:
        self.now += delta_ms


def elapsed(issued_at: float, completed_at: float) -> float:
    return completed_at - issued_at
