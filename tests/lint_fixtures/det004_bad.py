"""DET004 positive fixture: set iteration feeding a schedule.

Only meaningful when linted under a sim-critical module path
(the test maps this file to ``repro.sim.fixture``).
"""

schedule = []

for asn in {3, 1, 2}:
    schedule.append(asn)

for asn in set(schedule):
    schedule.append(asn + 1)

pairs = [(a, b) for a in {1, 2} for b in schedule]
merged = [x for x in frozenset(schedule).union({9})]
