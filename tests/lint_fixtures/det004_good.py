"""DET004 negative fixture: sets are sorted before iteration."""

failed = {3, 1, 2}
schedule = []

for asn in sorted(failed):
    schedule.append(asn)

for asn in sorted(set(schedule)):
    schedule.append(asn + 1)

merged = [x for x in sorted(failed.union({9}))]
