"""DET005 positive fixture: default_rng without an explicit seed."""

import numpy as np
from numpy.random import default_rng

rng_a = np.random.default_rng()
rng_b = default_rng(None)
