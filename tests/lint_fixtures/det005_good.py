"""DET005 negative fixture: explicit seeds everywhere."""

import numpy as np
from numpy.random import default_rng


def make_rng(seed: int) -> np.random.Generator:
    return default_rng(seed)


rng = np.random.default_rng(2012)
