"""HYG001 positive fixture: mutable default arguments."""

from collections import defaultdict


def append_event(event: int, queue=[]):
    queue.append(event)
    return queue


def tally(counts={}, *, buckets=set(), index=defaultdict(list)):
    return counts, buckets, index
