"""HYG001 negative fixture: None defaults, built inside the body."""

from typing import List, Optional


def append_event(event: int, queue: Optional[List[int]] = None) -> List[int]:
    if queue is None:
        queue = []
    queue.append(event)
    return queue


def scale(value: float, factor: float = 1.5, label: str = "x") -> float:
    return value * factor
