"""HYG002 positive fixture: float-literal equality.

Scoped: the test maps this file to ``repro.sim.fixture``.
"""


def check(rtt_ms: float, loss: float) -> bool:
    if rtt_ms == 0.5:
        return True
    return loss != -1.5
