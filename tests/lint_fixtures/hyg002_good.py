"""HYG002 negative fixture: tolerances and integer sentinels."""

import math


def check(rtt_ms: float, retries: int) -> bool:
    if math.isclose(rtt_ms, 0.5, abs_tol=1e-9):
        return True
    if rtt_ms < 0.25:
        return True
    return retries == 3
