"""HYG003 positive fixture: bare except."""


def swallow(action) -> bool:
    try:
        action()
        return True
    except:
        return False
