"""HYG003 negative fixture: typed exception handlers."""


def swallow(action) -> bool:
    try:
        action()
        return True
    except (ValueError, KeyError):
        return False
    except Exception:
        return False
