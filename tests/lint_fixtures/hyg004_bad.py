"""HYG004 positive fixture: __all__ exports a phantom symbol."""

from math import sqrt

__all__ = ["sqrt", "real_function", "GhostClass"]


def real_function() -> int:
    return 1
