"""HYG004 negative fixture: every export exists."""

from math import sqrt as square_root

__all__ = ["square_root", "CONSTANT", "Helper", "helper_function"]

CONSTANT = 7


class Helper:
    pass


def helper_function() -> int:
    return CONSTANT
