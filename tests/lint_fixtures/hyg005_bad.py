"""HYG005 positive fixture: unannotated public API.

Scoped: the test maps this file to ``repro.core.fixture``.
"""


def lookup(guid):
    return guid


class Store:
    def __init__(self, capacity):
        self.capacity = capacity

    def insert(self, guid, value):
        return True
