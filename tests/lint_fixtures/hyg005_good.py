"""HYG005 negative fixture: annotated returns; private helpers exempt."""


def lookup(guid: int) -> int:
    return _normalize(guid)


def _normalize(guid):
    return guid


class Store:
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    def insert(self, guid: int, value: str) -> bool:
        def locally_unannotated(x):
            return x

        return bool(locally_unannotated(guid))
