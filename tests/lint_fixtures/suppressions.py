"""Suppression fixture: every violation here carries a disable comment,
except the one at the bottom that the tests expect to survive."""

import random  # lint: disable=DET001
import time

# lint: disable-file=HYG003

started = time.time()  # lint: disable=DET003,DET001


def swallow(action) -> bool:
    try:
        action()
        return True
    except:  # suppressed file-wide above
        return False


def also_swallow(action) -> bool:
    try:
        action()
        return True
    except:  # still suppressed by the same file-wide pragma
        return False


surviving = time.time()
