"""Tests for the synthetic prefix-table generator."""

import numpy as np
import pytest

from repro.bgp.allocation import (
    AllocationConfig,
    BuddyAllocator,
    generate_global_prefix_table,
)
from repro.errors import ConfigurationError


class TestBuddyAllocator:
    def test_allocations_are_disjoint_and_aligned(self):
        rng = np.random.default_rng(0)
        allocator = BuddyAllocator(bits=10, rng=rng)
        seen = set()
        for length in [2, 3, 3, 4, 5, 5, 5, 6]:
            base = allocator.allocate(length)
            assert base is not None
            span = 1 << (10 - length)
            assert base % span == 0, "block must be naturally aligned"
            block = set(range(base, base + span))
            assert not (block & seen), "blocks must be disjoint"
            seen |= block

    def test_free_span_accounting(self):
        allocator = BuddyAllocator(bits=8, rng=np.random.default_rng(0))
        assert allocator.free_span() == 256
        allocator.allocate(2)  # 64 addresses
        assert allocator.free_span() == 192

    def test_exhaustion_returns_none(self):
        allocator = BuddyAllocator(bits=4, rng=np.random.default_rng(0))
        assert allocator.allocate(0) is not None  # whole space
        assert allocator.allocate(4) is None

    def test_bad_length(self):
        allocator = BuddyAllocator(bits=4, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            allocator.allocate(5)


class TestGeneration:
    def test_hits_target_ratio(self):
        table = generate_global_prefix_table(
            list(range(1, 101)), AllocationConfig(prefixes_per_as=5), seed=0
        )
        assert table.announcement_ratio() == pytest.approx(0.52, abs=0.01)

    def test_every_as_announces(self):
        asns = list(range(1, 81))
        table = generate_global_prefix_table(
            asns, AllocationConfig(prefixes_per_as=4), seed=1
        )
        assert set(table.asns()) == set(asns)

    def test_deterministic_in_seed(self):
        a = generate_global_prefix_table(list(range(1, 31)), seed=5)
        b = generate_global_prefix_table(list(range(1, 31)), seed=5)
        assert sorted(a) == sorted(b)

    def test_different_seeds_differ(self):
        a = generate_global_prefix_table(list(range(1, 31)), seed=5)
        b = generate_global_prefix_table(list(range(1, 31)), seed=6)
        assert sorted(a) != sorted(b)

    def test_prefixes_are_disjoint(self):
        table = generate_global_prefix_table(
            list(range(1, 41)), AllocationConfig(prefixes_per_as=4), seed=2
        )
        total_span = sum(a.prefix.span for a in table)
        # Disjoint blocks: the union equals the sum of spans.
        assert table.announced_span() == total_span

    def test_custom_ratio(self):
        table = generate_global_prefix_table(
            list(range(1, 101)),
            AllocationConfig(target_ratio=0.3, prefixes_per_as=5),
            seed=0,
        )
        assert table.announcement_ratio() == pytest.approx(0.3, abs=0.01)

    def test_as_weights_bias_counts(self):
        asns = list(range(1, 61))
        heavy = {1: 50.0}
        table = generate_global_prefix_table(
            asns,
            AllocationConfig(prefixes_per_as=5),
            seed=3,
            as_weights=heavy,
        )
        counts = {asn: len(table.prefixes_of(asn)) for asn in asns}
        mean_others = np.mean([c for a, c in counts.items() if a != 1])
        assert counts[1] > 3 * mean_others

    def test_empty_asns_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_global_prefix_table([], seed=0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AllocationConfig(target_ratio=1.5).validate()
        with pytest.raises(ConfigurationError):
            AllocationConfig(prefixes_per_as=0).validate()
        with pytest.raises(ConfigurationError):
            AllocationConfig(length_mix={}).validate()
        with pytest.raises(ConfigurationError):
            AllocationConfig(length_mix={40: 1.0}).validate()

    def test_heavy_tail_in_per_as_span(self):
        table = generate_global_prefix_table(
            list(range(1, 201)), AllocationConfig(prefixes_per_as=8), seed=4
        )
        idx = table.build_interval_index()
        spans = np.array(sorted(idx.effective_span_by_asn().values()))
        # Top 10% of ASs should own the majority of announced space.
        top_decile = spans[-len(spans) // 10 :].sum()
        assert top_decile / spans.sum() > 0.5
