"""Tests for the §VII placement variants (AS-number and weighted hashing)."""

import numpy as np
import pytest

from repro.core.guid import GUID
from repro.core.resolver import DMapResolver
from repro.errors import ConfigurationError
from repro.hashing.asnum_placer import ASNumberPlacer, WeightedASPlacer


class TestASNumberPlacer:
    def test_deterministic(self):
        placer = ASNumberPlacer(range(1, 101), k=5)
        g = GUID.from_name("x")
        assert placer.hosting_asns(g) == placer.hosting_asns(g)

    def test_resolves_to_participants(self):
        asns = list(range(10, 50))
        placer = ASNumberPlacer(asns, k=3)
        for i in range(50):
            for asn in placer.hosting_asns(GUID.from_name(f"g{i}")):
                assert asn in asns

    def test_never_via_deputy_single_attempt(self):
        placer = ASNumberPlacer(range(1, 20), k=2)
        for res in placer.resolve_all(GUID(7)):
            assert res.attempts == 1
            assert not res.via_deputy

    def test_uniform_load(self):
        asns = list(range(1, 41))
        placer = ASNumberPlacer(asns, k=1)
        counts = {a: 0 for a in asns}
        for i in range(8000):
            counts[placer.hosting_asns(GUID.from_name(f"u{i}"))[0]] += 1
        values = np.asarray(list(counts.values()))
        assert values.min() > 100  # expected 200
        assert values.max() < 340

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ASNumberPlacer([])

    def test_k_mismatch_rejected(self):
        from repro.hashing.hashers import Sha256Hasher

        with pytest.raises(ConfigurationError):
            ASNumberPlacer([1, 2], k=3, hash_family=Sha256Hasher(2, address_bits=64))

    def test_plugs_into_resolver(self, base_table, router, asns, rng):
        placer = ASNumberPlacer(asns, k=5)
        resolver = DMapResolver(base_table, router, placer=placer)
        assert resolver.k == 5
        guid = GUID.from_name("asnum-host")
        home = int(rng.choice(asns))
        resolver.insert(guid, [base_table.representative_address(home)], home)
        result = resolver.lookup(guid, int(rng.choice(asns)))
        assert result.entry.guid == guid
        assert set(resolver.placer.hosting_asns(guid)) <= set(asns)


class TestWeightedASPlacer:
    def test_shares_match_weights(self):
        placer = WeightedASPlacer({1: 3.0, 2: 1.0}, k=1)
        assert placer.share_of(1) == pytest.approx(0.75)
        assert placer.share_of(2) == pytest.approx(0.25)

    def test_empirical_distribution(self):
        placer = WeightedASPlacer({1: 6.0, 2: 3.0, 3: 1.0}, k=1)
        counts = {1: 0, 2: 0, 3: 0}
        for i in range(20_000):
            counts[placer.hosting_asns(GUID.from_name(f"w{i}"))[0]] += 1
        assert counts[1] / 20_000 == pytest.approx(0.6, abs=0.02)
        assert counts[2] / 20_000 == pytest.approx(0.3, abs=0.02)
        assert counts[3] / 20_000 == pytest.approx(0.1, abs=0.02)

    def test_zero_weight_as_gets_nothing(self):
        placer = WeightedASPlacer({1: 1.0, 2: 0.0}, k=1)
        for i in range(500):
            assert placer.hosting_asns(GUID.from_name(f"z{i}")) == [1]

    def test_deterministic(self):
        placer = WeightedASPlacer({1: 1.0, 2: 2.0}, k=4)
        g = GUID.from_name("det")
        assert placer.hosting_asns(g) == placer.hosting_asns(g)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedASPlacer({})
        with pytest.raises(ConfigurationError):
            WeightedASPlacer({1: -1.0})
        with pytest.raises(ConfigurationError):
            WeightedASPlacer({1: 0.0})
        with pytest.raises(ConfigurationError):
            WeightedASPlacer({1: 1.0}).share_of(99)

    def test_space_proportional_weights_recover_baseline_profile(
        self, base_table
    ):
        # Weights = effective announced span → replica share tracks span
        # share, i.e. the baseline DMap load profile (§VII).
        spans = base_table.build_interval_index().effective_span_by_asn()
        placer = WeightedASPlacer({a: float(s) for a, s in spans.items()}, k=1)
        big = max(spans, key=spans.get)
        small = min(spans, key=spans.get)
        assert placer.share_of(big) > placer.share_of(small)
        assert placer.share_of(big) == pytest.approx(
            spans[big] / sum(spans.values()), rel=1e-9
        )
