"""Tests for the baseline mapping schemes (§II-B, §VI)."""

import math

import numpy as np
import pytest

from repro.baselines.dht import ChordDHT
from repro.baselines.dns_like import DNSLike
from repro.baselines.mobileip import MobileIP
from repro.baselines.onehop_dht import OneHopDHT
from repro.core.guid import GUID
from repro.errors import ConfigurationError, MappingNotFoundError


@pytest.fixture
def guids():
    return [GUID.from_name(f"base-{i}") for i in range(40)]


def insert_all(scheme, guids, table, asns, rng):
    homes = {}
    for g in guids:
        home = int(rng.choice(asns))
        scheme.insert(g, [table.representative_address(home)], home)
        homes[g] = home
    return homes


class TestChordDHT:
    def test_route_ends_at_owner(self, router, guids, asns, rng):
        chord = ChordDHT(router)
        for g in guids[:10]:
            src = int(rng.choice(asns))
            path = chord.route(src, g)
            assert path[0] == src
            assert path[-1] == chord._owner_of(g)

    def test_hops_logarithmic(self, router, guids, asns, rng):
        chord = ChordDHT(router)
        sources = [int(rng.choice(asns)) for _ in guids]
        mean_hops = chord.mean_overlay_hops(guids, sources)
        n = len(asns)
        assert 1.0 <= mean_hops <= 2.5 * math.log2(n)

    def test_insert_then_lookup(self, router, base_table, guids, asns, rng):
        chord = ChordDHT(router)
        insert_all(chord, guids, base_table, asns, rng)
        for g in guids[:10]:
            src = int(rng.choice(asns))
            out = chord.lookup(g, src)
            assert out.rtt_ms > 0
            # Zero hops only when the querier itself owns the key.
            if src != chord._owner_of(g):
                assert out.overlay_hops >= 1

    def test_lookup_unknown_raises(self, router):
        with pytest.raises(MappingNotFoundError):
            ChordDHT(router).lookup(GUID.from_name("ghost"), 1)

    def test_replication_spreads_to_successors(self, router, base_table, asns, rng):
        chord = ChordDHT(router, replication=3)
        g = GUID.from_name("replicated")
        home = int(rng.choice(asns))
        chord.insert(g, [base_table.representative_address(home)], home)
        holders = [asn for asn, store in chord.stores.items() if store.get(g)]
        assert len(holders) == 3

    def test_maintenance_positive(self, router):
        assert ChordDHT(router).maintenance_overhead_bps() > 0

    def test_slower_than_one_hop(self, router, base_table, guids, asns, rng):
        chord = ChordDHT(router)
        onehop = OneHopDHT(router)
        insert_all(chord, guids, base_table, asns, rng)
        insert_all(onehop, guids, base_table, asns, rng)
        chord_rtts = [
            chord.lookup(g, int(rng.choice(asns))).rtt_ms for g in guids
        ]
        onehop_rtts = [
            onehop.lookup(g, int(rng.choice(asns))).rtt_ms for g in guids
        ]
        assert np.mean(chord_rtts) > np.mean(onehop_rtts)

    def test_validation(self, router):
        with pytest.raises(ConfigurationError):
            ChordDHT(router, replication=0)
        with pytest.raises(ConfigurationError):
            ChordDHT(router, stabilization_period_s=0)


class TestOneHopDHT:
    def test_single_hop(self, router, base_table, guids, asns, rng):
        onehop = OneHopDHT(router)
        insert_all(onehop, guids, base_table, asns, rng)
        for g in guids[:10]:
            out = onehop.lookup(g, int(rng.choice(asns)))
            assert out.overlay_hops == 1

    def test_lookup_rtt_is_owner_rtt(self, router, base_table, guids, asns, rng):
        onehop = OneHopDHT(router)
        insert_all(onehop, guids, base_table, asns, rng)
        g = guids[0]
        src = int(rng.choice(asns))
        out = onehop.lookup(g, src)
        assert out.rtt_ms == pytest.approx(router.rtt_ms(src, onehop._owner_of(g)))

    def test_maintenance_scales_with_n(self, router):
        model = OneHopDHT(router, churn_events_per_node_per_hour=1.0)
        expected = model.n * 1.0 / 3600.0 * 256.0
        assert model.maintenance_overhead_bps() == pytest.approx(expected)

    def test_unknown_raises(self, router):
        with pytest.raises(MappingNotFoundError):
            OneHopDHT(router).lookup(GUID.from_name("ghost"), 1)


class TestMobileIP:
    def test_home_pinned_at_first_registration(self, router, base_table, asns, rng):
        mip = MobileIP(router)
        g = GUID.from_name("roamer")
        first, second = asns[0], asns[1]
        mip.insert(g, [base_table.representative_address(first)], first)
        mip.insert(g, [base_table.representative_address(second)], second)
        assert mip.home_of(g) == first

    def test_lookup_goes_to_home(self, router, base_table, asns, rng):
        mip = MobileIP(router)
        g = GUID.from_name("roamer")
        home = asns[0]
        mip.insert(g, [base_table.representative_address(home)], home)
        src = asns[10]
        out = mip.lookup(g, src)
        assert out.rtt_ms == pytest.approx(router.rtt_ms(src, home))

    def test_update_cost_grows_with_distance_from_home(
        self, router, base_table, asns
    ):
        mip = MobileIP(router)
        g = GUID.from_name("roamer")
        home = asns[0]
        mip.insert(g, [base_table.representative_address(home)], home)
        far = max(asns, key=lambda a: router.one_way_ms(home, a))
        cost = mip.insert(g, [base_table.representative_address(far)], far)
        assert cost == pytest.approx(router.rtt_ms(far, home))

    def test_triangle_stretch_at_least_one(self, router, base_table, asns, rng):
        mip = MobileIP(router)
        g = GUID.from_name("roamer")
        mip.insert(g, [base_table.representative_address(asns[0])], asns[0])
        mip.insert(g, [base_table.representative_address(asns[5])], asns[5])
        for _ in range(10):
            stretch = mip.triangle_stretch(g, int(rng.choice(asns)))
            assert stretch >= 1.0 - 1e-9

    def test_unknown_raises(self, router):
        with pytest.raises(MappingNotFoundError):
            MobileIP(router).lookup(GUID.from_name("ghost"), 1)


class TestDNSLike:
    def test_miss_then_cache_hit(self, router, base_table, asns):
        dns = DNSLike(router, ttl_ms=10_000.0)
        g = GUID.from_name("site")
        home, src = asns[0], asns[10]
        dns.insert(g, [base_table.representative_address(home)], home)
        cold = dns.lookup(g, src)
        warm = dns.lookup(g, src)
        assert cold.overlay_hops == 3
        assert warm.overlay_hops == 0
        assert warm.rtt_ms < cold.rtt_ms
        assert dns.cache_hits == 1 and dns.cache_misses == 1

    def test_ttl_expiry(self, router, base_table, asns):
        dns = DNSLike(router, ttl_ms=1000.0)
        g = GUID.from_name("site")
        dns.insert(g, [base_table.representative_address(asns[0])], asns[0])
        dns.lookup(g, asns[10])
        dns.advance_time(2000.0)
        dns.lookup(g, asns[10])
        assert dns.cache_misses == 2

    def test_stale_answers_counted_under_mobility(self, router, base_table, asns):
        dns = DNSLike(router, ttl_ms=60_000.0)
        g = GUID.from_name("mobile")
        dns.insert(g, [base_table.representative_address(asns[0])], asns[0])
        dns.lookup(g, asns[10])  # populate cache
        dns.insert(g, [base_table.representative_address(asns[1])], asns[1])  # move
        out = dns.lookup(g, asns[10])  # cache still fresh by TTL → stale data
        assert dns.stale_answers == 1
        assert out.locators == (base_table.representative_address(asns[0]),)

    def test_stale_probability_monotone_in_mobility(self, router):
        dns = DNSLike(router, ttl_ms=60_000.0)
        slow = dns.stale_answer_probability(mean_update_interval_ms=600_000.0)
        fast = dns.stale_answer_probability(mean_update_interval_ms=6_000.0)
        assert 0.0 <= slow < fast <= 1.0

    def test_roots_are_high_degree(self, router, topology):
        dns = DNSLike(router, n_roots=5)
        degrees = sorted((topology.degree(a) for a in topology.asns()), reverse=True)
        for root in dns.root_asns:
            assert topology.degree(root) >= degrees[9]

    def test_unknown_raises(self, router):
        with pytest.raises(MappingNotFoundError):
            DNSLike(router).lookup(GUID.from_name("ghost"), 1)

    def test_validation(self, router):
        with pytest.raises(ConfigurationError):
            DNSLike(router, n_roots=0)
        with pytest.raises(ConfigurationError):
            DNSLike(router, ttl_ms=-1)
        with pytest.raises(ConfigurationError):
            DNSLike(router).advance_time(-5.0)
        with pytest.raises(ConfigurationError):
            DNSLike(router).stale_answer_probability(0.0)
