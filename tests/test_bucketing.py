"""Tests for the two-level bucketing scheme (§III-B, Fig. 3)."""

import pytest

from repro.bgp.prefix import Announcement, Prefix
from repro.core.guid import GUID
from repro.errors import ConfigurationError, EmptyPrefixTableError
from repro.hashing.bucketing import BucketIndex


def segments(n: int, bits: int = 64):
    """n announced /48-style segments in a sparse 64-bit space."""
    out = []
    for i in range(n):
        base = (i * 2654435761 % (1 << 16)) << 48
        out.append(Announcement(Prefix(base, 16, bits), asn=i + 1))
    return out


class TestConstruction:
    def test_requires_segments(self):
        with pytest.raises(EmptyPrefixTableError):
            BucketIndex([], n_buckets=16)

    def test_requires_buckets(self):
        with pytest.raises(ConfigurationError):
            BucketIndex(segments(3), n_buckets=0)

    def test_occupancy_sparse_when_n_large(self):
        idx = BucketIndex(segments(10), n_buckets=1024)
        assert idx.occupancy <= 10 / 1024
        assert idx.max_segments_per_bucket >= 1

    def test_large_n_keeps_s_small(self):
        # "We make N large so that S can be kept small."
        small_n = BucketIndex(segments(200), n_buckets=32)
        large_n = BucketIndex(segments(200), n_buckets=4096)
        assert large_n.max_segments_per_bucket < small_n.max_segments_per_bucket


class TestResolution:
    def test_deterministic(self):
        idx = BucketIndex(segments(20), n_buckets=256, k=3)
        g = GUID.from_name("host")
        assert idx.hosting_asns(g) == idx.hosting_asns(g)

    def test_all_replicas_valid(self):
        idx = BucketIndex(segments(20), n_buckets=256, k=3)
        valid_asns = {a.asn for a in segments(20)}
        for i in range(50):
            for res in idx.resolve_all(GUID.from_name(f"g{i}")):
                assert res.announcement.asn in valid_asns
                assert res.announcement in idx.bucket_contents(res.bucket_id)

    def test_replica_index_validation(self):
        idx = BucketIndex(segments(5), k=2)
        with pytest.raises(ConfigurationError):
            idx.resolve_one(GUID(1), 2)

    def test_single_segment_always_resolves(self):
        idx = BucketIndex(segments(1), n_buckets=4096, k=2)
        res = idx.resolve_all(GUID.from_name("x"))
        assert all(r.announcement.asn == 1 for r in res)

    def test_two_routers_agree(self):
        # The layout is derivable from the announcement list alone: two
        # independently constructed indexes resolve identically.
        a = BucketIndex(segments(30), n_buckets=512, k=2)
        b = BucketIndex(list(reversed(segments(30))), n_buckets=512, k=2)
        for i in range(40):
            g = GUID.from_name(f"agree{i}")
            assert a.hosting_asns(g) == b.hosting_asns(g)


class TestLoadSpread:
    def test_load_spreads_over_segments(self):
        idx = BucketIndex(segments(40), n_buckets=4096, k=2)
        guids = [GUID.from_name(f"load{i}") for i in range(2000)]
        loads = idx.load_by_asn(guids)
        assert len(loads) > 20, "most segments should receive some load"
        total = sum(loads.values())
        assert total == 2000 * 2
        assert max(loads.values()) < total * 0.25
