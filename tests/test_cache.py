"""Tests for the in-network caching layer (§VII future work)."""

import pytest

from repro.core.cache import CachingResolver
from repro.core.guid import GUID
from repro.core.resolver import DMapResolver
from repro.errors import ConfigurationError


@pytest.fixture
def cached(base_table, router):
    resolver = DMapResolver(base_table, router, k=5)
    return CachingResolver(resolver, ttl_ms=10_000.0), resolver


def insert_host(resolver, table, guid, asn):
    resolver.insert(guid, [table.representative_address(asn)], asn)


class TestCacheBasics:
    def test_miss_then_hit(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("cachee")
        insert_host(resolver, base_table, guid, int(rng.choice(asns)))
        src = int(rng.choice(asns))

        first, was_cached_1 = caching.lookup(guid, src)
        second, was_cached_2 = caching.lookup(guid, src)
        assert not was_cached_1 and was_cached_2
        assert second.rtt_ms <= first.rtt_ms
        assert second.rtt_ms == pytest.approx(
            2.0 * resolver.router.topology.intra_latency(src)
        )
        assert caching.stats.hits == 1
        assert caching.stats.misses == 1
        assert caching.stats.hit_rate == 0.5

    def test_caches_are_per_as(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("percached")
        insert_host(resolver, base_table, guid, int(rng.choice(asns)))
        caching.lookup(guid, asns[0])
        _result, was_cached = caching.lookup(guid, asns[1])
        assert not was_cached

    def test_ttl_expiry(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("expiring")
        insert_host(resolver, base_table, guid, int(rng.choice(asns)))
        src = int(rng.choice(asns))
        caching.lookup(guid, src)
        caching.advance_time(20_000.0)  # ttl is 10s
        _result, was_cached = caching.lookup(guid, src)
        assert not was_cached
        assert caching.stats.misses == 2

    def test_invalidate(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("invalidated")
        insert_host(resolver, base_table, guid, int(rng.choice(asns)))
        caching.lookup(guid, asns[0])
        caching.lookup(guid, asns[1])
        removed = caching.invalidate(guid)
        assert removed == 2
        assert caching.cached_entries() == 0

    def test_invalidate_single_as(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("inv-one")
        insert_host(resolver, base_table, guid, int(rng.choice(asns)))
        caching.lookup(guid, asns[0])
        caching.lookup(guid, asns[1])
        assert caching.invalidate(guid, asn=asns[0]) == 1
        assert caching.cached_entries() == 1

    def test_validation(self, cached):
        caching, resolver = cached
        with pytest.raises(ConfigurationError):
            CachingResolver(resolver, ttl_ms=-1)
        with pytest.raises(ConfigurationError):
            caching.advance_time(-1)


class TestStalenessUnderMobility:
    def test_stale_hit_detected_and_repaired(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("mover")
        old_asn, new_asn = asns[0], asns[1]
        insert_host(resolver, base_table, guid, old_asn)
        src = asns[10]
        caching.lookup(guid, src)  # cache the old binding

        # The host moves; the cached copy is now stale but within TTL.
        resolver.update(
            guid, [base_table.representative_address(new_asn)], new_asn
        )
        result, was_cached = caching.lookup(guid, src)
        assert was_cached
        assert caching.stats.stale_hits == 1
        # The answer ultimately returned is the fresh binding, and its
        # cost includes both the wasted local read and the re-resolution.
        assert result.locators == (base_table.representative_address(new_asn),)
        fresh_rtt = resolver.lookup(guid, src).rtt_ms
        assert result.rtt_ms > fresh_rtt

    def test_stale_slot_replaced(self, cached, base_table, asns, rng):
        caching, resolver = cached
        guid = GUID.from_name("mover2")
        insert_host(resolver, base_table, guid, asns[0])
        src = asns[10]
        caching.lookup(guid, src)
        resolver.update(guid, [base_table.representative_address(asns[1])], asns[1])
        caching.lookup(guid, src)  # stale hit; slot refreshed
        result, was_cached = caching.lookup(guid, src)
        assert was_cached
        assert caching.stats.stale_hits == 1  # no second stale read
        assert result.locators == (base_table.representative_address(asns[1]),)

    def test_staleness_rate_grows_with_mobility(self, base_table, router, asns, rng):
        # Cache with long TTL; compare a slow mover against a fast mover.
        def staleness(move_every_n_queries):
            resolver = DMapResolver(base_table, router, k=5)
            caching = CachingResolver(resolver, ttl_ms=1e9)
            guid = GUID.from_name(f"rate-{move_every_n_queries}")
            insert_host(resolver, base_table, guid, asns[0])
            src = asns[10]
            for i in range(60):
                if i % move_every_n_queries == 0:
                    target = asns[(i // move_every_n_queries) % len(asns)]
                    resolver.update(
                        guid, [base_table.representative_address(target)], target
                    )
                caching.lookup(guid, src)
            return caching.stats.staleness_rate

        assert staleness(2) > staleness(20)
