"""Tests for BGP churn schedules and inconsistent views."""

import pytest

from repro.bgp.churn import (
    ChurnEvent,
    ChurnKind,
    ChurnScheduleGenerator,
    churned_fraction,
    perturb_view,
)
from repro.bgp.prefix import Announcement, Prefix
from repro.bgp.table import GlobalPrefixTable
from repro.errors import ConfigurationError


def ann(cidr: str, asn: int) -> Announcement:
    return Announcement(Prefix.from_cidr(cidr), asn)


@pytest.fixture
def churn_table():
    return GlobalPrefixTable(
        [ann(f"{10 + i}.0.0.0/8", i + 1) for i in range(20)]
    )


class TestScheduleGenerator:
    def test_events_are_time_ordered_and_bounded(self, churn_table):
        gen = ChurnScheduleGenerator(churn_table, 0.5, 0.5, seed=1)
        times = []
        for event in gen.events(horizon=100.0):
            times.append(event.time)
            event.apply(churn_table)
        assert times == sorted(times)
        assert all(t < 100.0 for t in times)
        assert times, "expected some churn in 100 time units at rate 1.0"

    def test_withdrawals_target_announced_prefixes(self, churn_table):
        gen = ChurnScheduleGenerator(churn_table, 0.0, 1.0, seed=2)
        for event in gen.events(horizon=10.0):
            assert event.kind is ChurnKind.WITHDRAW
            assert event.announcement.prefix in churn_table
            event.apply(churn_table)

    def test_announcements_are_flaps(self, churn_table):
        gen = ChurnScheduleGenerator(churn_table, 1.0, 1.0, seed=3)
        withdrawn = set()
        for event in gen.events(horizon=60.0):
            if event.kind is ChurnKind.WITHDRAW:
                withdrawn.add(event.announcement.prefix)
            else:
                assert event.announcement.prefix in withdrawn
                assert event.announcement.prefix not in churn_table
            event.apply(churn_table)

    def test_invalid_rates_rejected(self, churn_table):
        with pytest.raises(ConfigurationError):
            ChurnScheduleGenerator(churn_table, -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            ChurnScheduleGenerator(churn_table, 0.0, 0.0)


class TestPerturbView:
    def test_fraction_zero_is_identity(self, churn_table):
        view, removed = perturb_view(churn_table, 0.0)
        assert removed == []
        assert churned_fraction(churn_table, view) == 0.0

    def test_fraction_removed(self, churn_table):
        view, removed = perturb_view(churn_table, 0.25, seed=4)
        assert len(removed) == 5
        assert churned_fraction(churn_table, view) == pytest.approx(0.25)
        for a in removed:
            assert a.prefix not in view
            assert a.prefix in churn_table

    def test_original_untouched(self, churn_table):
        before = len(churn_table)
        perturb_view(churn_table, 0.5, seed=5)
        assert len(churn_table) == before

    def test_bad_fraction(self, churn_table):
        with pytest.raises(ConfigurationError):
            perturb_view(churn_table, 1.5)

    def test_deterministic(self, churn_table):
        _v1, r1 = perturb_view(churn_table, 0.3, seed=6)
        _v2, r2 = perturb_view(churn_table, 0.3, seed=6)
        assert r1 == r2


class TestChurnedFraction:
    def test_empty_reference(self):
        empty = GlobalPrefixTable()
        assert churned_fraction(empty, empty) == 0.0

    def test_counts_missing_only(self, churn_table):
        view = churn_table.copy()
        view.announce(ann("200.0.0.0/8", 999))  # extra prefix: not churn
        assert churned_fraction(churn_table, view) == 0.0
