"""Tests for the shared experiment environment plumbing."""

import os

import numpy as np
import pytest

from repro.experiments.common import Environment, Scale, get_environment, resolve_scale


@pytest.fixture
def tiny_scale():
    return Scale("unit", 80, 100, 500, 4.0, 80_000)


class TestResolveScale:
    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert resolve_scale().name == "medium"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert resolve_scale("small").name == "small"

    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale().name == "small"


class TestEnvironment:
    def test_deterministic_across_instances(self, tiny_scale, tmp_path):
        env_a = Environment(tiny_scale, seed=1, cache_dir=str(tmp_path))
        env_b = Environment(tiny_scale, seed=1, cache_dir=str(tmp_path))
        assert env_a.topology.asns() == env_b.topology.asns()
        assert sorted(env_a.table) == sorted(env_b.table)

    def test_topology_cached_on_disk(self, tiny_scale, tmp_path):
        Environment(tiny_scale, seed=2, cache_dir=str(tmp_path))
        cached = [f for f in os.listdir(tmp_path) if f.endswith(".npz")]
        assert len(cached) == 1
        # Second construction loads the cache (mtime unchanged).
        path = tmp_path / cached[0]
        mtime = path.stat().st_mtime_ns
        Environment(tiny_scale, seed=2, cache_dir=str(tmp_path))
        assert path.stat().st_mtime_ns == mtime

    def test_table_covers_all_ases(self, tiny_scale, tmp_path):
        env = Environment(tiny_scale, seed=3, cache_dir=str(tmp_path))
        assert set(env.table.asns()) == set(env.topology.asns())

    def test_router_is_usable(self, tiny_scale, tmp_path):
        env = Environment(tiny_scale, seed=4, cache_dir=str(tmp_path))
        asns = env.topology.asns()
        assert env.router.rtt_ms(asns[0], asns[-1]) > 0


class TestWorkloadGroupingEquivalence:
    def test_grouped_and_ungrouped_rtts_match(self, topology, base_table, router):
        """Grouping by source is a pure performance optimization: the RTT
        multiset must be identical to strict time-order execution."""
        from repro.core.resolver import DMapResolver
        from repro.workload.generator import WorkloadConfig, WorkloadGenerator

        workload = WorkloadGenerator(
            topology, WorkloadConfig(n_guids=60, n_lookups=400, seed=8)
        ).generate()
        grouped = WorkloadGenerator(
            topology, WorkloadConfig(n_guids=60, n_lookups=400, seed=8)
        ).generate()

        r1 = DMapResolver(base_table, router, k=5)
        r2 = DMapResolver(base_table, router, k=5)
        in_order = workload.run_through_resolver(
            r1, base_table, group_by_source=False
        )
        by_source = grouped.run_through_resolver(
            r2, base_table, group_by_source=True
        )
        assert sorted(in_order) == pytest.approx(sorted(by_source))
