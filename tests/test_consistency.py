"""Tests for the §III-D consistency protocols (churn, migration, staleness)."""

import pytest

from repro.bgp.prefix import Announcement
from repro.core.consistency import (
    audit_placement,
    handle_new_announcement,
    is_stale,
    prepare_withdrawal,
    repair_mapping,
)
from repro.core.guid import GUID
from repro.core.mapping import MappingEntry
from repro.core.resolver import DMapResolver
from repro.errors import PrefixTableError


@pytest.fixture
def fresh_resolver(table, router):
    """Resolver over a private table copy (churn tests mutate it)."""
    return DMapResolver(table, router, k=5)


def populate(resolver, table, asns, rng, count=60):
    guids = []
    for i in range(count):
        guid = GUID.from_name(f"churn-host-{i}")
        home = int(rng.choice(asns))
        resolver.insert(guid, [table.representative_address(home)], home)
        guids.append(guid)
    return guids


def find_withdrawable(resolver):
    """A (prefix, guid) pair where a replica actually lives under the
    prefix, so withdrawing it must migrate something."""
    for guid, replica_set in resolver.replica_sets.items():
        for res in replica_set.global_replicas:
            for prefix in resolver.table.prefixes_of(res.asn):
                if prefix.contains(res.address):
                    return prefix, guid
    raise AssertionError("populate() placed no replica in announced space?")


class TestWithdrawal:
    def test_migrates_affected_replicas(self, fresh_resolver, table, asns, rng):
        populate(fresh_resolver, table, asns, rng)
        prefix, _guid = find_withdrawable(fresh_resolver)
        migrated = prepare_withdrawal(fresh_resolver, prefix)
        assert migrated >= 1
        audit = audit_placement(fresh_resolver)
        assert audit["missing"] == 0
        assert audit["mislocated"] == 0

    def test_lookups_survive_withdrawal(self, fresh_resolver, table, asns, rng):
        guids = populate(fresh_resolver, table, asns, rng)
        prefix, _ = find_withdrawable(fresh_resolver)
        prepare_withdrawal(fresh_resolver, prefix)
        for guid in guids[:20]:
            result = fresh_resolver.lookup(guid, int(rng.choice(asns)))
            assert result.entry.guid == guid

    def test_unannounced_prefix_rejected(self, fresh_resolver, table, asns, rng):
        populate(fresh_resolver, table, asns, rng, count=5)
        prefix, _ = find_withdrawable(fresh_resolver)
        prepare_withdrawal(fresh_resolver, prefix)
        with pytest.raises(PrefixTableError):
            prepare_withdrawal(fresh_resolver, prefix)


class TestAnnouncement:
    def test_reannounce_with_eager_repair_restores_placement(
        self, fresh_resolver, table, asns, rng
    ):
        populate(fresh_resolver, table, asns, rng)
        prefix, _ = find_withdrawable(fresh_resolver)
        original_asn = table.resolve(prefix.base).asn
        prepare_withdrawal(fresh_resolver, prefix)
        migrated = handle_new_announcement(
            fresh_resolver, Announcement(prefix, original_asn), eager=True
        )
        assert migrated >= 1
        audit = audit_placement(fresh_resolver)
        assert audit["missing"] == 0
        assert audit["mislocated"] == 0

    def test_lazy_announcement_leaves_mislocated_until_repaired(
        self, fresh_resolver, table, asns, rng
    ):
        populate(fresh_resolver, table, asns, rng)
        prefix, _ = find_withdrawable(fresh_resolver)
        original_asn = table.resolve(prefix.base).asn
        prepare_withdrawal(fresh_resolver, prefix)
        handle_new_announcement(
            fresh_resolver, Announcement(prefix, original_asn), eager=False
        )
        audit = audit_placement(fresh_resolver)
        assert audit["mislocated"] >= 1
        # Per-GUID lazy repair (first-miss migration) fixes each one.
        for guid in list(fresh_resolver.replica_sets):
            repair_mapping(fresh_resolver, guid)
        audit = audit_placement(fresh_resolver)
        assert audit["mislocated"] == 0
        assert audit["missing"] == 0

    def test_repair_preserves_freshest_version(
        self, fresh_resolver, table, asns, rng
    ):
        populate(fresh_resolver, table, asns, rng)
        prefix, guid = find_withdrawable(fresh_resolver)
        # Bump the version via an update before churn.
        home = fresh_resolver.replica_sets[guid].local_asn
        fresh_resolver.update(guid, [table.representative_address(home)], home)
        prepare_withdrawal(fresh_resolver, prefix)
        for asn in fresh_resolver.replica_sets[guid].all_asns:
            entry = fresh_resolver.store_at(asn).get(guid)
            assert entry is not None
            assert entry.version == 1

    def test_repair_unknown_guid_is_noop(self, fresh_resolver):
        assert repair_mapping(fresh_resolver, GUID.from_name("ghost")) == 0


class TestStaleness:
    def test_is_stale(self):
        from repro.core.guid import NetworkAddress

        entry = MappingEntry(GUID(1), (NetworkAddress(5),), version=2)
        assert is_stale(entry, observed_version=3)
        assert not is_stale(entry, observed_version=2)
        assert not is_stale(entry, observed_version=1)


class TestAudit:
    def test_clean_state_audits_clean(self, fresh_resolver, table, asns, rng):
        populate(fresh_resolver, table, asns, rng, count=10)
        audit = audit_placement(fresh_resolver)
        assert audit["missing"] == 0
        assert audit["mislocated"] == 0
        assert audit["ok"] == 10 * 5


class TestMinimalDisruption:
    """Consistent-hashing property: withdrawing a prefix only moves the
    replicas whose hash chain actually visits that prefix — every other
    placement in the system is untouched (the property that makes DMap's
    churn cost proportional to the churned space, not the system size)."""

    def test_unrelated_placements_unchanged(self, table, router, asns, rng):
        resolver = DMapResolver(table, router, k=5)
        guids = populate(resolver, table, asns, rng, count=80)
        before = {g: resolver.placer.hosting_asns(g) for g in guids}

        prefix, _ = find_withdrawable(resolver)
        # Which (guid, replica) chains visit the withdrawn prefix?  A chain
        # "visits" it if any of its hash/rehash values lands inside.
        affected = set()
        for g in guids:
            for idx in range(5):
                value = resolver.hash_family.hash_one(g, idx)
                for _attempt in range(resolver.placer.max_rehashes):
                    if prefix.contains(value):
                        affected.add((g, idx))
                        break
                    if table.resolve(value) is not None:
                        break
                    value = resolver.hash_family.rehash(value, idx)

        prepare_withdrawal(resolver, prefix)
        after = {g: resolver.placer.hosting_asns(g) for g in guids}
        for g in guids:
            for idx in range(5):
                if (g, idx) not in affected:
                    assert before[g][idx] == after[g][idx], (
                        f"replica {idx} of {g} moved although its chain "
                        f"never touched {prefix}"
                    )
        # And at least the directly-hosted ones did move.
        assert any(before[g] != after[g] for g, _ in affected) or not affected
