"""Tests for topology persistence and fixtures."""

import os

import pytest

from repro.errors import TopologyError
from repro.topology.datasets import (
    cached_topology,
    line_fixture,
    load_topology,
    save_topology,
    star_fixture,
)
from repro.topology.generator import generate_internet_topology, small_scale_config


class TestFixtures:
    def test_line(self):
        topo = line_fixture(n=4, link_ms=10.0)
        assert len(topo) == 4
        assert topo.n_links() == 3
        topo.validate()

    def test_line_too_small(self):
        with pytest.raises(TopologyError):
            line_fixture(n=1)

    def test_star(self):
        topo = star_fixture(n_leaves=5)
        assert len(topo) == 6
        assert topo.degree(1) == 5
        topo.validate()

    def test_star_too_small(self):
        with pytest.raises(TopologyError):
            star_fixture(n_leaves=0)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        original = generate_internet_topology(small_scale_config(n_as=60), seed=3)
        path = str(tmp_path / "topo.npz")
        save_topology(original, path)
        loaded = load_topology(path)
        assert loaded.asns() == original.asns()
        assert loaded.n_links() == original.n_links()
        for asn in original.asns():
            a, b = original.info(asn), loaded.info(asn)
            assert a.tier == b.tier
            assert a.intra_latency_ms == pytest.approx(b.intra_latency_ms)
            assert a.endnodes == b.endnodes
        for link in original.links():
            assert loaded.link_latency(link.a, link.b) == pytest.approx(
                link.latency_ms
            )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TopologyError):
            load_topology(str(tmp_path / "nope.npz"))

    def test_cached_topology_generates_once(self, tmp_path):
        path = str(tmp_path / "cache" / "topo.npz")
        calls = []

        def generate():
            calls.append(1)
            return line_fixture(n=4)

        first = cached_topology(path, generate)
        second = cached_topology(path, generate)
        assert len(calls) == 1
        assert os.path.exists(path)
        assert second.asns() == first.asns()

    def test_cached_topology_force(self, tmp_path):
        path = str(tmp_path / "topo.npz")
        calls = []

        def generate():
            calls.append(1)
            return line_fixture(n=4)

        cached_topology(path, generate)
        cached_topology(path, generate, force=True)
        assert len(calls) == 2
