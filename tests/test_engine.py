"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30.0, lambda: fired.append("c"))
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(20.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 30.0

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(5.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(42.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(5.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(10.0, outer)
        sim.run()
        assert fired == [("outer", 10.0), ("inner", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_pending_skips_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending() == 1


class TestRunControl:
    def test_until_stops_cleanly(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("a"))
        sim.schedule(30.0, lambda: fired.append("b"))
        sim.run(until=20.0)
        assert fired == ["a"]
        assert sim.now == 20.0
        sim.run()
        assert fired == ["a", "b"]

    def test_until_after_all_events(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 4
