"""Smoke checks for the example scripts.

Full example runs take tens of seconds each, so the suite verifies the
cheap invariants — the scripts parse, expose ``main``, and reference only
real public API — and executes the fastest one end-to-end.
"""

import importlib.util
import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart.py",
    "mobile_voice_call.py",
    "content_delivery.py",
    "churn_resilience.py",
    "sparse_address_space.py",
    "transient_churn_sim.py",
]


def load_module(filename):
    path = os.path.join(EXAMPLES_DIR, filename)
    spec = importlib.util.spec_from_file_location(
        f"example_{filename[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    return spec, module


class TestExamplesStructure:
    @pytest.mark.parametrize("filename", EXAMPLES)
    def test_exists_and_compiles(self, filename):
        path = os.path.join(EXAMPLES_DIR, filename)
        assert os.path.exists(path), f"missing example {filename}"
        with open(path) as handle:
            source = handle.read()
        compile(source, filename, "exec")
        assert "def main(" in source
        assert '__name__ == "__main__"' in source
        assert source.startswith("#!/usr/bin/env python")

    @pytest.mark.parametrize("filename", EXAMPLES)
    def test_imports_resolve(self, filename):
        spec, module = load_module(filename)
        spec.loader.exec_module(module)  # imports run; main() does not
        assert callable(module.main)


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self):
        result = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "done." in result.stdout
        assert "resolved" in result.stdout
