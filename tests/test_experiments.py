"""Shape tests for the experiment drivers — the paper's qualitative claims.

These run the full experiment code paths on a tiny substrate, checking
the *shapes* the paper reports rather than absolute milliseconds.
"""

import numpy as np
import pytest

from repro.experiments.baselines_compare import run_baseline_comparison
from repro.experiments.common import Environment, SCALES, Scale, resolve_scale
from repro.experiments.fig4_response_time import run_fig4
from repro.experiments.fig5_churn import run_fig5
from repro.experiments.fig6_load import run_fig6
from repro.experiments.fig7_analytical import run_fig7
from repro.experiments.rehash_probe import run_rehash_probe
from repro.experiments.storage_overhead import run_storage_overhead
from repro.experiments.table1_stats import run_table1
from repro.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig


@pytest.fixture(scope="module")
def env(tmp_path_factory):
    scale = Scale("tiny", 150, 400, 3000, 5.0, 150_000)
    import os

    os.environ.setdefault(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("cache"))
    )
    return Environment(scale, seed=0)


@pytest.fixture(scope="module")
def tiny_workload():
    return WorkloadConfig(n_guids=400, n_lookups=3000, seed=0)


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"small", "medium", "paper"}
        assert resolve_scale("paper").n_as == 26_424

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_scale("galactic")


class TestFig4Shape:
    @pytest.fixture(scope="class")
    def result(self, env, tiny_workload):
        return run_fig4(environment=env, workload_override=tiny_workload)

    def test_all_k_values_present(self, result):
        assert set(result.rtts_by_k) == {1, 3, 5}
        for rtts in result.rtts_by_k.values():
            assert len(rtts) == 3000

    def test_replicas_shift_cdf_left(self, result):
        # More replicas → better latency at every reported percentile.
        s = result.summaries()
        assert s[1].median > s[3].median > s[5].median * 0.999
        assert s[1].p95 > s[5].p95
        assert s[1].mean > s[5].mean

    def test_k1_to_k5_tail_improves_clearly(self, result):
        # Paper: 172.8 → 86.1 ms (factor ~2) at 26k ASs.  The gain shrinks
        # with graph size (shorter paths → less replica diversity), so at
        # the 150-AS test scale only a clear improvement is asserted; the
        # medium/paper-scale benchmark checks the ~2x factor.
        s = result.summaries()
        ratio = s[1].p95 / s[5].p95
        assert 1.1 < ratio < 3.5

    def test_render_contains_table(self, result):
        text = result.render()
        assert "K=1" in text and "K=5" in text
        assert "95th" in text

    def test_simulation_path_matches_instant(self, env):
        tiny = WorkloadConfig(n_guids=60, n_lookups=300, seed=1)
        instant = run_fig4(
            environment=env, workload_override=tiny, k_values=(3,)
        )
        simulated = run_fig4(
            environment=env,
            workload_override=tiny,
            k_values=(3,),
            use_simulation=True,
        )
        np.testing.assert_allclose(
            np.sort(instant.rtts_by_k[3]),
            np.sort(simulated.rtts_by_k[3]),
            rtol=1e-9,
        )

    def test_local_replica_ablation_helps(self, env, tiny_workload):
        with_local = run_fig4(
            environment=env, workload_override=tiny_workload, k_values=(5,)
        )
        without = run_fig4(
            environment=env,
            workload_override=tiny_workload,
            k_values=(5,),
            local_replica=False,
        )
        assert (
            with_local.rtts_by_k[5].mean() <= without.rtts_by_k[5].mean() + 1e-9
        )

    def test_hop_policy_slightly_worse(self, env, tiny_workload):
        # §IV-B.2a: least-hop-count gives "similar results albeit with
        # marginally increased latencies".
        latency = run_fig4(
            environment=env, workload_override=tiny_workload, k_values=(5,)
        )
        hops = run_fig4(
            environment=env,
            workload_override=tiny_workload,
            k_values=(5,),
            selection_policy="hops",
        )
        assert hops.rtts_by_k[5].mean() >= latency.rtts_by_k[5].mean() - 1e-9
        assert hops.rtts_by_k[5].mean() < 3 * latency.rtts_by_k[5].mean()


class TestTable1:
    def test_rows_and_render(self, env):
        result = run_table1(environment=env)
        assert set(result.measured) == {1, 5}
        text = result.render()
        assert "74.5" in text  # paper reference column
        assert "86.1" in text


class TestFig5Shape:
    @pytest.fixture(scope="class")
    def result(self, env, tiny_workload):
        return run_fig5(environment=env, workload_override=tiny_workload)

    def test_rates_present(self, result):
        assert set(result.rtts_by_rate) == {0.0, 0.05, 0.10}

    def test_churn_hurts_tail_more_than_median(self, result):
        s = result.summaries()
        median_shift = s[0.10].median - s[0.0].median
        tail_shift = s[0.10].p95 - s[0.0].p95
        assert tail_shift > median_shift
        assert tail_shift > 0

    def test_monotone_in_failure_rate(self, result):
        s = result.summaries()
        assert s[0.0].mean <= s[0.05].mean <= s[0.10].mean

    def test_render(self, result):
        assert "failure" in result.render()


class TestFig6Shape:
    @pytest.fixture(scope="class")
    def result(self, env):
        return run_fig6(environment=env, n_guids_list=(2_000, 20_000, 200_000))

    def test_median_approaches_one(self, result):
        medians = [float(np.median(v)) for v in result.nlr_by_n.values()]
        assert abs(medians[-1] - 1.0) < abs(medians[0] - 1.0) + 0.15
        assert 0.7 < medians[-1] < 1.4

    def test_cdf_sharpens_with_scale(self, result):
        # Fraction within [0.4, 1.6] grows with the GUID population.
        fractions = [
            float(((v >= 0.4) & (v <= 1.6)).mean()) for v in result.nlr_by_n.values()
        ]
        assert fractions[-1] > fractions[0]

    def test_deputy_fraction_small(self, result):
        for fraction in result.deputy_fraction_by_n.values():
            assert fraction < 0.005

    def test_render(self, result):
        assert "NLR" in result.render()


class TestFig6Engines:
    """All three fig6 engines are interchangeable, byte for byte."""

    def test_engines_render_identically(self, env):
        renders = {
            engine: run_fig6(
                environment=env, n_guids_list=(1_500,), engine=engine
            ).render()
            for engine in ("scalar", "bulk", "fastpath")
        }
        assert renders["scalar"] == renders["bulk"] == renders["fastpath"]

    def test_engine_arrays_identical(self, env):
        results = [
            run_fig6(environment=env, n_guids_list=(1_500,), engine=engine)
            for engine in ("scalar", "bulk")
        ]
        for a, b in zip(results, results[1:]):
            np.testing.assert_array_equal(a.nlr_by_n[1_500], b.nlr_by_n[1_500])
            assert a.deputy_fraction_by_n == b.deputy_fraction_by_n

    def test_unknown_engine_rejected(self, env):
        with pytest.raises(ConfigurationError):
            run_fig6(environment=env, n_guids_list=(1_500,), engine="warp")


class TestFig7Shape:
    def test_curves_decreasing_and_ordered(self):
        result = run_fig7()
        curves = list(result.bounds_by_scenario.values())
        assert len(curves) == 3
        for curve in curves:
            assert (np.diff(curve) <= 1e-9).all()
        present, medium, long_term = curves
        assert (present > medium).all()
        assert (medium > long_term).all()

    def test_diminishing_returns(self):
        result = run_fig7()
        for name in result.bounds_by_scenario:
            assert result.diminishing_returns_ratio(name) < 0.5

    def test_render(self):
        assert "c0=10.6" in run_fig7().render()


class TestOverheadAndRehash:
    def test_overhead_numbers(self, env):
        result = run_storage_overhead(environment=env)
        assert result.analytic["entry_bits"] == 352
        assert result.analytic["update_traffic_gbps"] == pytest.approx(10.2, abs=0.1)
        assert result.analytic_paper_denominator_mbits == pytest.approx(173, rel=0.01)
        assert result.measured_mean_entry_bits == pytest.approx(352)
        assert "173 Mbit" in result.render()

    def test_rehash_probe_matches_analytic(self, env):
        result = run_rehash_probe(environment=env, n_samples=50_000)
        for m, measured in result.deputy_fraction_by_m.items():
            assert measured == pytest.approx(
                result.analytic_by_m[m], abs=max(0.01, 3 * result.analytic_by_m[m])
            )
        assert result.deputy_fraction_by_m[10] < 0.005
        assert "III-B" in result.render()


class TestBaselineComparison:
    def test_ordering_matches_paper_argument(self, env):
        result = run_baseline_comparison(
            environment=env,
            workload_override=WorkloadConfig(n_guids=200, n_lookups=1500, seed=2),
        )
        stats = result.by_name()
        dmap = stats["dmap (K=5)"]
        chord = stats["chord-dht"]
        onehop = stats["one-hop-dht"]
        # DMap beats everything on latency; Chord is the slowest resolver.
        for name, s in stats.items():
            if name != "dmap (K=5)":
                assert s.latency.mean > dmap.latency.mean
        assert chord.latency.mean > onehop.latency.mean
        assert chord.mean_overlay_hops > 2.0
        # DMap needs no maintenance traffic; the DHTs do.
        assert dmap.maintenance_bps == 0.0
        assert chord.maintenance_bps > 0.0
        assert onehop.maintenance_bps > 0.0
        assert "scheme" in result.render()


class TestConstantCalibration:
    def test_fit_from_own_simulation(self, env):
        """§V-C: the paper fit c0, c1 = 10.6, 8.3 ms from its simulation.
        Our substrate measures AS-level (not PoP-level) hops, so the
        per-hop cost is coarser; the fit must still be positive, of the
        right order, and meaningfully correlated."""
        from repro.experiments.fig7_analytical import calibrate_constants

        c0, c1, r = calibrate_constants(env, n_samples=800, k=1, seed=1)
        assert 3.0 < c0 < 80.0
        assert -80.0 < c1 < 80.0
        assert r > 0.25
