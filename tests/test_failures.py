"""Tests for the failure-injection models."""

import pytest

from repro.core.guid import GUID
from repro.core.resolver import OUTCOME_HIT, OUTCOME_MISSING, OUTCOME_TIMEOUT
from repro.errors import ConfigurationError
from repro.sim.failures import (
    ChurnFailureModel,
    CompositeFailureModel,
    FailureModel,
    RouterFailureModel,
)


class TestBaseModel:
    def test_everything_works(self):
        model = FailureModel()
        assert model.lookup_outcome(1, GUID(1)) == OUTCOME_HIT
        assert not model.is_down(1)


class TestChurnModel:
    def test_rate_zero_never_fails(self):
        model = ChurnFailureModel(0.0)
        assert all(
            model.lookup_outcome(1, GUID(i)) == OUTCOME_HIT for i in range(100)
        )

    def test_rate_one_always_fails(self):
        model = ChurnFailureModel(1.0)
        assert all(
            model.lookup_outcome(1, GUID(i)) == OUTCOME_MISSING for i in range(100)
        )

    def test_empirical_rate(self):
        model = ChurnFailureModel(0.2, seed=1)
        misses = sum(
            model.lookup_outcome(1, GUID(i)) == OUTCOME_MISSING
            for i in range(10_000)
        )
        assert misses / 10_000 == pytest.approx(0.2, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnFailureModel(1.5)

    def test_never_marks_down(self):
        assert not ChurnFailureModel(0.5).is_down(1)


class TestRouterFailureModel:
    def test_down_set(self):
        model = RouterFailureModel([3, 7])
        assert model.is_down(3)
        assert not model.is_down(4)
        assert model.lookup_outcome(3, GUID(1)) == OUTCOME_TIMEOUT
        assert model.lookup_outcome(4, GUID(1)) == OUTCOME_HIT

    def test_random_fraction(self):
        asns = list(range(1, 101))
        model = RouterFailureModel.random(asns, 0.1, seed=2)
        assert len(model.down) == 10
        assert model.down <= set(asns)

    def test_random_zero(self):
        model = RouterFailureModel.random(list(range(10)), 0.0)
        assert not model.down

    def test_random_validation(self):
        with pytest.raises(ConfigurationError):
            RouterFailureModel.random([1, 2], 2.0)

    def test_random_deterministic(self):
        asns = list(range(1, 51))
        a = RouterFailureModel.random(asns, 0.2, seed=9)
        b = RouterFailureModel.random(asns, 0.2, seed=9)
        assert a.down == b.down


class TestCompositeModel:
    def test_worst_outcome_wins(self):
        composite = CompositeFailureModel(
            [ChurnFailureModel(1.0), RouterFailureModel([5])]
        )
        assert composite.lookup_outcome(5, GUID(1)) == OUTCOME_TIMEOUT
        assert composite.lookup_outcome(6, GUID(1)) == OUTCOME_MISSING

    def test_is_down_any(self):
        composite = CompositeFailureModel([FailureModel(), RouterFailureModel([2])])
        assert composite.is_down(2)
        assert not composite.is_down(3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeFailureModel([])
