"""Tests for the failure-injection models."""

import pytest

from repro.core.guid import GUID
from repro.core.resolver import OUTCOME_HIT, OUTCOME_MISSING, OUTCOME_TIMEOUT
from repro.errors import ConfigurationError
from repro.sim.failures import (
    ChurnFailureModel,
    CompositeFailureModel,
    FailureModel,
    RouterFailureModel,
)


class TestBaseModel:
    def test_everything_works(self):
        model = FailureModel()
        assert model.lookup_outcome(1, GUID(1)) == OUTCOME_HIT
        assert not model.is_down(1)


class TestChurnModel:
    def test_rate_zero_never_fails(self):
        model = ChurnFailureModel(0.0)
        assert all(
            model.lookup_outcome(1, GUID(i)) == OUTCOME_HIT for i in range(100)
        )

    def test_rate_one_always_fails(self):
        model = ChurnFailureModel(1.0)
        assert all(
            model.lookup_outcome(1, GUID(i)) == OUTCOME_MISSING for i in range(100)
        )

    def test_empirical_rate(self):
        model = ChurnFailureModel(0.2, seed=1)
        misses = sum(
            model.lookup_outcome(1, GUID(i)) == OUTCOME_MISSING
            for i in range(10_000)
        )
        assert misses / 10_000 == pytest.approx(0.2, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnFailureModel(1.5)

    def test_never_marks_down(self):
        assert not ChurnFailureModel(0.5).is_down(1)


class TestRouterFailureModel:
    def test_down_set(self):
        model = RouterFailureModel([3, 7])
        assert model.is_down(3)
        assert not model.is_down(4)
        assert model.lookup_outcome(3, GUID(1)) == OUTCOME_TIMEOUT
        assert model.lookup_outcome(4, GUID(1)) == OUTCOME_HIT

    def test_random_fraction(self):
        asns = list(range(1, 101))
        model = RouterFailureModel.random(asns, 0.1, seed=2)
        assert len(model.down) == 10
        assert model.down <= set(asns)

    def test_random_zero(self):
        model = RouterFailureModel.random(list(range(10)), 0.0)
        assert not model.down

    def test_random_validation(self):
        with pytest.raises(ConfigurationError):
            RouterFailureModel.random([1, 2], 2.0)

    def test_random_deterministic(self):
        asns = list(range(1, 51))
        a = RouterFailureModel.random(asns, 0.2, seed=9)
        b = RouterFailureModel.random(asns, 0.2, seed=9)
        assert a.down == b.down


class TestCompositeModel:
    def test_worst_outcome_wins(self):
        composite = CompositeFailureModel(
            [ChurnFailureModel(1.0), RouterFailureModel([5])]
        )
        assert composite.lookup_outcome(5, GUID(1)) == OUTCOME_TIMEOUT
        assert composite.lookup_outcome(6, GUID(1)) == OUTCOME_MISSING

    def test_is_down_any(self):
        composite = CompositeFailureModel([FailureModel(), RouterFailureModel([2])])
        assert composite.is_down(2)
        assert not composite.is_down(3)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeFailureModel([])


class TestTracedFailureRuns:
    """Failure-path forensics: the DES trace stream under injected faults.

    These runs exercise the tracing hooks on every failure branch of the
    walk — dropped requests at dead ASes (the DES message-loss
    mechanism), the adaptive per-attempt timeout, the local-branch timer
    of a down querier, and the exhausted-walk failure cause.
    """

    def _traced_sim(self, topology, base_table, router, model, seed=13):
        from repro.obs import CollectingTracer
        from repro.sim.simulation import DMapSimulation

        tracer = CollectingTracer()
        sim = DMapSimulation(
            topology,
            base_table,
            k=5,
            router=router,
            seed=seed,
            failure_model=model,
            tracer=tracer,
        )
        return sim, tracer

    def _schedule(self, sim, base_table, hosts):
        for i, (guid, home, querier) in enumerate(hosts):
            locator = base_table.representative_address(home)
            sim.schedule_insert(guid, [locator], home, at=0.0)
            sim.schedule_lookup(guid, querier, at=60_000.0 + 10.0 * i)

    def test_dead_replicas_leave_adaptive_timeout_attempts(
        self, topology, base_table, router, asns, rng
    ):
        from repro.core.resolver import OUTCOME_TIMEOUT as TIMEOUT

        down = set(int(a) for a in asns[: len(asns) // 4])
        up = [int(a) for a in asns if int(a) not in down]
        model = RouterFailureModel(down)
        sim, tracer = self._traced_sim(topology, base_table, router, model)
        hosts = [
            (
                GUID.from_name(f"dead-replica-{i}"),
                int(rng.choice(up)),
                int(rng.choice(up)),
            )
            for i in range(40)
        ]
        self._schedule(sim, base_table, hosts)
        sim.run()

        assert len(tracer.traces) == len(hosts)
        timeouts = [
            a for t in tracer.traces for a in t.attempts if a.outcome == TIMEOUT
        ]
        assert timeouts, "expected dropped requests at dead replicas"
        for a in timeouts:
            # Requests to a dead AS vanish; the walk only moves on when
            # the adaptive timer max(timeout, 2*rtt) fires, so that is
            # exactly the attempt's observed cost.
            assert a.asn in down
            assert a.cost_ms >= sim.timeout_ms - 1e-9
        for t in tracer.traces:
            if t.success and not t.used_local:
                assert t.attempts[-1].outcome == "hit"
                assert t.served_by == t.attempts[-1].asn
                assert t.served_by not in down

    def test_down_querier_still_served_globally(
        self, topology, base_table, router, asns, rng
    ):
        down_src = int(asns[3])
        model = RouterFailureModel([down_src])
        sim, tracer = self._traced_sim(topology, base_table, router, model, seed=7)
        up = [int(a) for a in asns if int(a) != down_src]
        hosts = [
            (GUID.from_name(f"dead-src-{i}"), int(rng.choice(up)), down_src)
            for i in range(10)
        ]
        self._schedule(sim, base_table, hosts)
        sim.run()

        assert len(tracer.traces) == len(hosts)
        for t in tracer.traces:
            assert t.source_asn == down_src
            # A dead querier drops its own local-branch request, but the
            # global replicas still answer (matching the scalar model,
            # where is_down only kills the local branch).  The walk wins
            # long before the ~5 s local timer, so the trace shows the
            # local reply still in flight: launched, never observed.
            assert t.success
            assert not t.used_local
            assert t.served_by != down_src
            if t.local_launched:
                assert t.local_outcome is None
                assert t.local_end_ms is None
                assert "local=in-flight" in t.compact()

    def test_total_outage_observes_local_timeout_and_exhaustion(
        self, topology, base_table, router, asns, rng
    ):
        model = RouterFailureModel([int(a) for a in asns])
        sim, tracer = self._traced_sim(topology, base_table, router, model, seed=11)
        hosts = [
            (
                GUID.from_name(f"outage-{i}"),
                int(rng.choice(asns)),
                int(rng.choice(asns)),
            )
            for i in range(10)
        ]
        self._schedule(sim, base_table, hosts)
        sim.run()

        assert len(tracer.traces) == len(hosts)
        assert len(sim.metrics.failed) == len(hosts)
        for t in tracer.traces:
            assert not t.success
            assert t.failure_cause == "exhausted"
            assert t.served_by is None
            # Every replica contact vanished: K distinct-AS timeout
            # attempts, each costing the full adaptive timer.
            assert t.attempts
            assert all(a.outcome == "timeout" for a in t.attempts)
            assert all(a.cost_ms >= sim.timeout_ms - 1e-9 for a in t.attempts)
            # The walk burns >= K * timeout sequentially, so this time
            # the ~1 * timeout local timer does fire and get recorded.
            if t.local_launched:
                assert t.local_outcome == "timeout"
                assert t.local_end_ms is not None
                assert t.local_end_ms >= sim.timeout_ms - 1e-9
                assert t.rtt_ms >= t.local_end_ms

    def test_churn_misses_show_as_orphaned_mappings(
        self, topology, base_table, router, asns, rng
    ):
        from repro.obs import aggregate_traces

        model = ChurnFailureModel(0.4, seed=5)
        sim, tracer = self._traced_sim(topology, base_table, router, model, seed=9)
        hosts = [
            (
                GUID.from_name(f"churn-{i}"),
                int(rng.choice(asns)),
                int(rng.choice(asns)),
            )
            for i in range(40)
        ]
        self._schedule(sim, base_table, hosts)
        sim.run()

        assert len(tracer.traces) == len(hosts)
        report = aggregate_traces(tracer.traces).report()
        misses = sum(
            1
            for t in tracer.traces
            for a in t.attempts
            if a.outcome == OUTCOME_MISSING
        )
        assert misses > 0, "expected churned-away mappings to answer missing"
        assert sum(report["orphaned_mapping_hits"]["values"].values()) == misses
        failed = [t for t in tracer.traces if not t.success]
        assert len(failed) == len(sim.metrics.failed)
