"""Exact-equivalence tests: :mod:`repro.fastpath` vs the scalar oracle.

The batched engine promises *bit-identical* results to
:class:`~repro.core.resolver.DMapResolver` (the ISSUE floor is 1e-9
relative RTT; we assert plain ``==`` which is stronger).  Every test
builds a converged deployment — all writes precede all lookups — because
that is the regime the engine models; interleaved streams are covered by
the rejection tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guid import GUID, NetworkAddress
from repro.core.resolver import (
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
    DMapResolver,
)
from repro.errors import ConfigurationError, LookupFailedError
from repro.fastpath import (
    FastpathEngine,
    FastpathUnsupportedError,
    batch_hosting_asns,
    resolve_batch,
)
from repro.fastpath.runner import _shard_rows, run_sharded
from repro.hashing.asnum_placer import ASNumberPlacer, WeightedASPlacer
from repro.hashing.hashers import FastHasher
from repro.hashing.rehash import GuidPlacer, place_guids_bulk
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

N_GUIDS = 40
N_LOOKUPS = 150


# ----------------------------------------------------------------------
# Deployment helpers
# ----------------------------------------------------------------------
def _deploy(base_table, router, asns, *, k=5, policy="latency", local=True,
            placer=None, seed=101):
    """A converged deployment plus an aligned query stream.

    Returns ``(resolver, engine, batch, guid_idx, sources, guids)``.
    Roughly a quarter of the GUIDs get an update from a new source, so
    the local copy has moved for some of them.
    """
    rng = np.random.default_rng(seed)
    resolver = DMapResolver(
        base_table,
        router,
        k=k,
        selection_policy=policy,
        local_replica=local,
        placer=placer,
    )
    values = rng.integers(0, np.iinfo(np.uint64).max, size=N_GUIDS, dtype=np.uint64)
    guids = [GUID(int(v)) for v in values]
    write_src = rng.choice(asns, size=N_GUIDS)
    local_asn = {}
    for g, src in zip(guids, write_src):
        loc = NetworkAddress(int(rng.integers(0, 2**32)))
        resolver.insert(g, [loc], int(src))
        local_asn[g] = int(src)
    for i in rng.choice(N_GUIDS, size=N_GUIDS // 4, replace=False):
        src = int(rng.choice(asns))
        resolver.update(guids[i], [NetworkAddress(int(rng.integers(0, 2**32)))], src)
        local_asn[guids[i]] = src

    engine = FastpathEngine.from_resolver(resolver)
    batch = engine.index_guids(guids, [local_asn[g] for g in guids])
    guid_idx = rng.integers(0, N_GUIDS, size=N_LOOKUPS)
    sources = rng.choice(asns, size=N_LOOKUPS)
    return resolver, engine, batch, guid_idx, sources, guids


def _assert_lookup_parity(resolver, result, guids, guid_idx, sources,
                          probe=None, is_down=None):
    """Row-by-row comparison against the scalar walk (exact equality)."""
    for i in range(len(guid_idx)):
        g, src = guids[int(guid_idx[i])], int(sources[i])
        try:
            scalar = resolver.lookup(g, src, probe=probe, is_down=is_down)
        except LookupFailedError as exc:
            assert not result.success[i]
            assert result.served_by[i] == -1
            assert result.rtt_ms[i] == exc.elapsed_ms
            assert result.attempts[i] == exc.attempts
            continue
        assert result.success[i]
        assert result.rtt_ms[i] == scalar.rtt_ms
        assert result.served_by[i] == scalar.served_by
        assert bool(result.used_local[i]) == scalar.used_local
        assert result.attempts[i] == len(scalar.attempts)


# ----------------------------------------------------------------------
# Converged, failure-free lane
# ----------------------------------------------------------------------
class TestFailureFreeEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("local", [True, False])
    def test_latency_policy(self, base_table, router, asns, k, local):
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, k=k, local=local
        )
        result = engine.lookup_batch(batch, gidx, srcs)
        assert result.success.all()
        _assert_lookup_parity(resolver, result, guids, gidx, srcs)

    @pytest.mark.parametrize("local", [True, False])
    def test_hops_policy(self, base_table, router, asns, local):
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, policy="hops", local=local, seed=202
        )
        result = engine.lookup_batch(batch, gidx, srcs)
        _assert_lookup_parity(resolver, result, guids, gidx, srcs)

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_asnum_placement(self, base_table, router, asns, k):
        placer = ASNumberPlacer(asns, k=k)
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, k=k, placer=placer, seed=303
        )
        result = engine.lookup_batch(batch, gidx, srcs)
        _assert_lookup_parity(resolver, result, guids, gidx, srcs)

    def test_write_rtts_match_resolver(self, base_table, router, asns, rng):
        resolver = DMapResolver(base_table, router, k=5)
        engine = FastpathEngine.from_resolver(resolver)
        values = rng.integers(0, np.iinfo(np.uint64).max, size=30, dtype=np.uint64)
        guids = [GUID(int(v)) for v in values]
        sources = rng.choice(asns, size=30)
        scalar = [
            resolver.insert(g, [NetworkAddress(1)], int(s)).rtt_ms
            for g, s in zip(guids, sources)
        ]
        batch = engine.index_guids(guids)
        fast = engine.write_rtts(batch, np.arange(30), sources)
        assert fast.tolist() == scalar


# ----------------------------------------------------------------------
# Availability lane (churn staleness, dead replicas, dead queriers)
# ----------------------------------------------------------------------
class _Model:
    """Deterministic per-(AS, GUID) availability — a pure function."""

    def __init__(self, down_asns=()):
        self._down = frozenset(int(a) for a in down_asns)

    def lookup_outcome(self, asn, guid):
        v = (asn * 2654435761 + int(guid) * 40503) % 10
        if v < 2:
            return OUTCOME_TIMEOUT
        if v < 5:
            return OUTCOME_MISSING
        return OUTCOME_HIT

    def is_down(self, asn):
        return asn in self._down


class TestAvailabilityEquivalence:
    def test_mixed_outcomes(self, base_table, router, asns):
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, seed=404
        )
        model = _Model()
        result = engine.lookup_batch(batch, gidx, srcs, availability=model)
        _assert_lookup_parity(
            resolver, result, guids, gidx, srcs,
            probe=model.lookup_outcome, is_down=model.is_down,
        )

    def test_dead_querier_local_timeout(self, base_table, router, asns):
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, seed=505
        )
        model = _Model(down_asns=srcs[:40])
        result = engine.lookup_batch(batch, gidx, srcs, availability=model)
        _assert_lookup_parity(
            resolver, result, guids, gidx, srcs,
            probe=model.lookup_outcome, is_down=model.is_down,
        )

    def test_total_failure_without_local(self, base_table, router, asns):
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, local=False, seed=606
        )
        dead = lambda asn, guid: OUTCOME_TIMEOUT  # noqa: E731
        result = engine.lookup_batch(batch, gidx, srcs, availability=dead)
        assert not result.success.any()
        assert (result.served_by == -1).all()
        _assert_lookup_parity(resolver, result, guids, gidx, srcs, probe=dead)

    def test_local_fallback_after_failed_walk(self, base_table, router, asns):
        resolver, engine, batch, gidx, srcs, guids = _deploy(
            base_table, router, asns, seed=707
        )
        # Route half the queries from their GUID's own attachment AS so
        # the §III-C fallback branch is guaranteed to be exercised.
        srcs = srcs.copy()
        srcs[::2] = batch.local_asns[gidx[::2]]
        missing = lambda asn, guid: OUTCOME_MISSING  # noqa: E731
        result = engine.lookup_batch(batch, gidx, srcs, availability=missing)
        _assert_lookup_parity(resolver, result, guids, gidx, srcs, probe=missing)
        assert result.used_local.any()

    def test_bare_probe_is_adapted(self, base_table, router, asns):
        _, engine, batch, gidx, srcs, _ = _deploy(
            base_table, router, asns, seed=808
        )
        model = _Model()
        as_model = engine.lookup_batch(batch, gidx, srcs, availability=model)
        as_probe = engine.lookup_batch(
            batch, gidx, srcs, availability=model.lookup_outcome
        )
        assert np.array_equal(as_model.rtt_ms, as_probe.rtt_ms)
        assert np.array_equal(as_model.attempts, as_probe.attempts)


# ----------------------------------------------------------------------
# Sharded runner
# ----------------------------------------------------------------------
class TestShardedRunner:
    def test_sharded_matches_serial(self, base_table, router, asns):
        _, engine, batch, gidx, srcs, _ = _deploy(
            base_table, router, asns, seed=909
        )
        serial = engine.lookup_batch(batch, gidx, srcs)
        for n_jobs in (2, 3):
            sharded = engine.lookup_batch(batch, gidx, srcs, n_jobs=n_jobs)
            assert np.array_equal(serial.rtt_ms, sharded.rtt_ms)
            assert np.array_equal(serial.served_by, sharded.served_by)
            assert np.array_equal(serial.used_local, sharded.used_local)
            assert np.array_equal(serial.attempts, sharded.attempts)
            assert np.array_equal(serial.success, sharded.success)

    def test_shard_rows_partition_on_group_boundaries(self):
        sources = np.array([7, 3, 7, 3, 9, 9, 9, 1, 3, 7])
        shards = _shard_rows(sources, 3)
        all_rows = np.concatenate(shards)
        assert sorted(all_rows.tolist()) == list(range(len(sources)))
        seen = set()
        for rows in shards:
            groups = set(sources[rows].tolist())
            assert not groups & seen  # no source AS split across shards
            seen |= groups

    def test_single_group_falls_back_to_serial(self, base_table, router, asns):
        _, engine, batch, gidx, _, _ = _deploy(base_table, router, asns, seed=111)
        srcs = np.full(len(gidx), int(asns[0]))
        serial = engine.lookup_batch(batch, gidx, srcs)
        sharded = run_sharded(engine, batch, gidx, srcs, n_jobs=4)
        assert np.array_equal(serial.rtt_ms, sharded.rtt_ms)


# ----------------------------------------------------------------------
# Unsupported configurations fall back loudly
# ----------------------------------------------------------------------
class TestRejections:
    def test_random_policy_rejected(self, base_table, router):
        with pytest.raises(FastpathUnsupportedError):
            FastpathEngine(base_table, router, selection_policy="random")

    def test_nonpositive_timeout_rejected(self, base_table, router):
        with pytest.raises(ConfigurationError):
            FastpathEngine(base_table, router, timeout_ms=0.0)

    def test_sharded_availability_rejected(self, base_table, router, asns):
        _, engine, batch, gidx, srcs, _ = _deploy(
            base_table, router, asns, seed=121
        )
        with pytest.raises(FastpathUnsupportedError):
            engine.lookup_batch(batch, gidx, srcs, availability=_Model(), n_jobs=2)

    def test_misaligned_local_asns_rejected(self, base_table, router):
        engine = FastpathEngine(base_table, router)
        with pytest.raises(ConfigurationError):
            engine.index_guids([GUID(1), GUID(2)], local_asns=[5])

    def test_misaligned_queries_rejected(self, base_table, router, asns):
        _, engine, batch, gidx, srcs, _ = _deploy(
            base_table, router, asns, seed=131
        )
        with pytest.raises(ConfigurationError):
            engine.lookup_batch(batch, gidx[:-1], srcs)


# ----------------------------------------------------------------------
# Placement kernels (fig6 path)
# ----------------------------------------------------------------------
class TestBatchPlacement:
    def test_resolve_batch_matches_place_guids_bulk(self, base_table):
        rng = np.random.default_rng(41)
        folded = rng.integers(
            0, np.iinfo(np.uint64).max, size=2000, dtype=np.uint64
        )
        hasher = FastHasher(5, address_bits=base_table.bits, seed=0)
        index = base_table.build_interval_index()
        placer = GuidPlacer(hasher, base_table)
        fast = resolve_batch(placer, folded, index)
        bulk = place_guids_bulk(folded, hasher, index, base_table)
        for a, b in zip(fast, bulk):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("scheme", ["guid", "asnum", "weighted"])
    def test_batch_hosting_matches_scalar(self, base_table, asns, scheme):
        rng = np.random.default_rng(42)
        values = [int(v) for v in rng.integers(0, 2**64, size=64, dtype=np.uint64)]
        if scheme == "guid":
            placer = GuidPlacer(FastHasher(5, address_bits=base_table.bits), base_table)
        elif scheme == "asnum":
            placer = ASNumberPlacer(asns, k=5)
        else:
            weights = {int(a): float(i % 7 + 1) for i, a in enumerate(asns)}
            placer = WeightedASPlacer(weights, k=5)
        batch = batch_hosting_asns(placer, values)
        for row, v in zip(batch, values):
            assert row.tolist() == placer.hosting_asns(GUID(v))


# ----------------------------------------------------------------------
# Workload integration
# ----------------------------------------------------------------------
class TestWorkloadEngine:
    @pytest.fixture(scope="class")
    def workload(self, topology):
        config = WorkloadConfig(n_guids=30, n_lookups=120, seed=3)
        return WorkloadGenerator(topology, config).generate()

    def test_fastpath_rtts_match_scalar(self, topology, base_table, router, workload):
        scalar = workload.run_through_resolver(
            DMapResolver(base_table, router, k=5), base_table
        )
        fast = workload.run_through_resolver(
            DMapResolver(base_table, router, k=5), base_table, engine="fastpath"
        )
        # Scalar returns grouped order, fastpath event order: compare as
        # sorted sequences (both exact, no tolerance).
        assert sorted(fast) == sorted(scalar)
        assert len(fast) == workload.config.n_lookups

    def test_fastpath_rejects_probe(self, base_table, router, workload):
        with pytest.raises(FastpathUnsupportedError):
            workload.run_through_resolver(
                DMapResolver(base_table, router),
                base_table,
                probe=lambda asn, guid: OUTCOME_HIT,
                engine="fastpath",
            )

    def test_unknown_engine_rejected(self, base_table, router, workload):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            workload.run_through_resolver(
                DMapResolver(base_table, router), base_table, engine="quantum"
            )
