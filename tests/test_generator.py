"""Tests for the synthetic Internet topology generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology.generator import (
    PAPER_N_AS,
    PAPER_N_LINKS,
    TopologyConfig,
    generate_internet_topology,
    small_scale_config,
)
from repro.topology.graph import ASTier


class TestConfig:
    def test_default_targets_paper_scale(self):
        cfg = TopologyConfig()
        assert cfg.n_as == PAPER_N_AS
        assert cfg.resolved_target_links() == PAPER_N_LINKS

    def test_scaled_link_target(self):
        cfg = TopologyConfig(n_as=2642, total_endnodes=10_000)
        ratio = cfg.resolved_target_links() / 2642
        assert ratio == pytest.approx(PAPER_N_LINKS / PAPER_N_AS, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(n_as=2).validate()
        with pytest.raises(ConfigurationError):
            TopologyConfig(transit_fraction=0.0).validate()
        with pytest.raises(ConfigurationError):
            TopologyConfig(total_endnodes=5).validate()


class TestGeneratedTopology:
    @pytest.fixture(scope="class")
    def topo(self):
        return generate_internet_topology(small_scale_config(n_as=250), seed=5)

    def test_connected(self, topo):
        topo.validate()  # raises if disconnected

    def test_size_and_links(self, topo):
        assert len(topo) == 250
        target = TopologyConfig(n_as=250, total_endnodes=250).resolved_target_links()
        assert abs(topo.n_links() - target) <= max(10, target // 10)

    def test_tier_structure(self, topo):
        tiers = {t: 0 for t in ASTier}
        for asn in topo.asns():
            tiers[topo.info(asn).tier] += 1
        assert tiers[ASTier.TIER1] >= 4
        assert tiers[ASTier.STUB] > tiers[ASTier.TRANSIT] > tiers[ASTier.TIER1]

    def test_tier1_full_mesh(self, topo):
        t1 = [a for a in topo.asns() if topo.info(a).tier is ASTier.TIER1]
        for i, a in enumerate(t1):
            for b in t1[i + 1 :]:
                assert b in topo.neighbors(a)

    def test_heavy_tailed_degrees(self, topo):
        degrees = np.array([topo.degree(a) for a in topo.asns()])
        # Providers accumulate far more links than the median stub; the
        # contrast grows with n, so keep the bound loose at test scale.
        assert degrees.max() > 4 * np.median(degrees)
        top_decile_share = np.sort(degrees)[-25:].sum() / degrees.sum()
        assert top_decile_share > 0.25

    def test_every_as_has_endnodes(self, topo):
        assert all(topo.info(a).endnodes >= 1 for a in topo.asns())

    def test_populations_concentrated_in_stubs(self, topo):
        stub_pop = sum(
            topo.info(a).endnodes
            for a in topo.asns()
            if topo.info(a).tier is ASTier.STUB
        )
        total = sum(topo.info(a).endnodes for a in topo.asns())
        assert stub_pop / total > 0.8

    def test_intra_latencies_positive_with_heavy_tail(self, topo):
        intra = topo.intra_latency_array()
        assert (intra > 0).all()
        # The generator plants pathological stub ASs (AS-23951-like).
        assert np.median(intra) < 10.0

    def test_deterministic(self):
        a = generate_internet_topology(small_scale_config(n_as=100), seed=9)
        b = generate_internet_topology(small_scale_config(n_as=100), seed=9)
        assert sorted(
            (l.a, l.b, round(l.latency_ms, 9)) for l in a.links()
        ) == sorted((l.a, l.b, round(l.latency_ms, 9)) for l in b.links())

    def test_seeds_differ(self):
        a = generate_internet_topology(small_scale_config(n_as=100), seed=1)
        b = generate_internet_topology(small_scale_config(n_as=100), seed=2)
        assert sorted((l.a, l.b) for l in a.links()) != sorted(
            (l.a, l.b) for l in b.links()
        )
