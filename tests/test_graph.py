"""Unit tests for the AS topology graph structure."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.graph import ASInfo, ASTier, ASTopology, Link


def simple_topology():
    topo = ASTopology()
    topo.add_as(ASInfo(1, ASTier.TIER1, intra_latency_ms=1.0, endnodes=10))
    topo.add_as(ASInfo(2, ASTier.TRANSIT, intra_latency_ms=2.0, endnodes=20))
    topo.add_as(ASInfo(3, ASTier.STUB, intra_latency_ms=3.0, endnodes=30))
    topo.add_link(1, 2, 5.0)
    topo.add_link(2, 3, 7.0)
    return topo


class TestLink:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link(1, 1, 5.0)

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(TopologyError):
            Link(1, 2, 0.0)

    def test_other(self):
        link = Link(1, 2, 5.0)
        assert link.other(1) == 2
        assert link.other(2) == 1
        with pytest.raises(TopologyError):
            link.other(3)


class TestTopology:
    def test_add_and_query(self):
        topo = simple_topology()
        assert len(topo) == 3
        assert 2 in topo
        assert topo.info(2).tier is ASTier.TRANSIT
        assert topo.degree(2) == 2
        assert sorted(topo.neighbors(2)) == [1, 3]
        assert topo.link_latency(1, 2) == 5.0
        assert topo.n_links() == 2

    def test_unknown_as_raises(self):
        topo = simple_topology()
        with pytest.raises(TopologyError):
            topo.info(99)
        with pytest.raises(TopologyError):
            topo.neighbors(99)
        with pytest.raises(TopologyError):
            topo.link_latency(1, 3)

    def test_link_requires_registered_ases(self):
        topo = ASTopology()
        topo.add_as(ASInfo(1))
        with pytest.raises(TopologyError):
            topo.add_link(1, 2, 5.0)

    def test_remove_link(self):
        topo = simple_topology()
        topo.remove_link(1, 2)
        assert topo.n_links() == 1
        with pytest.raises(TopologyError):
            topo.remove_link(1, 2)

    def test_readd_as_replaces_attributes(self):
        topo = simple_topology()
        topo.add_as(ASInfo(3, ASTier.STUB, intra_latency_ms=9.0, endnodes=5))
        assert topo.info(3).intra_latency_ms == 9.0
        assert topo.degree(3) == 1, "links survive attribute updates"

    def test_negative_attributes_rejected(self):
        topo = ASTopology()
        with pytest.raises(TopologyError):
            topo.add_as(ASInfo(1, intra_latency_ms=-1.0))
        with pytest.raises(TopologyError):
            topo.add_as(ASInfo(1, endnodes=-1))

    def test_links_iterated_once(self):
        topo = simple_topology()
        links = list(topo.links())
        assert len(links) == 2
        assert all(l.a < l.b for l in links)


class TestDenseIndex:
    def test_index_roundtrip(self):
        topo = simple_topology()
        for asn in topo.asns():
            assert topo.asn_at(topo.index_of(asn)) == asn

    def test_index_unknown(self):
        with pytest.raises(TopologyError):
            simple_topology().index_of(99)

    def test_edge_arrays(self):
        topo = simple_topology()
        rows, cols, weights = topo.edge_arrays()
        assert len(rows) == 4  # 2 undirected links = 4 directed entries
        assert set(zip(rows.tolist(), cols.tolist())) == {
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
        }

    def test_attribute_arrays(self):
        topo = simple_topology()
        assert topo.intra_latency_array().tolist() == [1.0, 2.0, 3.0]
        assert topo.endnode_array().tolist() == [10.0, 20.0, 30.0]

    def test_endnode_counts(self):
        assert simple_topology().endnode_counts() == {1: 10, 2: 20, 3: 30}


class TestValidation:
    def test_connected_passes(self):
        simple_topology().validate()

    def test_empty_fails(self):
        with pytest.raises(TopologyError):
            ASTopology().validate()

    def test_disconnected_fails(self):
        topo = simple_topology()
        topo.add_as(ASInfo(4))
        with pytest.raises(TopologyError, match="disconnected"):
            topo.validate()


class TestNetworkxExport:
    def test_roundtrip_structure(self):
        graph = simple_topology().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.nodes[2]["tier"] == int(ASTier.TRANSIT)
        assert graph.edges[1, 2]["latency_ms"] == 5.0
