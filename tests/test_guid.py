"""Unit and property tests for GUIDs and network addresses."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.guid import (
    ADDRESS_BITS,
    GUID,
    GUID_BITS,
    NetworkAddress,
    guid_like,
    iter_address_block,
)
from repro.errors import AddressError, GUIDError


class TestGUID:
    def test_value_and_bits(self):
        g = GUID(42)
        assert g.value == 42
        assert g.bits == GUID_BITS
        assert int(g) == 42

    def test_rejects_negative(self):
        with pytest.raises(GUIDError):
            GUID(-1)

    def test_rejects_too_wide(self):
        with pytest.raises(GUIDError):
            GUID(1 << GUID_BITS)

    def test_rejects_zero_width(self):
        with pytest.raises(GUIDError):
            GUID(0, bits=0)

    def test_boundary_value_accepted(self):
        assert GUID((1 << GUID_BITS) - 1).value == (1 << GUID_BITS) - 1

    def test_from_name_deterministic(self):
        assert GUID.from_name("phone") == GUID.from_name("phone")
        assert GUID.from_name("phone") != GUID.from_name("laptop")

    def test_from_name_accepts_bytes(self):
        assert GUID.from_name(b"phone") == GUID.from_name("phone")

    def test_from_name_respects_bits(self):
        g = GUID.from_name("phone", bits=32)
        assert g.bits == 32
        assert g.value < (1 << 32)

    def test_random_within_range(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            g = GUID.random(rng)
            assert 0 <= g.value < (1 << GUID_BITS)

    def test_random_is_seed_deterministic(self):
        a = GUID.random(np.random.default_rng(5))
        b = GUID.random(np.random.default_rng(5))
        assert a == b

    def test_ordering_and_hashing(self):
        a, b = GUID(1), GUID(2)
        assert a < b
        assert len({a, GUID(1)}) == 1

    def test_to_bytes_roundtrip(self):
        g = GUID.from_name("x")
        assert int.from_bytes(g.to_bytes(), "big") == g.value

    def test_str_is_hex(self):
        assert str(GUID(0xAB, bits=8)) == "guid:ab"

    @given(st.integers(min_value=0, max_value=(1 << GUID_BITS) - 1))
    def test_any_in_range_value_accepted(self, value):
        assert GUID(value).value == value


class TestNetworkAddress:
    def test_dotted_roundtrip(self):
        na = NetworkAddress.from_dotted("67.10.12.1")
        assert na.to_dotted() == "67.10.12.1"
        assert str(na) == "67.10.12.1"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", ""])
    def test_bad_dotted_rejected(self, bad):
        with pytest.raises(AddressError):
            NetworkAddress.from_dotted(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            NetworkAddress(1 << 32)
        with pytest.raises(AddressError):
            NetworkAddress(-1)

    def test_xor_distance_is_xor(self):
        a = NetworkAddress(0b1100)
        b = NetworkAddress(0b1010)
        assert a.xor_distance(b) == 0b0110

    def test_xor_distance_width_mismatch(self):
        with pytest.raises(AddressError):
            NetworkAddress(1, bits=32).xor_distance(NetworkAddress(1, bits=16))

    def test_dotted_requires_32_bits(self):
        with pytest.raises(AddressError):
            NetworkAddress(1, bits=16).to_dotted()

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_xor_distance_metric_laws(self, x, y):
        a, b = NetworkAddress(x), NetworkAddress(y)
        assert a.xor_distance(b) == b.xor_distance(a)
        assert a.xor_distance(a) == 0
        # §III-B definition: sum over bit positions of |A_i - B_i| * 2^i.
        manual = sum(
            abs(((x >> i) & 1) - ((y >> i) & 1)) * (1 << i) for i in range(32)
        )
        assert a.xor_distance(b) == manual


class TestHelpers:
    def test_iter_address_block(self):
        # 0b101011 masked to a /4 block in a 6-bit space starts at 0b101000.
        block = list(iter_address_block(0b101011, prefix_len=4, bits=6))
        assert block == [0b101000 + i for i in range(4)]

    def test_iter_address_block_host_route(self):
        assert list(iter_address_block(9, prefix_len=32)) == [9]

    def test_iter_address_block_bad_length(self):
        with pytest.raises(AddressError):
            list(iter_address_block(0, prefix_len=33))

    def test_guid_like_coercions(self):
        assert guid_like(GUID(5)) == GUID(5)
        assert guid_like(5) == GUID(5)
        assert guid_like("phone") == GUID.from_name("phone")

    def test_guid_like_rejects_junk(self):
        with pytest.raises(GUIDError):
            guid_like(3.14)
