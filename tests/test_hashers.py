"""Tests for the consistent hash families."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.guid import GUID
from repro.errors import ConfigurationError
from repro.hashing.hashers import FastHasher, Sha256Hasher


@pytest.fixture(params=["sha", "fast"])
def hasher(request):
    if request.param == "sha":
        return Sha256Hasher(k=5)
    return FastHasher(k=5)


class TestHashFamilyContract:
    def test_determinism(self, hasher):
        g = GUID.from_name("device")
        assert hasher.hash_all(g) == hasher.hash_all(g)

    def test_output_in_address_space(self, hasher):
        for name in ("a", "b", "c", "d"):
            for value in hasher.hash_all(GUID.from_name(name)):
                assert 0 <= value < 2**32

    def test_functions_are_distinct(self, hasher):
        # The K functions must disagree on most inputs (independence).
        disagreements = 0
        for i in range(50):
            values = hasher.hash_all(GUID.from_name(f"g{i}"))
            if len(set(values)) == len(values):
                disagreements += 1
        assert disagreements > 40

    def test_index_out_of_range(self, hasher):
        with pytest.raises(ConfigurationError):
            hasher.hash_one(GUID(1), 5)
        with pytest.raises(ConfigurationError):
            hasher.hash_one(GUID(1), -1)

    def test_accepts_raw_ints(self, hasher):
        assert hasher.hash_one(12345, 0) == hasher.hash_one(GUID(12345), 0)

    def test_rehash_changes_value_usually(self, hasher):
        changed = 0
        for i in range(50):
            v = hasher.hash_one(GUID.from_name(f"r{i}"), 0)
            if hasher.rehash(v, 0) != v:
                changed += 1
        assert changed >= 49

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            Sha256Hasher(k=0)
        with pytest.raises(ConfigurationError):
            FastHasher(k=0)

    def test_uniformity_coarse(self, hasher):
        # Bucket 4000 hashes into 16 bins; expect no wild imbalance.
        values = [
            hasher.hash_one(GUID.from_name(f"u{i}"), 0) >> 28 for i in range(4000)
        ]
        counts = np.bincount(values, minlength=16)
        assert counts.min() > 150  # expected 250 per bin
        assert counts.max() < 400


class TestSha256Hasher:
    def test_salt_changes_output(self):
        a = Sha256Hasher(k=1, salt=b"one")
        b = Sha256Hasher(k=1, salt=b"two")
        assert a.hash_one(GUID(7), 0) != b.hash_one(GUID(7), 0)

    def test_custom_address_bits(self):
        h = Sha256Hasher(k=1, address_bits=8)
        for i in range(100):
            assert 0 <= h.hash_one(GUID(i), 0) < 256


class TestFastHasher:
    def test_batch_matches_scalar(self):
        h = FastHasher(k=3)
        values = [GUID.from_name(f"x{i}").value for i in range(64)]
        folded = h.fold_guids(values)
        for index in range(3):
            batch = h.hash_batch(folded, index)
            for j, value in enumerate(values):
                assert int(batch[j]) == h.hash_one(value, index)

    def test_fold_guids_wide_values(self):
        wide = (1 << 159) | (1 << 70) | 5
        folded = FastHasher.fold_guids([wide])
        expected = ((wide >> 128) ^ (wide >> 64) ^ wide) & ((1 << 64) - 1)
        assert int(folded[0]) == expected

    def test_rehash_batch_matches_scalar_rehash(self):
        h = FastHasher(k=2)
        addresses = np.arange(10, dtype=np.uint64)
        rehashes = h.rehash_batch(addresses, 1)
        for addr, re in zip(addresses.tolist(), rehashes.tolist()):
            assert re == h.rehash(addr, 1)

    def test_seed_changes_family(self):
        a = FastHasher(k=1, seed=1)
        b = FastHasher(k=1, seed=2)
        assert a.hash_one(GUID(7), 0) != b.hash_one(GUID(7), 0)

    def test_batch_index_validation(self):
        h = FastHasher(k=2)
        with pytest.raises(ConfigurationError):
            h.hash_batch(np.zeros(1, dtype=np.uint64), 2)

    @given(st.integers(min_value=0, max_value=(1 << 160) - 1))
    @settings(max_examples=50)
    def test_scalar_path_in_range(self, value):
        h = FastHasher(k=1)
        assert 0 <= h.hash_one(value, 0) < 2**32
