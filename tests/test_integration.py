"""End-to-end integration tests across the whole stack.

These exercise full lifecycles — insert, mobility, churn, failure — over
the generated substrate, through both the instant resolver and the
discrete-event simulation.
"""

import numpy as np
import pytest

from repro.bgp.churn import ChurnScheduleGenerator, ChurnKind
from repro.bgp.prefix import Announcement
from repro.core.consistency import (
    audit_placement,
    handle_new_announcement,
    prepare_withdrawal,
    repair_mapping,
)
from repro.core.guid import GUID
from repro.core.resolver import DMapResolver
from repro.sim.simulation import DMapSimulation
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.mobility import MobilityModel


class TestMobileHostLifecycle:
    def test_voice_call_scenario(self, table, router, asns, rng):
        """§I's motivating example: a call keeps resolving a phone whose
        locator changes many times during the session."""
        resolver = DMapResolver(table, router, k=5)
        phone = GUID.from_name("imsi-310150123456789")
        caller_asn = int(rng.choice(asns))

        mobility = MobilityModel(table_topology(router), updates_per_day=2000, seed=3)
        home = int(rng.choice(asns))
        resolver.insert(phone, [table.representative_address(home)], home)
        moves = mobility.moves_for_host(phone, home, horizon_ms=3_600_000.0)
        assert moves, "a vehicular host must move within an hour"

        current = home
        for move in moves[:25]:
            resolver.update(
                phone, [table.representative_address(move.to_asn)], move.to_asn
            )
            current = move.to_asn
            result = resolver.lookup(phone, caller_asn)
            # The caller always sees the freshest binding.
            assert result.locators == (table.representative_address(current),)
            assert result.entry.version > 0 or move is moves[0]

    def test_version_monotone_across_moves(self, table, router, asns, rng):
        resolver = DMapResolver(table, router, k=3)
        guid = GUID.from_name("walker")
        versions = []
        for i in range(6):
            asn = int(rng.choice(asns))
            op = resolver.insert if i == 0 else resolver.update
            op(guid, [table.representative_address(asn)], asn)
            versions.append(resolver.lookup(guid, asn).entry.version)
        assert versions == sorted(versions)
        assert versions[-1] == 5


class TestChurnLifecycle:
    def test_sustained_churn_with_protocol_keeps_resolvability(
        self, table, router, asns, rng
    ):
        """Run a real churn schedule; after every event the §III-D
        protocol runs and every GUID must remain resolvable."""
        resolver = DMapResolver(table, router, k=5)
        guids = []
        for i in range(40):
            guid = GUID.from_name(f"churny-{i}")
            home = int(rng.choice(asns))
            resolver.insert(guid, [table.representative_address(home)], home)
            guids.append(guid)

        churn = ChurnScheduleGenerator(table, 0.5, 0.5, seed=4)
        events = 0
        for event in churn.events(horizon=30.0):
            if event.kind is ChurnKind.WITHDRAW:
                prepare_withdrawal(resolver, event.announcement.prefix)
            else:
                handle_new_announcement(resolver, event.announcement, eager=True)
            events += 1
        assert events > 5, "expected a meaningful amount of churn"

        audit = audit_placement(resolver)
        assert audit["missing"] == 0
        assert audit["mislocated"] == 0
        for guid in guids:
            result = resolver.lookup(guid, int(rng.choice(asns)))
            assert result.entry.guid == guid

    def test_lazy_repair_after_flap(self, table, router, asns, rng):
        resolver = DMapResolver(table, router, k=5)
        guids = [GUID.from_name(f"flap-{i}") for i in range(30)]
        for guid in guids:
            home = int(rng.choice(asns))
            resolver.insert(guid, [table.representative_address(home)], home)
        # Withdraw-then-reannounce one busy prefix (a flap).
        load = resolver.storage_load()
        busy_asn = max(load, key=load.get)
        prefix = table.prefixes_of(busy_asn)[0]
        prepare_withdrawal(resolver, prefix)
        handle_new_announcement(
            resolver, Announcement(prefix, busy_asn), eager=False
        )
        # Queries still resolve (replicas elsewhere), then lazy repair
        # converges placement.
        for guid in guids:
            assert resolver.lookup(guid, int(rng.choice(asns))).entry.guid == guid
        for guid in guids:
            repair_mapping(resolver, guid)
        audit = audit_placement(resolver)
        assert audit["mislocated"] == 0


class TestFullSimulationWithMobility:
    def test_moving_hosts_in_des(self, topology, base_table, router, asns, rng):
        sim = DMapSimulation(topology, base_table, k=5, router=router, seed=2)
        mobility = MobilityModel(topology, updates_per_day=500, seed=5)

        hosts = {}
        for i in range(15):
            guid = GUID.from_name(f"mobile-{i}")
            home = int(rng.choice(asns))
            hosts[guid] = home
            sim.schedule_insert(
                guid, [base_table.representative_address(home)], home, at=0.0
            )

        horizon = 3_600_000.0  # one hour
        moves = mobility.moves_for_population(hosts, horizon, start_ms=60_000.0)
        for move in moves:
            sim.schedule_update(
                move.guid,
                [base_table.representative_address(move.to_asn)],
                move.to_asn,
                at=move.time_ms,
            )
        # Queries sprinkled throughout.
        guids = list(hosts)
        for i in range(200):
            at = 120_000.0 + i * (horizon - 200_000.0) / 200
            sim.schedule_lookup(
                guids[int(rng.integers(0, len(guids)))], int(rng.choice(asns)), at=at
            )
        sim.run()
        assert len(sim.metrics.records) == 200
        assert not sim.metrics.failed
        # Every mapping's final locator matches its last scheduled update.
        final = {}
        for move in moves:
            final[move.guid] = move.to_asn
        for guid, last_asn in final.items():
            expected = base_table.representative_address(last_asn)
            for asn in set(sim.placer.hosting_asns(guid)):
                entry = sim.nodes[asn].store.get(guid)
                assert entry is not None
                assert entry.locators == (expected,)


class TestWorkloadThroughBothEngines:
    def test_statistical_agreement(self, topology, base_table, router):
        """The instant resolver and the DES must produce identical latency
        samples for the same generated workload."""
        workload = WorkloadGenerator(
            topology, WorkloadConfig(n_guids=80, n_lookups=500, seed=6)
        ).generate()

        resolver = DMapResolver(base_table, router, k=5)
        instant = np.sort(workload.run_through_resolver(resolver, base_table))

        sim = DMapSimulation(topology, base_table, k=5, router=router, seed=6)
        workload.apply_to_simulation(sim, base_table)
        sim.run()
        simulated = np.sort(sim.metrics.rtts())

        np.testing.assert_allclose(instant, simulated, rtol=1e-9)


def table_topology(router):
    """The topology backing a router (helper for mobility tests)."""
    return router.topology
