"""Property tests: the vectorized interval index must agree with the trie."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.interval_index import HOLE, IntervalIndex
from repro.bgp.prefix import Announcement, Prefix
from repro.bgp.trie import PrefixTrie
from repro.errors import EmptyPrefixTableError

from .test_trie import announcement_sets, small_ann


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(EmptyPrefixTableError):
            IntervalIndex([], bits=8)

    def test_single_prefix(self):
        idx = IntervalIndex([small_ann(64, 2, 7)], bits=8)
        assert idx.lookup_one(70) == 7
        assert idx.lookup_one(0) == HOLE
        assert idx.announced_span() == 64
        assert idx.announced_fraction() == pytest.approx(0.25)

    def test_full_cover(self):
        idx = IntervalIndex([Announcement(Prefix(0, 0, 8), 3)], bits=8)
        assert idx.announced_fraction() == 1.0
        assert (idx.lookup_batch(np.arange(256)) == 3).all()


class TestAgreementWithTrie:
    @given(announcement_sets())
    @settings(max_examples=150)
    def test_every_address_agrees(self, announcements):
        trie = PrefixTrie(bits=8)
        for a in announcements:
            trie.insert(a)
        idx = IntervalIndex(announcements, bits=8)
        owners = idx.lookup_batch(np.arange(256, dtype=np.uint64))
        for addr in range(256):
            expected = trie.longest_prefix_match(addr)
            expected_asn = HOLE if expected is None else expected.asn
            assert owners[addr] == expected_asn, f"mismatch at address {addr}"

    @given(announcement_sets())
    def test_announced_span_agrees(self, announcements):
        trie = PrefixTrie(bits=8)
        for a in announcements:
            trie.insert(a)
        idx = IntervalIndex(announcements, bits=8)
        assert idx.announced_span() == trie.announced_span()


class TestEffectiveSpans:
    def test_overlap_assigns_to_most_specific(self):
        outer = small_ann(0, 2, 1)  # 0-63
        inner = small_ann(0, 4, 2)  # 0-15
        idx = IntervalIndex([outer, inner], bits=8)
        spans = idx.effective_span_by_asn()
        assert spans[2] == 16
        assert spans[1] == 48

    @given(announcement_sets())
    def test_spans_sum_to_announced(self, announcements):
        idx = IntervalIndex(announcements, bits=8)
        spans = idx.effective_span_by_asn()
        assert sum(spans.values()) == idx.announced_span()

    @given(announcement_sets())
    def test_spans_match_per_address_count(self, announcements):
        idx = IntervalIndex(announcements, bits=8)
        owners = idx.lookup_batch(np.arange(256, dtype=np.uint64))
        spans = idx.effective_span_by_asn()
        for asn, span in spans.items():
            assert span == int((owners == asn).sum())


class TestBatchSemantics:
    def test_is_announced_batch(self):
        idx = IntervalIndex([small_ann(0, 1, 5)], bits=8)  # 0-127
        flags = idx.is_announced_batch(np.array([0, 127, 128, 255], dtype=np.uint64))
        assert flags.tolist() == [True, True, False, False]

    def test_lookup_batch_preserves_shape(self):
        idx = IntervalIndex([small_ann(0, 1, 5)], bits=8)
        out = idx.lookup_batch(np.zeros((3,), dtype=np.uint64))
        assert out.shape == (3,)

    def test_realistic_scale(self, base_table):
        # The session-wide generated table: the interval index must agree
        # with the trie on a large random address sample.
        idx = base_table.build_interval_index()
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 2**32, size=3000, dtype=np.uint64)
        owners = idx.lookup_batch(addrs)
        for addr, owner in zip(addrs.tolist()[:500], owners.tolist()[:500]):
            expected = base_table.resolve(int(addr))
            assert owner == (HOLE if expected is None else expected.asn)
        assert idx.announced_fraction() == pytest.approx(
            base_table.announcement_ratio(), rel=1e-9
        )
