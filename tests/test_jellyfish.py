"""Tests for the Jellyfish topology decomposition (§V-A)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.datasets import line_fixture, star_fixture
from repro.topology.graph import ASInfo, ASTopology
from repro.topology.jellyfish import decompose


class TestStarFixture:
    def test_hub_is_root_and_leaves_hang(self):
        dec = decompose(star_fixture(n_leaves=5))
        assert dec.root == 1
        # Core = {hub, one leaf} (the maximal clique containing the hub is
        # an edge); every other leaf is a degree-1 node at distance 1 from
        # the core, i.e. Hang-0, i.e. Layer(1).
        assert 1 in dec.core
        assert len(dec.core) == 2
        assert dec.n_layers == 2
        assert set(dec.layers[1]) == set(range(2, 7)) - set(dec.core)

    def test_ratios_sum_to_one(self):
        dec = decompose(star_fixture(n_leaves=7))
        assert dec.layer_ratios().sum() == pytest.approx(1.0)


class TestLineFixture:
    def test_line_layers(self):
        # 1-2-3-4-5: the max-degree node is 2 (ties to lowest ASN); the
        # maximal clique containing it is an edge.
        dec = decompose(line_fixture(n=5))
        layer_of = dec.layer_of()
        assert set(layer_of) == {1, 2, 3, 4, 5}
        # Endpoints are degree-1, so they are hangs of the layer inside.
        assert all(asn in layer_of for asn in (1, 5))


class TestPartitionProperties:
    @pytest.fixture(scope="class")
    def generated(self):
        from repro.topology.generator import (
            generate_internet_topology,
            small_scale_config,
        )

        return generate_internet_topology(small_scale_config(n_as=200), seed=2)

    def test_every_as_in_exactly_one_layer(self, generated):
        dec = decompose(generated)
        seen = []
        for layer in dec.layers:
            seen.extend(layer)
        assert sorted(seen) == generated.asns()

    def test_core_is_a_clique(self, generated):
        dec = decompose(generated)
        for i, a in enumerate(dec.core):
            for b in dec.core[i + 1 :]:
                assert b in generated.neighbors(a)

    def test_root_has_max_degree(self, generated):
        dec = decompose(generated)
        max_degree = max(generated.degree(a) for a in generated.asns())
        assert generated.degree(dec.root) == max_degree

    def test_hangs_are_degree_one(self, generated):
        dec = decompose(generated)
        for hang in dec.hangs:
            for asn in hang:
                assert generated.degree(asn) == 1

    def test_shell_distances_consistent(self, generated):
        # Shell-j nodes must have a neighbor in shell/core distance j-1.
        dec = decompose(generated)
        layer_index = {}
        core_set = set(dec.core)
        # Recompute distance-to-core via BFS for independent verification.
        dist = {a: 0 for a in dec.core}
        frontier = list(dec.core)
        level = 0
        while frontier:
            level += 1
            nxt = []
            for a in frontier:
                for n in generated.neighbors(a):
                    if n not in dist:
                        dist[n] = level
                        nxt.append(n)
            frontier = nxt
        for j, shell in enumerate(dec.shells):
            for asn in shell:
                assert dist[asn] == j

    def test_ratios_sum_to_one(self, generated):
        assert decompose(generated).layer_ratios().sum() == pytest.approx(1.0)


class TestErrors:
    def test_empty_topology(self):
        with pytest.raises(TopologyError):
            decompose(ASTopology())

    def test_disconnected_topology(self):
        topo = ASTopology()
        for asn in (1, 2, 3, 4):
            topo.add_as(ASInfo(asn))
        topo.add_link(1, 2, 1.0)
        topo.add_link(3, 4, 1.0)
        with pytest.raises(TopologyError, match="unreachable"):
            decompose(topo)
