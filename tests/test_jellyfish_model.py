"""Tests for the §V analytical response-time bound."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.jellyfish_model import (
    AnalyticalModel,
    PAPER_C0,
    PAPER_C1,
    expected_min_distance_bound,
    fit_constants,
    p_jl,
    q_l,
    response_time_upper_bound_ms,
)
from repro.errors import ConfigurationError

RATIOS = (0.1, 0.2, 0.4, 0.3)


@st.composite
def ratio_vectors(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    raw = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    total = sum(raw)
    return tuple(r / total for r in raw)


class TestPjl:
    def test_saturates_at_one_for_small_l(self):
        # l - j <= 0: the window covers every layer.
        assert p_jl(RATIOS, j=2, l=1) == 1.0
        assert p_jl(RATIOS, j=2, l=2) == 1.0

    def test_tail_sum(self):
        # l - j = 2: layers 2 and 3.
        assert p_jl(RATIOS, j=0, l=2) == pytest.approx(0.4 + 0.3)

    def test_zero_beyond_layers(self):
        assert p_jl(RATIOS, j=0, l=10) == 0.0

    def test_monotone_nonincreasing_in_l(self):
        values = [p_jl(RATIOS, 1, l) for l in range(0, 8)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            p_jl(RATIOS, j=4, l=1)
        with pytest.raises(ConfigurationError):
            p_jl((0.5, 0.4), j=0, l=1)  # does not sum to 1


class TestQl:
    def test_increases_with_k(self):
        for l in (1, 2, 3):
            values = [q_l(RATIOS, l, k) for k in (1, 2, 5, 10)]
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded_by_one(self):
        for l in range(0, 8):
            for k in (1, 3, 7):
                assert 0.0 <= q_l(RATIOS, l, k) <= 1.0

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            q_l(RATIOS, 1, 0)

    @given(ratio_vectors(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50)
    def test_nondecreasing_in_l(self, ratios, k):
        values = [q_l(ratios, l, k) for l in range(1, 2 * len(ratios))]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


class TestBound:
    def test_decreasing_in_k(self):
        values = [expected_min_distance_bound(RATIOS, k) for k in range(1, 10)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_positive(self):
        assert expected_min_distance_bound(RATIOS, 1) > 0

    def test_affine_mapping(self):
        d = expected_min_distance_bound(RATIOS, 3)
        assert response_time_upper_bound_ms(RATIOS, 3) == pytest.approx(
            PAPER_C0 * d + PAPER_C1
        )
        assert response_time_upper_bound_ms(RATIOS, 3, c0=0.0, c1=5.0) == 5.0

    def test_negative_c0_rejected(self):
        with pytest.raises(ConfigurationError):
            response_time_upper_bound_ms(RATIOS, 1, c0=-1.0)

    @given(ratio_vectors())
    @settings(max_examples=50)
    def test_diminishing_returns(self, ratios):
        b1 = expected_min_distance_bound(ratios, 1)
        b2 = expected_min_distance_bound(ratios, 2)
        b10 = expected_min_distance_bound(ratios, 10)
        b11 = expected_min_distance_bound(ratios, 11)
        assert (b1 - b2) >= (b10 - b11) - 1e-9


class TestAnalyticalModel:
    def test_sweep(self):
        model = AnalyticalModel("test", RATIOS)
        curve = model.sweep([1, 2, 3])
        assert len(curve) == 3
        assert curve[0] >= curve[1] >= curve[2]
        assert model.n_layers == 4

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalyticalModel("bad", (0.5, 0.1))


class TestFitConstants:
    def test_recovers_exact_line(self):
        distances = np.array([1.0, 2.0, 3.0, 4.0])
        rtts = 10.6 * distances + 8.3
        c0, c1 = fit_constants(distances, rtts)
        assert c0 == pytest.approx(10.6)
        assert c1 == pytest.approx(8.3)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        distances = rng.uniform(1, 8, size=200)
        rtts = 5.0 * distances + 2.0 + rng.normal(0, 0.1, size=200)
        c0, c1 = fit_constants(distances, rtts)
        assert c0 == pytest.approx(5.0, abs=0.1)
        assert c1 == pytest.approx(2.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_constants([1.0], [2.0])
        with pytest.raises(ConfigurationError):
            fit_constants([1.0, 2.0], [1.0])
