"""Tests for the latency and geography models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology.latency import GeographyModel, LatencyModel


class TestLatencyModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(per_km_ms=0).validate()
        with pytest.raises(ConfigurationError):
            LatencyModel(intra_median_ms=0).validate()
        with pytest.raises(ConfigurationError):
            LatencyModel(outlier_fraction=1.0).validate()
        with pytest.raises(ConfigurationError):
            LatencyModel(outlier_low_ms=100, outlier_high_ms=50).validate()
        LatencyModel().validate()

    def test_link_latency_scales_with_distance(self):
        model = LatencyModel()
        near = model.link_latency_ms((0, 0), (10, 0))
        far = model.link_latency_ms((0, 0), (5000, 0))
        assert model.link_floor_ms < near < far
        assert far - near == pytest.approx(model.per_km_ms * 4990)

    def test_link_latency_symmetric(self):
        model = LatencyModel()
        assert model.link_latency_ms((1, 2), (3, 4)) == model.link_latency_ms(
            (3, 4), (1, 2)
        )

    def test_intra_latencies_median(self):
        model = LatencyModel(outlier_fraction=0.0)
        rng = np.random.default_rng(0)
        draws = model.intra_latencies_ms(20_000, rng)
        assert np.median(draws) == pytest.approx(model.intra_median_ms, rel=0.05)
        assert (draws > 0).all()

    def test_outliers_present_at_configured_rate(self):
        model = LatencyModel(outlier_fraction=0.01)
        rng = np.random.default_rng(1)
        draws = model.intra_latencies_ms(50_000, rng)
        extreme = (draws >= model.outlier_low_ms).mean()
        assert extreme == pytest.approx(0.01, abs=0.005)

    def test_outliers_can_be_disabled(self):
        model = LatencyModel(outlier_fraction=0.05)
        rng = np.random.default_rng(2)
        draws = model.intra_latencies_ms(10_000, rng, allow_outliers=False)
        # Lognormal tail can exceed 150 ms very rarely; outliers would be ~5%.
        assert (draws >= model.outlier_low_ms).mean() < 0.01

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel().intra_latencies_ms(-1, np.random.default_rng(0))

    def test_zero_count(self):
        assert len(LatencyModel().intra_latencies_ms(0, np.random.default_rng(0))) == 0


class TestGeographyModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeographyModel(width_km=0).validate()
        with pytest.raises(ConfigurationError):
            GeographyModel(stub_spread_km=-1).validate()

    def test_random_site_in_bounds(self):
        geo = GeographyModel()
        rng = np.random.default_rng(0)
        for _ in range(100):
            x, y = geo.random_site(rng)
            assert 0 <= x <= geo.width_km
            assert 0 <= y <= geo.height_km

    def test_near_clamps_to_world(self):
        geo = GeographyModel(width_km=100, height_km=100)
        rng = np.random.default_rng(0)
        for _ in range(200):
            x, y = geo.near((0.0, 0.0), spread_km=500, rng=rng)
            assert 0 <= x <= 100
            assert 0 <= y <= 100

    def test_near_is_actually_near(self):
        geo = GeographyModel()
        rng = np.random.default_rng(0)
        anchor = (9000.0, 4500.0)
        points = np.array([geo.near(anchor, 100.0, rng) for _ in range(500)])
        mean_dist = np.hypot(
            points[:, 0] - anchor[0], points[:, 1] - anchor[1]
        ).mean()
        assert mean_dist < 300.0
