"""Tier-1 gate: ``src/repro`` must stay lint-clean.

This is the machine-checked version of the repo's determinism
conventions (see DESIGN.md "Determinism conventions"): any PR that
reintroduces an unseeded RNG, a wall-clock read, hash-order iteration
in sim-critical packages, or the hygiene defects in HYG0xx fails here
with file:line diagnostics.
"""

from pathlib import Path

from repro.tooling import lint_paths

SRC_REPRO = Path(__file__).parent.parent / "src" / "repro"


def test_src_repro_is_lint_clean():
    assert SRC_REPRO.is_dir(), SRC_REPRO
    report = lint_paths([str(SRC_REPRO)])
    assert report.files_checked > 50  # the whole package, not a subset
    formatted = "\n".join(d.format_human() for d in report.diagnostics)
    assert report.ok(), f"repro-lint violations:\n{formatted}"
    assert report.diagnostics == [], f"repro-lint violations:\n{formatted}"
