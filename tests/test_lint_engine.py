"""Engine-level tests: suppressions, module derivation, discovery,
rule resolution, and the JSON report schema."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.tooling import (
    Severity,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.tooling.diagnostics import JSON_SCHEMA_VERSION
from repro.tooling.engine import derive_module

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


# -- suppressions -----------------------------------------------------


def test_line_suppression_silences_only_that_rule_and_line():
    source = (
        "import random  # lint: disable=DET001\n"
        "import random\n"
    )
    diagnostics = lint_source(source, module="repro.sim.fixture")
    assert [(d.rule_id, d.line) for d in diagnostics] == [("DET001", 2)]


def test_line_suppression_accepts_comma_separated_ids():
    source = "import time\nx = time.time()  # lint: disable=DET003,DET001\n"
    assert lint_source(source, module="repro.sim.fixture") == []


def test_line_suppression_all_keyword():
    source = "import random  # lint: disable=all\n"
    assert lint_source(source, module="repro.sim.fixture") == []


def test_file_wide_suppression():
    source = (
        "# lint: disable-file=HYG003\n"
        "try:\n    pass\nexcept:\n    pass\n"
        "try:\n    pass\nexcept:\n    pass\n"
    )
    assert lint_source(source, module="repro.sim.fixture") == []


def test_suppression_fixture_only_unsuppressed_finding_survives():
    diagnostics = lint_source(
        (FIXTURES / "suppressions.py").read_text(encoding="utf-8"),
        module="suppressions",
    )
    assert [d.rule_id for d in diagnostics] == ["DET003"]
    assert diagnostics[0].line == 28


def test_suppressed_findings_are_counted_in_reports(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random  # lint: disable=DET001\n")
    report = lint_paths([str(tmp_path)])
    assert report.diagnostics == []
    assert report.suppressed_count == 1


# -- module derivation and scoping ------------------------------------


@pytest.mark.parametrize(
    "path,expected",
    [
        ("src/repro/sim/engine.py", "repro.sim.engine"),
        ("src/repro/core/__init__.py", "repro.core"),
        ("src/repro/__init__.py", "repro"),
        ("tests/lint_fixtures/det001_bad.py", "det001_bad"),
    ],
)
def test_derive_module(path, expected):
    assert derive_module(Path(path)) == expected


def test_scoped_rules_skip_fixture_files_on_disk():
    # det004_bad.py lives outside any repro package dir, so the scoped
    # DET004 rule must not fire when linting it by path.
    report = lint_paths([str(FIXTURES / "det004_bad.py")])
    assert [d for d in report.diagnostics if d.rule_id == "DET004"] == []


# -- discovery --------------------------------------------------------


def test_iter_python_files_skips_caches_and_sorts(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "note.txt").write_text("not python\n")
    names = [p.name for p in iter_python_files([str(tmp_path)])]
    assert names == ["a.py", "b.py"]


def test_lint_paths_missing_target_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths(["no/such/dir"])


def test_unparseable_file_becomes_syntax_diagnostic(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    report = lint_paths([str(tmp_path)])
    assert [d.rule_id for d in report.diagnostics] == ["SYNTAX"]
    assert report.diagnostics[0].severity is Severity.ERROR
    assert not report.ok()


# -- rule registry ----------------------------------------------------


def test_all_rules_registered_and_ordered():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == sorted(ids)
    assert {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "DET005",
        "HYG001",
        "HYG002",
        "HYG003",
        "HYG004",
        "HYG005",
    } <= set(ids)


def test_resolve_rules_select_and_ignore():
    assert [r.rule_id for r in resolve_rules(select=["DET001"])] == ["DET001"]
    remaining = {r.rule_id for r in resolve_rules(ignore=["DET001"])}
    assert "DET001" not in remaining and "DET002" in remaining
    with pytest.raises(KeyError):
        resolve_rules(select=["NOPE999"])


# -- JSON schema ------------------------------------------------------


def test_report_json_schema(tmp_path):
    (tmp_path / "mod.py").write_text("import random\n")
    payload = lint_paths([str(tmp_path)]).to_dict()
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["files_checked"] == 1
    assert payload["summary"] == {
        "errors": 1,
        "warnings": 0,
        "suppressed": 0,
    }
    (diagnostic,) = payload["diagnostics"]
    assert set(diagnostic) == {
        "rule",
        "severity",
        "path",
        "line",
        "col",
        "message",
    }
    assert diagnostic["rule"] == "DET001"
    assert diagnostic["severity"] == "error"
    assert diagnostic["line"] == 1
    # The whole payload must round-trip through json.
    assert json.loads(json.dumps(payload)) == payload


# -- CLI --------------------------------------------------------------


def _run_cli(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.tooling.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


def test_cli_flags_violations_with_locations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    result = _run_cli(str(bad))
    assert result.returncode == 1
    assert f"{bad}:1:1: DET001" in result.stdout
    assert "FAILED" in result.stdout


def test_cli_clean_tree_exits_zero(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    result = _run_cli(str(good))
    assert result.returncode == 0
    assert "ok" in result.stdout


def test_cli_json_output_parses(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    result = _run_cli("--format", "json", str(bad))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["summary"]["errors"] == 1
    assert payload["diagnostics"][0]["rule"] == "DET001"


def test_cli_list_rules():
    result = _run_cli("--list-rules")
    assert result.returncode == 0
    assert "DET001" in result.stdout
    assert "HYG005" in result.stdout


def test_cli_unknown_rule_is_usage_error(tmp_path):
    result = _run_cli("--select", "NOPE999", str(tmp_path))
    assert result.returncode == 2
    assert "NOPE999" in result.stderr


def test_cli_empty_rule_set_is_usage_error(tmp_path):
    result = _run_cli("--select", "DET001", "--ignore", "DET001", str(tmp_path))
    assert result.returncode == 2
    assert "no rules" in result.stderr


def test_cli_select_limits_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\ntry:\n    pass\nexcept:\n    pass\n")
    result = _run_cli("--select", "HYG003", str(bad))
    assert result.returncode == 1
    assert "HYG003" in result.stdout
    assert "DET001" not in result.stdout
