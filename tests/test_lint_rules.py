"""Per-rule positive/negative tests over the files in lint_fixtures/.

Each rule has a ``*_bad.py`` fixture that must produce exactly the
expected findings and a ``*_good.py`` fixture that must produce none.
Package-scoped rules get their fixture linted under an in-scope module
path (and re-linted out of scope to prove the scoping works).
"""

from pathlib import Path

import pytest

from repro.tooling import lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"

# rule id -> (module path to lint under, expected finding count in *_bad.py)
RULE_CASES = {
    "DET001": ("repro.workload.fixture", 2),
    "DET002": ("repro.workload.fixture", 4),
    "DET003": ("repro.sim.fixture", 4),
    "DET004": ("repro.sim.fixture", 4),
    "DET005": ("repro.experiments.fixture", 2),
    "HYG001": ("repro.workload.fixture", 4),
    "HYG002": ("repro.sim.fixture", 2),
    "HYG003": ("repro.bgp.fixture", 1),
    "HYG004": ("repro.analysis.fixture", 1),
    "HYG005": ("repro.core.fixture", 3),
}

#: Rules restricted to package subtrees, with a module that must be exempt.
SCOPED_RULES = {
    "DET004": "repro.experiments.fixture",
    "HYG002": "repro.experiments.fixture",
    "HYG005": "repro.workload.fixture",
}


def _fixture(rule_id: str, kind: str) -> str:
    path = FIXTURES / f"{rule_id.lower()}_{kind}.py"
    return path.read_text(encoding="utf-8")


@pytest.mark.parametrize("rule_id", sorted(RULE_CASES))
def test_bad_fixture_is_flagged(rule_id):
    module, expected_count = RULE_CASES[rule_id]
    diagnostics = lint_source(_fixture(rule_id, "bad"), module=module)
    flagged = [d for d in diagnostics if d.rule_id == rule_id]
    assert len(flagged) == expected_count, [d.format_human() for d in diagnostics]
    # Other rules must not be tripping over the same fixture.
    assert flagged == diagnostics


@pytest.mark.parametrize("rule_id", sorted(RULE_CASES))
def test_good_fixture_is_clean(rule_id):
    module, _ = RULE_CASES[rule_id]
    diagnostics = lint_source(_fixture(rule_id, "good"), module=module)
    assert diagnostics == [], [d.format_human() for d in diagnostics]


@pytest.mark.parametrize("rule_id", sorted(SCOPED_RULES))
def test_scoped_rule_exempts_out_of_scope_modules(rule_id):
    out_of_scope_module = SCOPED_RULES[rule_id]
    diagnostics = lint_source(
        _fixture(rule_id, "bad"), module=out_of_scope_module
    )
    assert [d for d in diagnostics if d.rule_id == rule_id] == []


def test_diagnostics_carry_real_locations():
    diagnostics = lint_source(
        _fixture("DET001", "bad"), path="det001_bad.py", module="repro.x"
    )
    assert all(d.path == "det001_bad.py" for d in diagnostics)
    assert [d.line for d in diagnostics] == [3, 4]
    assert all(d.col >= 1 for d in diagnostics)


def test_det005_accepts_any_explicit_seed_expression():
    source = (
        "import numpy as np\n"
        "def build(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    assert lint_source(source, module="repro.experiments.fixture") == []


def test_hyg004_bails_out_on_star_imports():
    source = "from math import *\n__all__ = ['sqrt', 'definitely_missing']\n"
    diagnostics = lint_source(source, module="repro.analysis.fixture")
    assert [d for d in diagnostics if d.rule_id == "HYG004"] == []
