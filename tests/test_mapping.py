"""Unit tests for mapping entries and the per-AS store."""

import pytest

from repro.core.guid import GUID, MAX_LOCATORS, NetworkAddress
from repro.core.mapping import MappingEntry, MappingStore
from repro.errors import ConfigurationError, MappingNotFoundError


def na(v: int) -> NetworkAddress:
    return NetworkAddress(v)


def entry(guid_value=1, locators=(1,), version=0, timestamp=0.0) -> MappingEntry:
    return MappingEntry(
        GUID(guid_value), tuple(na(v) for v in locators), version, timestamp
    )


class TestMappingEntry:
    def test_requires_a_locator(self):
        with pytest.raises(ConfigurationError):
            MappingEntry(GUID(1), ())

    def test_rejects_too_many_locators(self):
        with pytest.raises(ConfigurationError):
            entry(locators=tuple(range(MAX_LOCATORS + 1)))

    def test_rejects_negative_version(self):
        with pytest.raises(ConfigurationError):
            entry(version=-1)

    def test_primary_locator(self):
        e = entry(locators=(7, 9))
        assert e.primary_locator == na(7)

    def test_with_locators_bumps_version(self):
        e = entry(version=3)
        e2 = e.with_locators([na(5)], timestamp=10.0)
        assert e2.version == 4
        assert e2.locators == (na(5),)
        assert e2.timestamp == 10.0
        assert e2.guid == e.guid

    def test_size_bits_matches_paper(self):
        # §IV-A: 160 + 32*5 + 32 = 352 bits regardless of locators in use.
        assert entry(locators=(1,)).size_bits() == 352
        assert entry(locators=(1, 2, 3)).size_bits() == 352


class TestMappingStore:
    def test_insert_and_lookup(self):
        store = MappingStore(owner_asn=9)
        e = entry()
        assert store.insert(e)
        assert store.lookup(e.guid) == e
        assert len(store) == 1
        assert e.guid in store

    def test_lookup_missing_raises_with_context(self):
        store = MappingStore(owner_asn=9)
        with pytest.raises(MappingNotFoundError) as exc_info:
            store.lookup(GUID(5))
        assert exc_info.value.where == 9

    def test_get_is_non_raising(self):
        assert MappingStore().get(GUID(5)) is None

    def test_stale_write_rejected(self):
        store = MappingStore()
        assert store.insert(entry(version=2))
        assert not store.insert(entry(version=1))
        assert store.lookup(GUID(1)).version == 2
        assert store.stats.rejected_stale == 1

    def test_equal_version_rewrite_allowed(self):
        # Replays of the same update are idempotent, not rejected.
        store = MappingStore()
        store.insert(entry(version=1, locators=(1,)))
        assert store.insert(entry(version=1, locators=(2,)))
        assert store.lookup(GUID(1)).locators == (na(2),)

    def test_delete(self):
        store = MappingStore()
        store.insert(entry())
        assert store.delete(GUID(1))
        assert not store.delete(GUID(1))
        assert len(store) == 0

    def test_pop_all_empties_store(self):
        store = MappingStore()
        store.insert(entry(guid_value=1))
        store.insert(entry(guid_value=2))
        popped = store.pop_all()
        assert {e.guid.value for e in popped} == {1, 2}
        assert len(store) == 0

    def test_entries_for_guids_skips_absent(self):
        store = MappingStore()
        store.insert(entry(guid_value=1))
        got = store.entries_for_guids([GUID(1), GUID(2)])
        assert [e.guid.value for e in got] == [1]

    def test_stats_counters(self):
        store = MappingStore()
        store.insert(entry(version=0))
        store.insert(entry(version=1))
        store.lookup(GUID(1))
        store.get(GUID(99))  # get() does not touch stats
        with pytest.raises(MappingNotFoundError):
            store.lookup(GUID(99))
        assert store.stats.inserts == 1
        assert store.stats.updates == 1
        assert store.stats.lookups == 2
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_storage_bits(self):
        store = MappingStore()
        store.insert(entry(guid_value=1))
        store.insert(entry(guid_value=2))
        assert store.storage_bits() == 2 * 352

    def test_iteration(self):
        store = MappingStore()
        store.insert(entry(guid_value=1))
        store.insert(entry(guid_value=2))
        assert {e.guid.value for e in store} == {1, 2}
