"""Tests for metrics collection and summary statistics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import (
    MetricsCollector,
    QueryRecord,
    cdf_points,
    fraction_below,
    normalized_load_ratios,
    summarize,
)


def record(rtt=10.0, success=True, used_local=False, attempts=1):
    return QueryRecord(
        guid_value=1,
        source_asn=1,
        issued_at=100.0,
        completed_at=100.0 + rtt,
        served_by=2 if success else None,
        attempts=attempts,
        used_local=used_local,
        success=success,
    )


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([10.0, 20.0, 30.0, 40.0, 100.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(40.0)
        assert summary.median == pytest.approx(30.0)
        assert summary.max == 100.0
        assert summary.p95 == pytest.approx(np.percentile([10, 20, 30, 40, 100], 95))

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize([])

    def test_as_row_format(self):
        row = summarize([10.0, 20.0]).as_row()
        assert "mean=15.0ms" in row
        assert "median=15.0ms" in row
        assert "success=100.0%" in row

    def test_failed_count_and_success_rate(self):
        summary = summarize([10.0, 20.0, 30.0], failed=1)
        assert summary.failed == 1
        assert summary.success_rate == pytest.approx(0.75)
        assert "success=75.0% (1 failed)" in summary.as_row()

    def test_negative_failed_rejected(self):
        with pytest.raises(SimulationError):
            summarize([1.0], failed=-1)


class TestCdf:
    def test_full_cdf(self):
        xs, ys = cdf_points([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert ys.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_downsampled_exact_count(self):
        xs, ys = cdf_points(np.arange(1000.0), n_points=10)
        assert len(xs) == 10
        assert len(ys) == 10
        assert ys[-1] == 1.0

    def test_downsampled_no_rounding_collapse(self):
        # Rounded linspace indices can collide only via np.unique-style
        # post-processing; the quantile indices themselves are strictly
        # increasing, so every requested point count is honoured.
        for n_points in (2, 3, 7, 63, 64, 65):
            xs, _ys = cdf_points(np.arange(100.0), n_points=n_points)
            assert len(xs) == n_points

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            cdf_points([])

    def test_fraction_below(self):
        assert fraction_below([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5
        # Inclusive CDF semantics: a sample at the threshold counts.
        assert fraction_below([1.0], 1.0) == 1.0
        assert fraction_below([1.0, 2.0], 1.0) == 0.5
        assert fraction_below([1.0], 0.999) == 0.0


class TestCollector:
    def test_separates_failures(self):
        collector = MetricsCollector()
        collector.add(record(rtt=10.0))
        collector.add(record(rtt=20.0, success=False))
        assert len(collector.records) == 1
        assert len(collector.failed) == 1
        assert collector.rtts().tolist() == [10.0]

    def test_local_hit_fraction(self):
        collector = MetricsCollector()
        collector.add(record(used_local=True))
        collector.add(record(used_local=False))
        assert collector.local_hit_fraction() == 0.5

    def test_local_hit_fraction_empty(self):
        assert MetricsCollector().local_hit_fraction() == 0.0

    def test_mean_attempts(self):
        collector = MetricsCollector()
        collector.add(record(attempts=1))
        collector.add(record(attempts=3))
        assert collector.mean_attempts() == 2.0

    def test_summary_and_cdf_delegate(self):
        collector = MetricsCollector()
        for rtt in (10.0, 20.0, 30.0):
            collector.add(record(rtt=rtt))
        assert collector.summary().median == 20.0
        xs, _ys = collector.cdf()
        assert len(xs) == 3

    def test_rtt_property(self):
        r = record(rtt=42.0)
        assert r.rtt_ms == pytest.approx(42.0)


class TestNormalizedLoadRatio:
    def test_paper_example(self):
        # §IV-B.2c: an AS announcing a /8 (0.39% of space) holding 2% of
        # 1M GUIDs has NLR ≈ 5.
        spans = {1: 1 << 24, 2: (1 << 32) - (1 << 24)}
        counts = {1: 20_000, 2: 980_000}
        ratios = normalized_load_ratios(counts, spans)
        nlr_as1 = ratios[0] if list(spans)[0] == 1 else ratios[1]
        assert nlr_as1 == pytest.approx(
            (20_000 / 1_000_000) / ((1 << 24) / (1 << 32)), rel=1e-6
        )
        assert nlr_as1 == pytest.approx(5.12, rel=0.01)

    def test_ideal_distribution_is_one(self):
        spans = {1: 100, 2: 300}
        counts = {1: 25, 2: 75}
        assert normalized_load_ratios(counts, spans).tolist() == pytest.approx(
            [1.0, 1.0]
        )

    def test_zero_load_as_included(self):
        spans = {1: 100, 2: 100}
        counts = {1: 10}
        ratios = normalized_load_ratios(counts, spans)
        assert 0.0 in ratios.tolist()

    def test_empty_spans_rejected(self):
        with pytest.raises(SimulationError):
            normalized_load_ratios({1: 5}, {})

    def test_zero_totals_rejected(self):
        with pytest.raises(SimulationError):
            normalized_load_ratios({}, {1: 100})
