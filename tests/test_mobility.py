"""Tests for the host mobility model."""

import numpy as np
import pytest

from repro.core.guid import GUID
from repro.errors import WorkloadError
from repro.workload.generator import EventKind
from repro.workload.mobility import (
    MobilityModel,
    PAPER_UPDATES_PER_DAY,
    update_traffic_gbps,
)

DAY_MS = 86_400_000.0


class TestMoveSchedules:
    def test_rate_matches_configuration(self, topology):
        model = MobilityModel(topology, updates_per_day=100, seed=0)
        guid = GUID.from_name("car")
        moves = model.moves_for_host(guid, topology.asns()[0], horizon_ms=DAY_MS)
        # Poisson(100) over one day.
        assert 60 <= len(moves) <= 140

    def test_moves_within_horizon_and_ordered(self, topology):
        model = MobilityModel(topology, seed=1)
        moves = model.moves_for_host(
            GUID(1), topology.asns()[0], horizon_ms=DAY_MS / 4
        )
        times = [m.time_ms for m in moves]
        assert times == sorted(times)
        assert all(0 <= t < DAY_MS / 4 for t in times)

    def test_moves_chain_attachments(self, topology):
        model = MobilityModel(topology, seed=2)
        start = topology.asns()[0]
        moves = model.moves_for_host(GUID(1), start, horizon_ms=DAY_MS)
        current = start
        for move in moves:
            assert move.from_asn == current
            current = move.to_asn

    def test_neighborhood_regime_moves_to_neighbors(self, topology):
        model = MobilityModel(topology, regime="neighborhood", seed=3)
        start = topology.asns()[5]
        moves = model.moves_for_host(GUID(1), start, horizon_ms=DAY_MS / 2)
        for move in moves:
            assert move.to_asn in topology.neighbors(move.from_asn)

    def test_global_regime_reaches_far(self, topology):
        model = MobilityModel(topology, regime="global", seed=4)
        start = topology.asns()[5]
        moves = model.moves_for_host(GUID(1), start, horizon_ms=DAY_MS)
        non_neighbor = sum(
            1
            for m in moves
            if m.to_asn not in topology.neighbors(m.from_asn)
        )
        assert non_neighbor > 0

    def test_population_schedule_merged_sorted(self, topology):
        model = MobilityModel(topology, seed=5)
        homes = {GUID(i): topology.asns()[i] for i in range(5)}
        moves = model.moves_for_population(homes, horizon_ms=DAY_MS / 10)
        times = [m.time_ms for m in moves]
        assert times == sorted(times)
        assert {m.guid for m in moves} <= set(homes)

    def test_to_update_events(self, topology):
        model = MobilityModel(topology, seed=6)
        moves = model.moves_for_host(GUID(1), topology.asns()[0], DAY_MS / 10)
        events = MobilityModel.to_update_events(moves)
        assert len(events) == len(moves)
        for move, event in zip(moves, events):
            assert event.kind is EventKind.UPDATE
            assert event.source_asn == move.to_asn
            assert event.time_ms == move.time_ms

    def test_validation(self, topology):
        with pytest.raises(WorkloadError):
            MobilityModel(topology, updates_per_day=0)
        with pytest.raises(WorkloadError):
            MobilityModel(topology, regime="teleport")
        model = MobilityModel(topology)
        with pytest.raises(WorkloadError):
            model.moves_for_host(GUID(1), topology.asns()[0], -1.0)


class TestTrafficFormula:
    def test_paper_headline_number(self):
        # §IV-A: 5B hosts × 100 updates/day × K=5 × 352 bits ≈ 10 Gb/s.
        gbps = update_traffic_gbps(5e9, PAPER_UPDATES_PER_DAY, 352.0 * 5)
        assert gbps == pytest.approx(10.2, abs=0.1)

    def test_scales_linearly(self):
        assert update_traffic_gbps(2e9) == pytest.approx(
            2 * update_traffic_gbps(1e9)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            update_traffic_gbps(-1)
        with pytest.raises(WorkloadError):
            update_traffic_gbps(1e9, bits_per_update=0)
