"""Client fault paths: loss, dead replicas, exhaustion, retry schedules."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import LookupFailedError, WriteFailedError
from repro.net.client import AttemptPlan, ClientConfig, attempt_schedule
from repro.net.cluster import ClusterConfig, LocalCluster
from repro.obs.trace import OUTCOME_HIT, OUTCOME_TIMEOUT, CollectingTracer

#: Short adaptive-timeout floor (virtual ms) so fault scenarios that
#: must exhaust retries finish in tens of wall milliseconds.
FAST_CLIENT = ClientConfig(
    timeout_floor_ms=150.0,
    max_attempts=2,
    backoff_base_ms=20.0,
    backoff_cap_ms=40.0,
    seed=0,
)

#: Loss scenarios need enough retry headroom to always recover, and a
#: loss rate high enough that some lookup drops *every* replica's first
#: response (only then does a probe outlive the winner long enough to
#: time out — otherwise the first success cancels the losers early).
#: should_drop is a pure seeded hash, so this outcome is pinned, not
#: probabilistic: seed 0 at 60% loss yields both hits and timeouts.
LOSSY_CLIENT = ClientConfig(
    timeout_floor_ms=150.0,
    max_attempts=4,
    backoff_base_ms=20.0,
    backoff_cap_ms=40.0,
    seed=0,
)
LOSS_RATE = 0.6


def _config(**overrides):
    base = dict(
        scale="small",
        seed=0,
        k=5,
        max_nodes=25,
        n_guids=100,
        n_lookups=400,
        timeout_floor_ms=150.0,
    )
    base.update(overrides)
    return ClusterConfig(**base)


class TestAttemptSchedule:
    def test_deterministic_under_equal_seeds(self):
        config = ClientConfig(seed=123)
        first = attempt_schedule(config, 80.0, trace_id=42, k_index=3)
        second = attempt_schedule(config, 80.0, trace_id=42, k_index=3)
        assert first == second
        # A different seed perturbs the jittered backoffs but nothing else.
        other = attempt_schedule(
            ClientConfig(seed=124), 80.0, trace_id=42, k_index=3
        )
        assert other != first
        assert [p.timeout_ms for p in other] == [p.timeout_ms for p in first]

    def test_adaptive_timeout_is_max_of_floor_and_twice_rtt(self):
        config = ClientConfig(timeout_floor_ms=1000.0)
        assert attempt_schedule(config, 80.0)[0].timeout_ms == 1000.0
        assert attempt_schedule(config, 900.0)[0].timeout_ms == 1800.0

    def test_backoff_exponential_and_capped(self):
        config = ClientConfig(
            max_attempts=6,
            backoff_base_ms=50.0,
            backoff_factor=2.0,
            backoff_cap_ms=300.0,
            jitter_fraction=0.0,
        )
        backoffs = [p.backoff_ms for p in attempt_schedule(config, 10.0)]
        assert backoffs == [50.0, 100.0, 200.0, 300.0, 300.0, 0.0]

    def test_last_attempt_never_backs_off(self):
        for attempts in (1, 2, 4):
            plans = attempt_schedule(
                ClientConfig(max_attempts=attempts), 10.0
            )
            assert len(plans) == attempts
            assert plans[-1].backoff_ms == 0.0

    def test_jitter_varies_by_attempt_and_bounded(self):
        config = ClientConfig(
            max_attempts=5, jitter_fraction=0.1, backoff_cap_ms=1e9
        )
        plans = attempt_schedule(config, 10.0, trace_id=7, k_index=1)
        for attempt, plan in enumerate(plans[:-1]):
            base = config.backoff_base_ms * config.backoff_factor ** attempt
            assert base <= plan.backoff_ms <= base * 1.1

    def test_plans_are_value_objects(self):
        assert AttemptPlan(1.0, 2.0) == AttemptPlan(1.0, 2.0)


class TestInjectedLoss:
    def test_lookups_survive_packet_loss_via_retry(self):
        cluster = LocalCluster.build(_config(loss_rate=LOSS_RATE))

        async def scenario():
            await cluster.start()
            client = cluster.client(config=LOSSY_CLIENT)
            await client.start()
            try:
                results = []
                for lookup in cluster.lookup_stream(30):
                    results.append(
                        await client.lookup(lookup.guid, lookup.source_asn)
                    )
                return results
            finally:
                client.close()
                await cluster.stop()

        results = asyncio.run(scenario())
        assert len(results) == 30
        # The shaper provably dropped responses and the client provably
        # timed out and retried past them.
        assert cluster.registry.counter("net.node.shaped_drops").total() > 0
        assert (
            cluster.registry.counter("net.client.attempt_timeouts").total() > 0
        )

    def test_timeout_attempts_land_in_traces(self):
        cluster = LocalCluster.build(_config(loss_rate=LOSS_RATE))
        tracer = CollectingTracer()

        async def scenario():
            await cluster.start()
            client = cluster.client(config=LOSSY_CLIENT, tracer=tracer)
            await client.start()
            try:
                for lookup in cluster.lookup_stream(20):
                    await client.lookup(lookup.guid, lookup.source_asn)
            finally:
                client.close()
                await cluster.stop()

        asyncio.run(scenario())
        assert len(tracer.traces) == 20
        outcomes = {
            attempt.outcome
            for trace in tracer.traces
            for attempt in trace.attempts
        }
        assert OUTCOME_HIT in outcomes
        assert OUTCOME_TIMEOUT in outcomes
        assert all(trace.success for trace in tracer.traces)


class TestDeadReplicas:
    def test_one_dead_replica_of_k_still_succeeds(self):
        cluster = LocalCluster.build(_config())

        async def scenario():
            await cluster.start()
            client = cluster.client(config=FAST_CLIENT)
            await client.start()
            try:
                lookup = cluster.servable[0]
                hosting = [
                    int(a)
                    for a in cluster.resolver.placer.hosting_asns(lookup.guid)
                ]
                victim = hosting[0]
                cluster.kill_node(victim)
                result = await client.lookup(lookup.guid, lookup.source_asn)
                assert result.served_by in set(hosting) - {victim}
                return result
            finally:
                client.close()
                await cluster.stop()

        result = asyncio.run(scenario())
        assert result.rtt_ms > 0.0

    def test_all_replicas_dead_exhausts_with_error(self):
        cluster = LocalCluster.build(_config())

        async def scenario():
            await cluster.start()
            client = cluster.client(config=FAST_CLIENT)
            await client.start()
            try:
                lookup = cluster.servable[0]
                for asn in sorted(
                    {
                        int(a)
                        for a in cluster.resolver.placer.hosting_asns(
                            lookup.guid
                        )
                    }
                ):
                    cluster.kill_node(asn)
                with pytest.raises(LookupFailedError):
                    await client.lookup(lookup.guid, lookup.source_asn)
            finally:
                client.close()
                await cluster.stop()

        asyncio.run(scenario())
        # Every probe burned its full 2-attempt schedule.
        assert (
            cluster.registry.counter("net.client.lookup_failures").total() == 1
        )
        assert (
            cluster.registry.counter("net.client.attempt_timeouts").total() > 0
        )

    def test_write_to_dead_replica_fails_loudly(self):
        cluster = LocalCluster.build(_config())

        async def scenario():
            await cluster.start()
            client = cluster.client(config=FAST_CLIENT)
            await client.start()
            try:
                lookup = cluster.servable[0]
                hosting = cluster.resolver.placer.hosting_asns(lookup.guid)
                cluster.kill_node(int(hosting[0]))
                with pytest.raises(WriteFailedError):
                    await client.update(
                        lookup.guid, [1], lookup.source_asn, version=2
                    )
            finally:
                client.close()
                await cluster.stop()

        asyncio.run(scenario())
        assert (
            cluster.registry.counter("net.client.write_failures").total() == 1
        )
