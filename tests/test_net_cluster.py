"""Live-cluster tests: boot, equivalence, forwarding, writes, metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ClusterError
from repro.net.cluster import ClusterConfig, LatencyShaper, LocalCluster
from repro.net.protocol import (
    FLAG_FORWARDED,
    STATUS_MISS,
    STATUS_OK,
    LookupFrame,
    ResponseFrame,
    decode,
    encode,
)
from repro.obs.counters import MetricsRegistry
from repro.validation.live import run_live_check

#: One modest cluster shared by the whole module (read-mostly; the
#: write test bumps a version on one admitted GUID, which no other
#: test depends on).
CLUSTER_CONFIG = ClusterConfig(
    scale="small", seed=0, k=5, max_nodes=25, n_guids=120, n_lookups=600
)


@pytest.fixture(scope="module")
def cluster():
    return LocalCluster.build(CLUSTER_CONFIG)


class TestBuild:
    def test_node_budget_respected(self, cluster):
        assert 5 <= len(cluster.node_asns) <= CLUSTER_CONFIG.max_nodes

    def test_servable_lookups_fully_replicated(self, cluster):
        nodes = set(cluster.node_asns)
        for lookup in cluster.lookup_stream(50):
            hosting = cluster.resolver.placer.hosting_asns(lookup.guid)
            assert set(int(a) for a in hosting) <= nodes

    def test_stores_prepopulated(self, cluster):
        lookup = cluster.servable[0]
        holder = int(cluster.resolver.placer.hosting_asns(lookup.guid)[0])
        assert cluster.resolver.store_at(holder).get(lookup.guid) is not None

    def test_rejects_budget_below_k(self):
        with pytest.raises(ClusterError):
            ClusterConfig(k=5, max_nodes=3).validate()


class TestShaper:
    def test_clock_round_trip(self, cluster):
        shaper = cluster.shaper
        assert shaper.virtual_ms(shaper.wire_s(123.0)) == pytest.approx(123.0)

    def test_delay_matches_router_rtt(self, cluster):
        a, b = cluster.node_asns[0], cluster.node_asns[1]
        assert cluster.shaper.delay_s(a, b) == pytest.approx(
            cluster.shaper.wire_s(cluster.resolver.router.rtt_ms(a, b))
        )

    def test_loss_is_deterministic_and_calibrated(self, cluster):
        shaper = LatencyShaper(
            cluster.resolver.router, loss_rate=0.2, seed=5
        )
        draws = [
            shaper.should_drop(1, 2, trace_id, k, attempt)
            for trace_id in range(200)
            for k in range(5)
            for attempt in range(2)
        ]
        again = [
            shaper.should_drop(1, 2, trace_id, k, attempt)
            for trace_id in range(200)
            for k in range(5)
            for attempt in range(2)
        ]
        assert draws == again
        rate = sum(draws) / len(draws)
        assert 0.15 < rate < 0.25

    def test_zero_loss_never_drops(self, cluster):
        assert not cluster.shaper.should_drop(1, 2, 3, 4, 5)

    def test_invalid_config_rejected(self, cluster):
        with pytest.raises(ClusterError):
            LatencyShaper(cluster.resolver.router, time_scale=0.0)
        with pytest.raises(ClusterError):
            LatencyShaper(cluster.resolver.router, loss_rate=1.0)


class TestLiveVsAnalytic:
    def test_selftest_within_pinned_tolerance(self, cluster):
        comparison = run_live_check(queries=60, cluster=cluster)
        assert comparison.failures == 0
        assert comparison.success_rate == 1.0
        assert comparison.ok, comparison.render()
        # The wire can only be slower than the analytic ideal.
        assert comparison.median_ratio >= 0.999

    def test_report_is_json_ready(self, cluster):
        comparison = run_live_check(queries=10, cluster=cluster)
        payload = comparison.as_dict()
        assert payload["queries"] == 10
        assert "median_ratio" in payload and "ok" in payload
        assert "live lane" in comparison.render()


async def _boot(cluster):
    await cluster.start()
    client = cluster.client()
    await client.start()
    return client


class TestWirePaths:
    def test_deputy_forwarding(self, cluster):
        """Algorithm 1: a non-holder with hop budget relays the answer."""

        async def scenario():
            client = await _boot(cluster)
            try:
                lookup = cluster.servable[0]
                hosting = {
                    int(a)
                    for a in cluster.resolver.placer.hosting_asns(lookup.guid)
                }
                non_holder = next(
                    asn for asn in cluster.node_asns if asn not in hosting
                )
                response = await _raw_lookup(
                    cluster, lookup, non_holder, hop_budget=1
                )
                assert response.status == STATUS_OK
                assert response.flags & FLAG_FORWARDED
                assert response.served_by in hosting

                # With the budget exhausted, the same node answers MISS.
                response = await _raw_lookup(
                    cluster, lookup, non_holder, hop_budget=0
                )
                assert response.status == STATUS_MISS
                assert response.served_by == non_holder
            finally:
                client.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_live_write_then_read(self, cluster):
        """An update written over the wire is visible to wire lookups."""

        async def scenario():
            client = await _boot(cluster)
            try:
                lookup = cluster.servable[0]
                new_locator = 0xC0FFEE
                write = await client.update(
                    lookup.guid, [new_locator], lookup.source_asn, version=7
                )
                assert write.rtt_ms > 0.0
                assert len(write.per_replica_rtt_ms) == len(write.replicas)

                result = await client.lookup(lookup.guid, lookup.source_asn)
                assert result.version == 7
                assert new_locator in result.locators
                # Shared stores: the analytic resolver sees the wire write.
                holder = int(
                    cluster.resolver.placer.hosting_asns(lookup.guid)[0]
                )
                entry = cluster.resolver.store_at(holder).get(lookup.guid)
                assert entry is not None and entry.version == 7
            finally:
                client.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_malformed_datagram_counted(self, cluster):
        async def scenario():
            await cluster.start()
            try:
                loop = asyncio.get_running_loop()
                transport, _ = await loop.create_datagram_endpoint(
                    asyncio.DatagramProtocol, local_addr=("127.0.0.1", 0)
                )
                target = cluster.peers[cluster.node_asns[0]]
                before = cluster.registry.counter("net.node.malformed").total()
                transport.sendto(b"garbage", target)
                await asyncio.sleep(0.05)
                transport.close()
                assert (
                    cluster.registry.counter("net.node.malformed").total()
                    == before + 1
                )
            finally:
                await cluster.stop()

        asyncio.run(scenario())


async def _raw_lookup(cluster, lookup, target_asn, hop_budget):
    """Send one hand-built LOOKUP frame and await its response."""
    loop = asyncio.get_running_loop()
    future = loop.create_future()

    class _Probe(asyncio.DatagramProtocol):
        def datagram_received(self, data, addr):
            if not future.done():
                future.set_result(decode(data))

    transport, _ = await loop.create_datagram_endpoint(
        _Probe, local_addr=("127.0.0.1", 0)
    )
    try:
        frame = LookupFrame(
            trace_id=424242,
            guid_value=lookup.guid.value,
            source_asn=lookup.source_asn,
            k_index=0,
            hop_budget=hop_budget,
        )
        transport.sendto(encode(frame), cluster.peers[target_asn])
        response = await asyncio.wait_for(future, timeout=5.0)
    finally:
        transport.close()
    assert isinstance(response, ResponseFrame)
    return response


class TestSharedRegistry:
    def test_facade_and_wire_metrics_share_one_registry(self, topology, base_table):
        """The satellite fix: DMapNetwork.stats() publishes through the
        same registry family the wire servers count into."""
        from repro.service import DMapNetwork

        shared = MetricsRegistry()
        net = DMapNetwork(topology, base_table.copy(), k=3, seed=1, registry=shared)
        net.register_host("alice")
        stats = net.stats()
        assert stats["n_hosts"] == 1.0
        assert shared.gauge("service.n_hosts").value() == 1.0

        cluster = LocalCluster.build(CLUSTER_CONFIG, registry=shared)
        comparison = run_live_check(queries=5, cluster=cluster)
        assert comparison.successes == 5
        report = shared.report()
        assert "service.n_hosts" in report
        assert "net.node.lookups_served" in report
        assert "net.client.rtt_ms" in report

    def test_cluster_counters_populated(self, cluster):
        # Earlier tests drove traffic through the module cluster.
        report = cluster.registry.report()
        assert report["net.node.frames_rx"]["kind"] == "counter"
        assert cluster.registry.counter("net.node.lookups_served").total() > 0
