"""Exhaustive round-trip and malformed-input tests for the wire codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guid import GUID_BITS, MAX_LOCATORS
from repro.errors import WireProtocolError
from repro.net.protocol import (
    ERR_HOP_EXHAUSTED,
    FLAG_FORWARDED,
    FLAG_LOCAL,
    HEADER_SIZE,
    LOCAL_K_INDEX,
    MAGIC,
    STATUS_MISS,
    STATUS_OK,
    T_INSERT,
    T_LOOKUP,
    T_UPDATE,
    WIRE_VERSION,
    ErrorFrame,
    LookupFrame,
    ResponseFrame,
    WriteFrame,
    decode,
    encode,
)

MAX_GUID = (1 << GUID_BITS) - 1
U32 = (1 << 32) - 1
U64 = (1 << 64) - 1


def frames_exhaustive():
    """Representative frames covering every type, flag, and boundary."""
    return [
        LookupFrame(trace_id=0, guid_value=0, source_asn=0),
        LookupFrame(
            trace_id=U64,
            guid_value=MAX_GUID,
            source_asn=U32,
            k_index=LOCAL_K_INDEX,
            hop_budget=255,
            attempt=255,
            flags=FLAG_FORWARDED | FLAG_LOCAL,
        ),
        WriteFrame(trace_id=1, guid_value=2, source_asn=3, locators=()),
        WriteFrame(
            trace_id=7,
            guid_value=MAX_GUID,
            source_asn=42,
            ftype=T_UPDATE,
            version=U32,
            timestamp=123456.789,
            locators=tuple(range(MAX_LOCATORS)),
        ),
        ResponseFrame(
            trace_id=9,
            guid_value=5,
            source_asn=17,
            status=STATUS_MISS,
            request_type=T_LOOKUP,
            served_by=U32,
        ),
        ResponseFrame(
            trace_id=10,
            guid_value=6,
            source_asn=18,
            flags=FLAG_FORWARDED,
            status=STATUS_OK,
            request_type=T_INSERT,
            served_by=1234,
            version=3,
            timestamp=0.25,
            locators=(0, U32),
        ),
        ErrorFrame(trace_id=11, guid_value=7, source_asn=19, message=""),
        ErrorFrame(
            trace_id=12,
            guid_value=8,
            source_asn=20,
            code=ERR_HOP_EXHAUSTED,
            message="héllo wörld ☃",
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("frame", frames_exhaustive())
    def test_exact_round_trip(self, frame):
        assert decode(encode(frame)) == frame

    def test_header_layout(self):
        data = encode(LookupFrame(trace_id=0, guid_value=0, source_asn=0))
        assert len(data) == HEADER_SIZE == 40
        assert data[:2] == MAGIC
        assert data[2] == WIRE_VERSION
        assert data[3] == T_LOOKUP

    def test_seeded_fuzz_round_trip(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            frame = WriteFrame(
                trace_id=int(rng.integers(0, 1 << 63)),
                guid_value=int(rng.integers(0, 1 << 62)),
                source_asn=int(rng.integers(0, U32)),
                k_index=int(rng.integers(0, 256)),
                hop_budget=int(rng.integers(0, 256)),
                attempt=int(rng.integers(0, 256)),
                flags=int(rng.integers(0, 4)),
                ftype=T_UPDATE if rng.integers(0, 2) else T_INSERT,
                version=int(rng.integers(0, U32)),
                timestamp=float(rng.uniform(0, 1e9)),
                locators=tuple(
                    int(v)
                    for v in rng.integers(0, U32, size=int(rng.integers(0, MAX_LOCATORS + 1)))
                ),
            )
            assert decode(encode(frame)) == frame

    def test_distinct_frames_encode_distinctly(self):
        blobs = {encode(f) for f in frames_exhaustive()}
        assert len(blobs) == len(frames_exhaustive())


class TestEncodeValidation:
    def test_rejects_out_of_range_guid(self):
        with pytest.raises(WireProtocolError):
            encode(LookupFrame(trace_id=0, guid_value=MAX_GUID + 1, source_asn=0))

    def test_rejects_negative_fields(self):
        with pytest.raises(WireProtocolError):
            encode(LookupFrame(trace_id=-1, guid_value=0, source_asn=0))

    def test_rejects_oversized_byte_fields(self):
        with pytest.raises(WireProtocolError):
            encode(LookupFrame(trace_id=0, guid_value=0, source_asn=0, k_index=256))

    def test_rejects_too_many_locators(self):
        frame = WriteFrame(
            trace_id=0,
            guid_value=0,
            source_asn=0,
            locators=tuple(range(MAX_LOCATORS + 1)),
        )
        with pytest.raises(WireProtocolError):
            encode(frame)

    def test_rejects_out_of_range_locator(self):
        frame = WriteFrame(
            trace_id=0, guid_value=0, source_asn=0, locators=(U32 + 1,)
        )
        with pytest.raises(WireProtocolError):
            encode(frame)

    def test_rejects_class_ftype_mismatch(self):
        with pytest.raises(WireProtocolError):
            encode(LookupFrame(trace_id=0, guid_value=0, source_asn=0, ftype=T_INSERT))

    def test_rejects_huge_error_message(self):
        frame = ErrorFrame(
            trace_id=0, guid_value=0, source_asn=0, message="x" * 70_000
        )
        with pytest.raises(WireProtocolError):
            encode(frame)


class TestDecodeValidation:
    def test_rejects_bad_magic(self):
        data = bytearray(encode(LookupFrame(trace_id=0, guid_value=0, source_asn=0)))
        data[0:2] = b"XX"
        with pytest.raises(WireProtocolError, match="magic"):
            decode(bytes(data))

    def test_rejects_unknown_version(self):
        data = bytearray(encode(LookupFrame(trace_id=0, guid_value=0, source_asn=0)))
        data[2] = WIRE_VERSION + 1
        with pytest.raises(WireProtocolError, match="version"):
            decode(bytes(data))

    def test_rejects_unknown_frame_type(self):
        data = bytearray(encode(LookupFrame(trace_id=0, guid_value=0, source_asn=0)))
        data[3] = 99
        with pytest.raises(WireProtocolError, match="unknown frame type"):
            decode(bytes(data))

    @pytest.mark.parametrize("frame", frames_exhaustive())
    def test_every_truncation_rejected(self, frame):
        data = encode(frame)
        for cut in range(len(data)):
            with pytest.raises(WireProtocolError):
                decode(data[:cut])

    @pytest.mark.parametrize("frame", frames_exhaustive())
    def test_trailing_bytes_rejected(self, frame):
        with pytest.raises(WireProtocolError, match="trailing"):
            decode(encode(frame) + b"\x00")

    def test_rejects_oversized_locator_count(self):
        data = bytearray(
            encode(
                WriteFrame(trace_id=0, guid_value=0, source_asn=0, locators=(1,))
            )
        )
        # The locator-count byte sits at the end of the write head.
        data[HEADER_SIZE + 12] = MAX_LOCATORS + 1
        with pytest.raises(WireProtocolError):
            decode(bytes(data))

    def test_rejects_undecodable_error_message(self):
        data = bytearray(
            encode(ErrorFrame(trace_id=0, guid_value=0, source_asn=0, message="ab"))
        )
        data[-2:] = b"\xff\xfe"
        with pytest.raises(WireProtocolError, match="undecodable"):
            decode(bytes(data))

    def test_empty_datagram_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            decode(b"")
