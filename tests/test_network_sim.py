"""Tests for the message network and AS nodes of the simulation."""

import pytest

from repro.core.guid import GUID, NetworkAddress
from repro.core.mapping import MappingEntry
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.failures import FailureModel, RouterFailureModel
from repro.sim.network import Message, MessageKind, Network
from repro.sim.node import ASNode
from repro.topology.datasets import line_fixture
from repro.topology.routing import Router


@pytest.fixture
def stack():
    """(simulator, network, router) over a 4-AS line, plus a node per AS."""
    topology = line_fixture(n=4, link_ms=10.0, intra_ms=1.0)
    router = Router(topology)
    simulator = Simulator()
    network = Network(simulator, router)
    nodes = {
        asn: ASNode(asn, simulator, network, FailureModel())
        for asn in topology.asns()
    }
    return simulator, network, router, nodes


def entry(value=1, locator=5, version=0):
    return MappingEntry(GUID(value), (NetworkAddress(locator),), version)


class TestNetwork:
    def test_delivery_delay_is_one_way_latency(self, stack):
        simulator, network, router, nodes = stack
        seen = []
        nodes[3].response_sink = seen.append
        # Send a response-kind message 1 -> 3 and observe arrival time.
        network.send(MessageKind.LOOKUP_MISS, 1, 3, request_id=7, payload=GUID(1))
        simulator.run()
        assert len(seen) == 1
        assert simulator.now == pytest.approx(router.one_way_ms(1, 3))

    def test_unregistered_destination_raises(self, stack):
        simulator, network, router, nodes = stack
        with pytest.raises(SimulationError):
            network.send(MessageKind.LOOKUP, 1, 99, request_id=1)

    def test_request_ids_unique(self, stack):
        _sim, network, _router, _nodes = stack
        ids = {network.next_request_id() for _ in range(100)}
        assert len(ids) == 100

    def test_traffic_accounting(self, stack):
        simulator, network, _router, nodes = stack
        nodes[2].response_sink = lambda m: None
        network.send(MessageKind.LOOKUP_MISS, 1, 2, request_id=1, size_bits=800)
        simulator.run()
        assert network.bytes_sent == 100
        assert network.messages_sent == 1


class TestNodeProtocol:
    def test_insert_stores_and_acks(self, stack):
        simulator, network, router, nodes = stack
        acks = []
        nodes[1].response_sink = acks.append
        network.send(
            MessageKind.INSERT, 1, 4, request_id=11, payload=entry()
        )
        simulator.run()
        assert nodes[4].store.get(GUID(1)) is not None
        assert len(acks) == 1
        assert acks[0].kind is MessageKind.INSERT_ACK
        assert simulator.now == pytest.approx(2 * router.one_way_ms(1, 4))

    def test_lookup_hit_and_miss(self, stack):
        simulator, network, _router, nodes = stack
        responses = []
        nodes[1].response_sink = responses.append
        nodes[3].store.insert(entry())
        payload = {"guid": GUID(1), "is_local": False}
        network.send(MessageKind.LOOKUP, 1, 3, request_id=1, payload=payload)
        network.send(
            MessageKind.LOOKUP,
            1,
            2,
            request_id=2,
            payload={"guid": GUID(1), "is_local": False},
        )
        simulator.run()
        kinds = {m.request_id: m.kind for m in responses}
        assert kinds[1] is MessageKind.LOOKUP_HIT
        assert kinds[2] is MessageKind.LOOKUP_MISS

    def test_migrate_stores_silently(self, stack):
        simulator, network, _router, nodes = stack
        network.send(MessageKind.MIGRATE, 1, 2, request_id=1, payload=entry())
        simulator.run()
        assert nodes[2].store.get(GUID(1)) is not None

    def test_down_node_drops_requests(self):
        topology = line_fixture(n=3, link_ms=10.0)
        router = Router(topology)
        simulator = Simulator()
        network = Network(simulator, router)
        failures = RouterFailureModel([3])
        nodes = {
            asn: ASNode(asn, simulator, network, failures)
            for asn in topology.asns()
        }
        responses = []
        nodes[1].response_sink = responses.append
        network.send(
            MessageKind.LOOKUP,
            1,
            3,
            request_id=1,
            payload={"guid": GUID(1), "is_local": False},
        )
        simulator.run()
        assert responses == []

    def test_processing_delay_applied(self):
        topology = line_fixture(n=2, link_ms=10.0, intra_ms=1.0)
        router = Router(topology)
        simulator = Simulator()
        network = Network(simulator, router)
        node1 = ASNode(1, simulator, network, FailureModel())
        node2 = ASNode(2, simulator, network, FailureModel(), processing_ms=7.0)
        acks = []
        node1.response_sink = acks.append
        network.send(MessageKind.INSERT, 1, 2, request_id=1, payload=entry())
        simulator.run()
        assert simulator.now == pytest.approx(2 * router.one_way_ms(1, 2) + 7.0)

    def test_response_without_sink_raises(self, stack):
        simulator, network, _router, nodes = stack
        nodes[2].response_sink = None
        network.send(MessageKind.INSERT_ACK, 1, 2, request_id=1)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_negative_processing_rejected(self, stack):
        simulator, network, _router, _nodes = stack
        with pytest.raises(SimulationError):
            ASNode(99, simulator, network, FailureModel(), processing_ms=-1.0)
