"""Seeded property tests for the observability layer (stdlib RNG only).

Each property is checked over many randomized lookups driven by
``random.Random`` (the determinism linter bans stdlib random in
``src/repro`` but tests are free to use it — no new dependencies):

* a global-served trace's attempt list is exactly the failed attempts
  plus the serving hit, and the attempt costs sum to the reported RTT
  (1e-9 relative);
* a local win's RTT is the local branch's completion time;
* replaying a traced GUID through the batched placement kernel
  reproduces the trace's replica set chain for chain;
* JSONL serialization round-trips traces exactly;
* the counter aggregator's totals are consistent with the stream.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.guid import GUID, NetworkAddress
from repro.core.resolver import (
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
    DMapResolver,
)
from repro.errors import LookupFailedError
from repro.fastpath.placement import batch_hosting_asns, batch_resolutions
from repro.obs import CollectingTracer, aggregate_traces
from repro.obs.export import dumps_trace, trace_from_dict, trace_to_dict

N_ROUNDS = 200


def _mixed_probe(asn, guid):
    v = (asn * 48271 + int(guid) * 16807) % 8
    if v == 0:
        return OUTCOME_TIMEOUT
    if v < 3:
        return OUTCOME_MISSING
    return OUTCOME_HIT


@pytest.fixture(scope="module")
def traced_world(base_table, router, asns):
    """A resolver with mixed-outcome lookups and its collected traces."""
    rng = random.Random(0xD7A9)
    tracer = CollectingTracer()
    resolver = DMapResolver(base_table, router, k=5, tracer=tracer)
    guids = [GUID(rng.getrandbits(64)) for _ in range(30)]
    homes = {}
    for g in guids:
        home = rng.choice(asns)
        resolver.insert(g, [NetworkAddress(rng.getrandbits(32))], home)
        homes[g] = home
    for i in range(N_ROUNDS):
        g = rng.choice(guids)
        # Every 4th lookup originates at the GUID's attachment AS so the
        # §III-C local-replica race actually has a copy to win with.
        src = homes[g] if i % 4 == 0 else rng.choice(asns)
        try:
            resolver.lookup(
                g,
                src,
                probe=_mixed_probe,
                time=float(rng.randrange(10**6)),
            )
        except LookupFailedError:
            pass
    assert len(tracer.traces) == N_ROUNDS
    return resolver, tracer.traces


class TestAttemptAccounting:
    def test_attempt_count_is_failed_plus_serving_hit(self, traced_world):
        _, traces = traced_world
        for t in traces:
            if t.success and not t.used_local:
                # The walk ends on its first hit: everything before it failed.
                assert len(t.attempts) == t.failed_attempts + 1
                assert t.attempts[-1].outcome == OUTCOME_HIT
            else:
                # Local wins and failures leave only non-hit observations
                # in the walk (a hit attempt ends the walk globally).
                assert all(a.outcome != OUTCOME_HIT for a in t.attempts) or (
                    t.used_local and t.attempts[-1].outcome == OUTCOME_HIT
                )

    def test_global_costs_sum_to_rtt(self, traced_world):
        _, traces = traced_world
        checked = 0
        for t in traces:
            if t.success and not t.used_local:
                total = sum(a.cost_ms for a in t.attempts)
                assert total == pytest.approx(t.rtt_ms, rel=1e-9)
                checked += 1
        assert checked > 0

    def test_local_win_rtt_is_local_end(self, traced_world):
        _, traces = traced_world
        wins = [t for t in traces if t.used_local]
        assert wins, "expected some local-race wins"
        for t in wins:
            assert t.local_launched
            assert t.rtt_ms == t.local_end_ms
            assert t.served_by == t.source_asn

    def test_failure_rtt_covers_both_branches(self, traced_world):
        _, traces = traced_world
        failures = [t for t in traces if not t.success]
        for t in failures:
            walk_cost = sum(a.cost_ms for a in t.attempts)
            floor = max(walk_cost, t.local_end_ms or 0.0)
            assert t.rtt_ms == pytest.approx(floor, rel=1e-9)


class TestPlacementReplay:
    def test_batch_placement_reproduces_replica_sets(self, traced_world):
        resolver, traces = traced_world
        unique = {t.guid_value: t for t in traces}
        values = sorted(unique)
        rows = batch_hosting_asns(resolver.placer, values)
        for row, value in zip(rows, values):
            assert tuple(int(a) for a in row) == unique[value].replica_set

    def test_batch_resolutions_reproduce_provenance(self, traced_world):
        resolver, traces = traced_world
        unique = {t.guid_value: t for t in traces}
        values = sorted(unique)
        asns_m, attempts_m, deputy_m = batch_resolutions(resolver.placer, values)
        for i, value in enumerate(values):
            placement = unique[value].placement
            assert tuple(int(a) for a in asns_m[i]) == tuple(
                r.asn for r in placement
            )
            assert tuple(int(a) for a in attempts_m[i]) == tuple(
                r.hash_attempts for r in placement
            )
            assert tuple(bool(d) for d in deputy_m[i]) == tuple(
                r.via_deputy for r in placement
            )


class TestSerialization:
    def test_round_trip_is_exact(self, traced_world):
        _, traces = traced_world
        for t in traces:
            line = dumps_trace(t)
            back = trace_from_dict(json.loads(line))
            assert back == t
            assert dumps_trace(back) == line

    def test_dict_form_is_canonical(self, traced_world):
        _, traces = traced_world
        t = traces[0]
        data = trace_to_dict(t)
        assert data["guid"] == t.guid_value
        assert len(data["placement"]) == t.k
        assert data["success"] == t.success


class TestAggregation:
    def test_counter_totals_match_stream(self, traced_world):
        _, traces = traced_world
        report = aggregate_traces(traces).report()

        def total(name):
            return sum(report[name]["values"].values())

        assert total("lookups_total") == len(traces)
        assert total("lookups_failed") == sum(1 for t in traces if not t.success)
        assert total("local_race_wins") == sum(1 for t in traces if t.used_local)
        assert total("lookup_attempts") == sum(len(t.attempts) for t in traces)
        by_outcome = report["lookup_attempts"]["values"]
        for outcome in by_outcome:
            assert by_outcome[outcome] == sum(
                1 for t in traces for a in t.attempts if a.outcome == outcome
            )
        served = report["served_queries"]["values"]
        assert sum(served.values()) == sum(1 for t in traces if t.success)
        hist = report["rtt_ms"]
        assert hist["count"] == sum(1 for t in traces if t.success)
