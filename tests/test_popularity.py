"""Tests for the Mandelbrot-Zipf popularity model (Eq. 1)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.popularity import MandelbrotZipf, PAPER_ALPHA, PAPER_Q


class TestDistribution:
    def test_pmf_sums_to_one(self):
        dist = MandelbrotZipf(1000)
        assert dist.pmf_array().sum() == pytest.approx(1.0)

    def test_pmf_decreasing_in_rank(self):
        dist = MandelbrotZipf(500)
        pmf = dist.pmf_array()
        assert (np.diff(pmf) <= 0).all()

    def test_eq1_formula(self):
        # p(k) = H / (k + q)^alpha with H the normalizer.
        n, alpha, q = 100, 1.5, 10.0
        dist = MandelbrotZipf(n, alpha, q)
        h = 1.0 / sum(1.0 / (k + q) ** alpha for k in range(1, n + 1))
        assert dist.normalization == pytest.approx(h)
        assert dist.pmf(1) == pytest.approx(h / (1 + q) ** alpha)
        assert dist.pmf(n) == pytest.approx(h / (n + q) ** alpha)

    def test_q_flattens_head(self):
        # Larger q → the top rank holds a smaller share (flatter peak).
        pure = MandelbrotZipf(1000, alpha=1.02, q=0.0)
        flat = MandelbrotZipf(1000, alpha=1.02, q=100.0)
        assert flat.pmf(1) < pure.pmf(1)
        # And the head-to-rank-50 contrast shrinks.
        assert flat.pmf(1) / flat.pmf(50) < pure.pmf(1) / pure.pmf(50)

    def test_alpha_skews(self):
        mild = MandelbrotZipf(1000, alpha=0.8, q=10.0)
        steep = MandelbrotZipf(1000, alpha=2.0, q=10.0)
        assert steep.pmf(1) > mild.pmf(1)

    def test_paper_parameters_exported(self):
        assert PAPER_ALPHA == 1.02
        assert PAPER_Q == 100.0

    def test_pmf_rank_bounds(self):
        dist = MandelbrotZipf(10)
        with pytest.raises(WorkloadError):
            dist.pmf(0)
        with pytest.raises(WorkloadError):
            dist.pmf(11)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MandelbrotZipf(0)
        with pytest.raises(WorkloadError):
            MandelbrotZipf(10, alpha=0)
        with pytest.raises(WorkloadError):
            MandelbrotZipf(10, q=-1)


class TestSampling:
    def test_ranks_in_range(self):
        dist = MandelbrotZipf(50)
        ranks = dist.sample_ranks(10_000, np.random.default_rng(0))
        assert ranks.min() >= 1
        assert ranks.max() <= 50

    def test_empirical_matches_pmf(self):
        dist = MandelbrotZipf(20, alpha=1.2, q=5.0)
        ranks = dist.sample_ranks(100_000, np.random.default_rng(1))
        counts = np.bincount(ranks, minlength=21)[1:]
        empirical = counts / counts.sum()
        np.testing.assert_allclose(empirical, dist.pmf_array(), atol=0.01)

    def test_deterministic_in_seed(self):
        dist = MandelbrotZipf(100)
        a = dist.sample_ranks(100, np.random.default_rng(7))
        b = dist.sample_ranks(100, np.random.default_rng(7))
        assert (a == b).all()

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            MandelbrotZipf(10).sample_ranks(-1, np.random.default_rng(0))

    def test_expected_queries(self):
        dist = MandelbrotZipf(10)
        expected = dist.expected_queries(1000)
        assert expected.sum() == pytest.approx(1000.0)
