"""Unit and property tests for prefixes and announcements."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.prefix import Announcement, Prefix
from repro.core.guid import NetworkAddress, iter_address_block
from repro.errors import AddressError


class TestPrefixValidation:
    def test_basic(self):
        p = Prefix(0x0A000000, 8)
        assert p.span == 1 << 24
        assert p.first == 0x0A000000
        assert p.last == 0x0AFFFFFF

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix(0x0A000001, 8)

    def test_bad_length_rejected(self):
        with pytest.raises(AddressError):
            Prefix(0, 33)
        with pytest.raises(AddressError):
            Prefix(0, -1)

    def test_zero_length_covers_everything(self):
        p = Prefix(0, 0)
        assert p.span == 1 << 32
        assert p.contains(0) and p.contains(2**32 - 1)

    def test_from_cidr(self):
        p = Prefix.from_cidr("67.10.0.0/16")
        assert p == Prefix(NetworkAddress.from_dotted("67.10.0.0").value, 16)
        assert str(p) == "67.10.0.0/16"

    def test_from_cidr_masks_host_bits(self):
        assert Prefix.from_cidr("67.10.12.1/16") == Prefix.from_cidr("67.10.0.0/16")

    def test_from_cidr_bare_address_is_host_route(self):
        assert Prefix.from_cidr("1.2.3.4").length == 32

    def test_from_cidr_bad_length(self):
        with pytest.raises(AddressError):
            Prefix.from_cidr("1.2.3.4/abc")


class TestContainment:
    def test_contains_address(self):
        p = Prefix.from_cidr("10.0.0.0/8")
        assert p.contains(NetworkAddress.from_dotted("10.200.3.4"))
        assert not p.contains(NetworkAddress.from_dotted("11.0.0.0"))

    def test_contains_prefix(self):
        outer = Prefix.from_cidr("10.0.0.0/8")
        inner = Prefix.from_cidr("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_fraction_of_space(self):
        assert Prefix.from_cidr("10.0.0.0/8").fraction_of_space() == pytest.approx(
            1 / 256
        )


class TestXorDistanceToBlock:
    def test_inside_is_zero(self):
        p = Prefix.from_cidr("10.0.0.0/8")
        assert p.xor_distance_to(NetworkAddress.from_dotted("10.9.9.9")) == 0

    def test_adjacent_block(self):
        # 0b10xxxx vs address 0b11...: top differing bit dominates.
        p = Prefix(0b100000, 2, bits=6)
        assert p.xor_distance_to(0b110101) == 0b010000

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=255),
    )
    def test_matches_brute_force_min(self, base, length, address):
        # 8-bit space keeps exhaustive enumeration cheap.
        span = 1 << (8 - length)
        base &= ~(span - 1) & 0xFF
        p = Prefix(base, length, bits=8)
        brute = min(address ^ member for member in iter_address_block(base, length, 8))
        assert p.xor_distance_to(address) == brute


class TestAnnouncement:
    def test_ordering_groups_by_prefix(self):
        a = Announcement(Prefix.from_cidr("10.0.0.0/8"), 7)
        b = Announcement(Prefix.from_cidr("11.0.0.0/8"), 3)
        assert a < b

    def test_negative_asn_rejected(self):
        with pytest.raises(AddressError):
            Announcement(Prefix(0, 0), -1)

    def test_str(self):
        a = Announcement(Prefix.from_cidr("10.0.0.0/8"), 7)
        assert str(a) == "10.0.0.0/8 via AS7"
