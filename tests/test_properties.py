"""Cross-cutting property-based tests (hypothesis).

These pin down the systemic guarantees the paper's design rests on:
any-router derivability of placements, deterministic simulation, and
order-insensitivity of the selection machinery.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.table import GlobalPrefixTable
from repro.core.guid import GUID
from repro.hashing.hashers import Sha256Hasher
from repro.hashing.rehash import GuidPlacer
from repro.sim.engine import Simulator

from .test_trie import announcement_sets


class TestAnyRouterDerivability:
    """§III-A: 'it allows the hosting ASs to be deterministically and
    locally derived from the identifier by any network entity' — two
    independently constructed gateways with the same BGP view must agree
    on every placement."""

    @given(announcement_sets(), st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=60)
    def test_two_gateways_agree(self, announcements, guid_value):
        table_a = GlobalPrefixTable(announcements, bits=8)
        table_b = GlobalPrefixTable(list(reversed(announcements)), bits=8)
        placer_a = GuidPlacer(Sha256Hasher(3, address_bits=8), table_a)
        placer_b = GuidPlacer(Sha256Hasher(3, address_bits=8), table_b)
        assert placer_a.hosting_asns(guid_value) == placer_b.hosting_asns(guid_value)

    @given(announcement_sets())
    @settings(max_examples=40)
    def test_placement_always_lands_on_a_participant(self, announcements):
        table = GlobalPrefixTable(announcements, bits=8)
        placer = GuidPlacer(Sha256Hasher(2, address_bits=8), table, max_rehashes=4)
        participants = set(table.asns())
        for i in range(10):
            for asn in placer.hosting_asns(GUID.from_name(f"p{i}")):
                assert asn in participants


class TestSimulatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_execution_is_time_sorted_and_cancellation_exact(self, schedule):
        sim = Simulator()
        fired = []
        handles = []
        for idx, (delay, cancel) in enumerate(schedule):
            handles.append(
                (
                    sim.schedule(delay, lambda i=idx: fired.append(i)),
                    cancel,
                    delay,
                    idx,
                )
            )
        for handle, cancel, _delay, _idx in handles:
            if cancel:
                handle.cancel()
        sim.run()
        expected_alive = [
            idx for _h, cancel, _d, idx in handles if not cancel
        ]
        assert sorted(fired) == sorted(expected_alive)
        times = [schedule[i][0] for i in fired]
        assert times == sorted(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_clock_never_regresses(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestSelectorProperties:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_order_is_permutation_and_stable(self, seed, n_candidates):
        # Uses the session substrate via pytest fixtures indirectly is not
        # possible under @given; build a tiny one here.
        from repro.core.replication import ReplicaSelector
        from repro.topology.datasets import line_fixture
        from repro.topology.routing import Router

        router = Router(line_fixture(n=8))
        selector = ReplicaSelector(router, "latency")
        rng = np.random.default_rng(seed)
        candidates = [int(a) for a in rng.integers(1, 9, size=n_candidates)]
        ordered = selector.order_candidates(1, candidates)
        assert set(ordered) == set(candidates)
        assert len(ordered) == len(set(candidates))
        assert ordered == selector.order_candidates(1, candidates)
