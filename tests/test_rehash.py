"""Tests for Algorithm 1 — hashing GUIDs into announced space."""

import numpy as np
import pytest

from repro.bgp.prefix import Announcement, Prefix
from repro.bgp.table import GlobalPrefixTable
from repro.core.guid import GUID
from repro.errors import ConfigurationError
from repro.hashing.hashers import FastHasher, Sha256Hasher
from repro.hashing.rehash import (
    GuidPlacer,
    hole_probability,
    place_guids_bulk,
)


def ann(cidr: str, asn: int) -> Announcement:
    return Announcement(Prefix.from_cidr(cidr), asn)


class TestGuidPlacer:
    def test_resolution_lands_in_announced_space(self, base_table):
        placer = GuidPlacer(Sha256Hasher(5), base_table)
        for i in range(50):
            for res in placer.resolve_all(GUID.from_name(f"g{i}")):
                if not res.via_deputy:
                    assert base_table.owner_asn(res.address) == res.asn

    def test_deterministic(self, base_table):
        placer = GuidPlacer(Sha256Hasher(5), base_table)
        g = GUID.from_name("device")
        assert placer.hosting_asns(g) == placer.hosting_asns(g)

    def test_k_property(self, base_table):
        placer = GuidPlacer(Sha256Hasher(3), base_table)
        assert placer.k == 3
        assert len(placer.resolve_all(GUID(1))) == 3

    def test_first_hash_hit_uses_one_attempt(self):
        # Full cover: the very first hash is always announced.
        table = GlobalPrefixTable([Announcement(Prefix(0, 0), 42)])
        placer = GuidPlacer(Sha256Hasher(2), table)
        for res in placer.resolve_all(GUID(7)):
            assert res.attempts == 1
            assert res.asn == 42
            assert not res.via_deputy

    def test_deputy_fallback_on_tiny_coverage(self):
        # One /32: rehashing will essentially never hit it, so every
        # placement must go through the nearest-prefix deputy.
        table = GlobalPrefixTable([ann("1.2.3.4/32", 9)])
        placer = GuidPlacer(Sha256Hasher(1), table, max_rehashes=3)
        res = placer.resolve_one(GUID.from_name("x"), 0)
        assert res.via_deputy
        assert res.asn == 9
        assert res.attempts == 3

    def test_max_rehashes_validation(self, base_table):
        with pytest.raises(ConfigurationError):
            GuidPlacer(Sha256Hasher(1), base_table, max_rehashes=0)

    def test_rehash_reduces_deputy_usage(self, base_table):
        few = GuidPlacer(Sha256Hasher(1), base_table, max_rehashes=1)
        many = GuidPlacer(Sha256Hasher(1), base_table, max_rehashes=10)
        guids = [GUID.from_name(f"d{i}") for i in range(300)]
        deputies_few = sum(few.resolve_one(g, 0).via_deputy for g in guids)
        deputies_many = sum(many.resolve_one(g, 0).via_deputy for g in guids)
        assert deputies_many < deputies_few


class TestHoleProbability:
    def test_paper_example(self):
        # §III-B: ratio 0.55, M = 10 → ~0.034%.
        assert hole_probability(0.55, 10) == pytest.approx(0.45**10)
        assert hole_probability(0.55, 10) == pytest.approx(3.4e-4, rel=0.05)

    def test_edges(self):
        assert hole_probability(1.0, 1) == 0.0
        assert hole_probability(0.0, 5) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hole_probability(1.5, 3)
        with pytest.raises(ConfigurationError):
            hole_probability(0.5, 0)


class TestBulkPlacement:
    def test_bulk_matches_scalar(self, base_table):
        k = 3
        hasher = FastHasher(k)
        placer = GuidPlacer(hasher, base_table, max_rehashes=6)
        values = [GUID.from_name(f"b{i}").value for i in range(80)]
        folded = hasher.fold_guids(values)
        index = base_table.build_interval_index()
        asns, attempts, via_deputy = place_guids_bulk(
            folded, hasher, index, base_table, max_rehashes=6
        )
        for row, value in enumerate(values):
            for i in range(k):
                res = placer.resolve_one(value, i)
                assert asns[row, i] == res.asn
                assert attempts[row, i] == res.attempts
                assert bool(via_deputy[row, i]) == res.via_deputy

    def test_bulk_never_leaves_holes(self, base_table):
        hasher = FastHasher(5)
        rng = np.random.default_rng(0)
        folded = rng.integers(0, 2**63, size=2000, dtype=np.uint64)
        index = base_table.build_interval_index()
        asns, _attempts, _dep = place_guids_bulk(folded, hasher, index, base_table)
        assert (asns >= 0).all()

    def test_attempt_distribution_geometric(self, base_table):
        # P(attempts > a) ≈ (1 - ratio)^a.
        hasher = FastHasher(1)
        rng = np.random.default_rng(1)
        folded = rng.integers(0, 2**63, size=30_000, dtype=np.uint64)
        index = base_table.build_interval_index()
        _asns, attempts, _dep = place_guids_bulk(folded, hasher, index, base_table)
        ratio = index.announced_fraction()
        frac_two_plus = float((attempts > 1).mean())
        assert frac_two_plus == pytest.approx(1.0 - ratio, abs=0.02)
