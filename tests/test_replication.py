"""Tests for replica sets and selection policies."""

import numpy as np
import pytest

from repro.core.guid import GUID
from repro.core.replication import ReplicaSelector, ReplicaSet
from repro.errors import ConfigurationError
from repro.hashing.rehash import HashResolution
from repro.topology.datasets import line_fixture
from repro.topology.routing import Router


def res(asn: int, address: int = 0) -> HashResolution:
    return HashResolution(address, asn, attempts=1, via_deputy=False)


class TestReplicaSet:
    def test_global_asns_preserve_order_and_repeats(self):
        rs = ReplicaSet(GUID(1), (res(5), res(3), res(5)))
        assert rs.global_asns == (5, 3, 5)

    def test_all_asns_dedup_with_local(self):
        rs = ReplicaSet(GUID(1), (res(5), res(3), res(5)), local_asn=7)
        assert rs.all_asns == (5, 3, 7)

    def test_local_equal_to_global_not_duplicated(self):
        rs = ReplicaSet(GUID(1), (res(5), res(3)), local_asn=3)
        assert rs.all_asns == (5, 3)


class TestReplicaSelector:
    @pytest.fixture(scope="class")
    def line_router(self):
        return Router(line_fixture(n=6, link_ms=10.0, intra_ms=1.0))

    def test_latency_policy_orders_by_distance(self, line_router):
        selector = ReplicaSelector(line_router, "latency")
        assert selector.order_candidates(1, [6, 3, 2]) == [2, 3, 6]

    def test_hops_policy(self, line_router):
        selector = ReplicaSelector(line_router, "hops")
        assert selector.order_candidates(4, [1, 6, 5]) == [5, 6, 1]

    def test_self_is_closest(self, line_router):
        selector = ReplicaSelector(line_router, "latency")
        assert selector.order_candidates(3, [6, 3, 1])[0] == 3

    def test_duplicates_removed(self, line_router):
        selector = ReplicaSelector(line_router, "latency")
        assert selector.order_candidates(1, [4, 4, 2, 2]) == [2, 4]

    def test_random_policy_is_permutation(self, line_router):
        selector = ReplicaSelector(line_router, "random", np.random.default_rng(3))
        ordered = selector.order_candidates(1, [2, 3, 4, 5])
        assert sorted(ordered) == [2, 3, 4, 5]

    def test_random_policy_varies(self, line_router):
        selector = ReplicaSelector(line_router, "random", np.random.default_rng(3))
        draws = {tuple(selector.order_candidates(1, [2, 3, 4, 5])) for _ in range(20)}
        assert len(draws) > 1

    def test_unknown_policy_rejected(self, line_router):
        with pytest.raises(ConfigurationError):
            ReplicaSelector(line_router, "nearest")

    def test_empty_candidates_rejected(self, line_router):
        selector = ReplicaSelector(line_router, "latency")
        with pytest.raises(ConfigurationError):
            selector.order_candidates(1, [])

    def test_best_rtt(self, line_router):
        selector = ReplicaSelector(line_router, "latency")
        # 1 -> 2: intra 1 + link 10 + intra 1 = 12 one way, 24 RTT.
        assert selector.best_rtt_ms(1, [6, 2]) == pytest.approx(24.0)

    def test_latency_vs_hops_can_disagree(self, topology, router, rng):
        # On the generated graph with heterogeneous link latencies the two
        # policies must rank identically-reachable candidates differently
        # at least sometimes.
        latency_sel = ReplicaSelector(router, "latency")
        hops_sel = ReplicaSelector(router, "hops")
        asns = topology.asns()
        disagreements = 0
        for _ in range(60):
            src = int(rng.choice(asns))
            candidates = [int(a) for a in rng.choice(asns, size=5, replace=False)]
            if latency_sel.order_candidates(src, candidates)[0] != (
                hops_sel.order_candidates(src, candidates)[0]
            ):
                disagreements += 1
        assert disagreements > 0
