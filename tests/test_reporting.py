"""Tests for the text reporting helpers."""

import numpy as np
import pytest

from repro.experiments.reporting import (
    ascii_cdf,
    format_cdf_table,
    format_table,
    percentile_row,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[1].startswith("----")
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # columns aligned

    def test_handles_numbers(self):
        text = format_table(["k"], [[1], [2.5]])
        assert "2.5" in text


class TestCdfTable:
    def test_read_offs(self):
        series = {"a": [1.0, 2.0, 3.0, 4.0], "b": [10.0, 20.0, 30.0, 40.0]}
        text = format_cdf_table(series, thresholds=[2.5, 100.0])
        assert "0.500" in text  # a below 2.5
        assert "1.000" in text  # everything below 100
        assert "a" in text and "b" in text

    def test_inclusive_at_threshold(self):
        # CDF semantics: P[X <= t], so a sample exactly at the threshold
        # is counted as answered within it.
        text = format_cdf_table({"x": [5.0]}, thresholds=[5.0])
        assert "1.000" in text
        assert "P(x <= t)" in text


class TestAsciiCdf:
    def test_monotone_shape(self):
        values = np.linspace(1, 100, 500)
        plot = ascii_cdf(values, width=40, height=8, label="test")
        lines = plot.splitlines()
        assert lines[0] == "CDF test"
        assert "x:" in lines[-1]
        # One star per column, rows monotone non-increasing left→right.
        grid = lines[1:-1]
        star_rows = []
        for col in range(40):
            for row, line in enumerate(grid):
                if col < len(line) and line[col] == "*":
                    star_rows.append(row)
                    break
        assert star_rows == sorted(star_rows, reverse=True)

    def test_linear_axis(self):
        plot = ascii_cdf([1.0, 2.0, 3.0], log_x=False)
        assert "(log)" not in plot


class TestPercentileRow:
    def test_values(self):
        name, mean, median, p95 = percentile_row("row", [10.0, 20.0, 30.0])
        assert name == "row"
        assert mean == "20.0"
        assert median == "20.0"
        assert float(p95) == pytest.approx(np.percentile([10, 20, 30], 95), abs=0.05)

    def test_success_cell_when_failures_tracked(self):
        row = percentile_row("row", [10.0, 20.0, 30.0], failed=1)
        assert len(row) == 5
        assert row[-1] == "75.0% (1 failed)"

    def test_success_cell_all_succeeded(self):
        row = percentile_row("row", [10.0], failed=0)
        assert row[-1] == "100.0% (0 failed)"
