"""Tests for the DMap resolver protocol (insert / update / lookup)."""

import numpy as np
import pytest

from repro.core.guid import GUID, NetworkAddress
from repro.core.resolver import (
    DMapResolver,
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
)
from repro.errors import ConfigurationError, LookupFailedError


def locator(table, asn):
    return table.representative_address(asn)


@pytest.fixture
def populated(resolver, base_table, asns, rng):
    """Resolver with 30 hosts inserted; returns (resolver, host_map)."""
    hosts = {}
    for i in range(30):
        guid = GUID.from_name(f"host-{i}")
        home = int(rng.choice(asns))
        resolver.insert(guid, [locator(base_table, home)], home)
        hosts[guid] = home
    return resolver, hosts


class TestInsert:
    def test_insert_places_k_replicas(self, resolver, base_table, asns):
        guid = GUID.from_name("phone")
        result = resolver.insert(guid, [locator(base_table, asns[0])], asns[0])
        assert len(result.replica_set.global_replicas) == 5
        for res in result.replica_set.global_replicas:
            assert resolver.store_at(res.asn).get(guid) is not None

    def test_update_latency_is_max_of_parallel_writes(
        self, resolver, base_table, asns
    ):
        guid = GUID.from_name("phone")
        result = resolver.insert(guid, [locator(base_table, asns[0])], asns[0])
        assert result.rtt_ms == max(result.per_replica_rtt_ms)
        assert len(result.per_replica_rtt_ms) == 5

    def test_local_copy_written(self, resolver, base_table, asns):
        guid = GUID.from_name("phone")
        result = resolver.insert(guid, [locator(base_table, asns[3])], asns[3])
        assert result.replica_set.local_asn == asns[3]
        assert resolver.store_at(asns[3]).get(guid) is not None

    def test_local_replica_disabled(self, base_table, router, asns):
        resolver = DMapResolver(base_table, router, k=5, local_replica=False)
        guid = GUID.from_name("phone")
        result = resolver.insert(guid, [locator(base_table, asns[3])], asns[3])
        assert result.replica_set.local_asn is None

    def test_placement_is_stateless_derivable(self, resolver, base_table, asns):
        guid = GUID.from_name("phone")
        result = resolver.insert(guid, [locator(base_table, asns[0])], asns[0])
        assert list(result.replica_set.global_asns) == resolver.placer.hosting_asns(
            guid
        )


class TestLookup:
    def test_lookup_finds_mapping(self, populated, asns, rng):
        resolver, hosts = populated
        guid = next(iter(hosts))
        result = resolver.lookup(guid, int(rng.choice(asns)))
        assert result.entry.guid == guid
        assert result.rtt_ms > 0
        assert result.attempts[-1].outcome == OUTCOME_HIT or result.used_local

    def test_lookup_rtt_equals_router_rtt_to_chosen(self, populated, asns, rng):
        resolver, hosts = populated
        guid = next(iter(hosts))
        src = int(rng.choice(asns))
        result = resolver.lookup(guid, src)
        if not result.used_local:
            assert result.rtt_ms == pytest.approx(
                resolver.router.rtt_ms(src, result.served_by)
            )

    def test_lookup_chooses_closest_replica(self, populated, asns, rng):
        resolver, hosts = populated
        guid = next(iter(hosts))
        src = int(rng.choice(asns))
        result = resolver.lookup(guid, src)
        candidates = resolver.placer.hosting_asns(guid)
        best = min(
            set(candidates), key=lambda a: resolver.router.one_way_ms(src, a)
        )
        if not result.used_local:
            assert resolver.router.one_way_ms(src, result.served_by) == pytest.approx(
                resolver.router.one_way_ms(src, best)
            )

    def test_local_replica_wins_at_home(self, populated):
        resolver, hosts = populated
        guid, home = next(iter(hosts.items()))
        candidates = set(resolver.placer.hosting_asns(guid))
        if home in candidates:
            pytest.skip("home AS happens to be a global replica")
        result = resolver.lookup(guid, home)
        # Local RTT is the intra-AS round trip — hard to beat from inside.
        local_rtt = 2.0 * resolver.router.topology.intra_latency(home)
        global_best = min(
            resolver.router.rtt_ms(home, a) for a in candidates
        )
        if local_rtt < global_best:
            assert result.used_local
            assert result.rtt_ms == pytest.approx(local_rtt)

    def test_missing_guid_fails(self, resolver, asns):
        with pytest.raises(LookupFailedError):
            resolver.lookup(GUID.from_name("never-inserted"), asns[0])

    def test_probe_missing_forces_retry(self, populated, asns, rng):
        resolver, hosts = populated
        guid = next(iter(hosts))
        src = int(rng.choice(asns))
        ordered = resolver.selector.order_candidates(
            src, resolver.placer.hosting_asns(guid)
        )
        first = ordered[0]

        def probe(asn, g):
            return OUTCOME_MISSING if asn == first else OUTCOME_HIT

        clean = resolver.lookup(guid, src)
        churned = resolver.lookup(guid, src, probe=probe)
        if not churned.used_local and len(ordered) > 1:
            # Paid a full round trip to the failed replica, then the next.
            expected = resolver.router.rtt_ms(src, first) + resolver.router.rtt_ms(
                src, ordered[1]
            )
            assert churned.rtt_ms == pytest.approx(expected)
            assert churned.attempts[0].outcome == OUTCOME_MISSING
        assert churned.rtt_ms >= clean.rtt_ms

    def test_probe_timeout_costs_timeout(self, populated, asns, rng):
        resolver, hosts = populated
        guid = next(iter(hosts))
        src = int(rng.choice(asns))
        ordered = resolver.selector.order_candidates(
            src, resolver.placer.hosting_asns(guid)
        )
        first = ordered[0]

        def probe(asn, g):
            return OUTCOME_TIMEOUT if asn == first else OUTCOME_HIT

        result = resolver.lookup(guid, src, probe=probe)
        if not result.used_local and len(ordered) > 1:
            timeout = max(
                resolver.timeout_ms, 2.0 * resolver.router.rtt_ms(src, first)
            )
            expected = timeout + resolver.router.rtt_ms(src, ordered[1])
            assert result.rtt_ms == pytest.approx(expected)

    def test_all_replicas_down_raises_with_elapsed(self, populated, asns):
        resolver, hosts = populated
        guid = next(iter(hosts))
        src = [a for a in asns if a != hosts[guid]][0]

        def probe(asn, g):
            return OUTCOME_TIMEOUT

        with pytest.raises(LookupFailedError) as exc_info:
            resolver.lookup(guid, src, probe=probe)
        unique = list(dict.fromkeys(resolver.placer.hosting_asns(guid)))
        assert exc_info.value.attempts == len(unique)
        expected = sum(
            max(resolver.timeout_ms, 2.0 * resolver.router.rtt_ms(src, asn))
            for asn in unique
        )
        assert exc_info.value.elapsed_ms == pytest.approx(expected)

    def test_all_down_but_local_saves_it(self, populated):
        resolver, hosts = populated
        guid, home = next(iter(hosts.items()))

        def probe(asn, g):
            return OUTCOME_TIMEOUT

        result = resolver.lookup(guid, home, probe=probe)
        assert result.used_local

    def test_unknown_probe_outcome_rejected(self, populated, asns):
        resolver, hosts = populated
        guid = next(iter(hosts))
        with pytest.raises(ConfigurationError):
            resolver.lookup(guid, asns[0], probe=lambda a, g: "garbled")


class TestUpdate:
    def test_update_bumps_version_everywhere(self, resolver, base_table, asns):
        guid = GUID.from_name("mover")
        resolver.insert(guid, [locator(base_table, asns[0])], asns[0])
        resolver.update(guid, [locator(base_table, asns[1])], asns[1])
        for asn in resolver.replica_sets[guid].all_asns:
            assert resolver.store_at(asn).get(guid).version == 1

    def test_update_moves_local_copy(self, resolver, base_table, asns):
        guid = GUID.from_name("mover")
        old, new = asns[0], asns[1]
        resolver.insert(guid, [locator(base_table, old)], old)
        resolver.update(guid, [locator(base_table, new)], new)
        replicas = set(resolver.placer.hosting_asns(guid))
        if old not in replicas:
            assert resolver.store_at(old).get(guid) is None
        assert resolver.store_at(new).get(guid) is not None

    def test_lookup_after_move_returns_new_locator(
        self, resolver, base_table, asns, rng
    ):
        guid = GUID.from_name("mover")
        old, new = asns[0], asns[1]
        resolver.insert(guid, [locator(base_table, old)], old)
        resolver.update(guid, [locator(base_table, new)], new)
        result = resolver.lookup(guid, int(rng.choice(asns)))
        assert result.locators == (locator(base_table, new),)


class TestDelete:
    def test_delete_removes_all_copies(self, resolver, base_table, asns):
        guid = GUID.from_name("gone")
        resolver.insert(guid, [locator(base_table, asns[0])], asns[0])
        removed = resolver.delete(guid)
        assert removed >= 1
        assert all(store.get(guid) is None for store in resolver.stores.values())
        assert guid not in resolver.replica_sets

    def test_delete_unknown_guid_stateless(self, resolver):
        assert resolver.delete(GUID.from_name("never")) == 0


class TestIntrospection:
    def test_storage_load_counts(self, populated):
        resolver, hosts = populated
        load = resolver.storage_load()
        assert sum(load.values()) == resolver.total_entries()
        # 30 hosts × (≤5 global + ≤1 local) copies; dedup may reduce.
        assert 30 <= resolver.total_entries() <= 30 * 6

    def test_timeout_validation(self, base_table, router):
        with pytest.raises(ConfigurationError):
            DMapResolver(base_table, router, timeout_ms=0)
