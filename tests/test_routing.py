"""Tests for the shortest-path routing oracle."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.topology.datasets import line_fixture, star_fixture
from repro.topology.graph import ASInfo, ASTopology
from repro.topology.routing import Router


class TestLineFixture:
    @pytest.fixture(scope="class")
    def line_router(self):
        # 1 - 2 - 3 - 4 - 5, links 10 ms, intra 1 ms.
        return Router(line_fixture(n=5, link_ms=10.0, intra_ms=1.0))

    def test_path_latency_exact(self, line_router):
        assert line_router.path_latency_ms(1, 4) == pytest.approx(30.0)
        assert line_router.path_latency_ms(2, 3) == pytest.approx(10.0)
        assert line_router.path_latency_ms(3, 3) == 0.0

    def test_hops_exact(self, line_router):
        assert line_router.hops(1, 5) == 4
        assert line_router.hops(2, 2) == 0

    def test_one_way_includes_intra(self, line_router):
        # intra(src) + path + intra(dst) = 1 + 30 + 1.
        assert line_router.one_way_ms(1, 4) == pytest.approx(32.0)
        # Same AS: intra only.
        assert line_router.one_way_ms(3, 3) == pytest.approx(1.0)

    def test_rtt_is_double(self, line_router):
        assert line_router.rtt_ms(1, 4) == pytest.approx(64.0)

    def test_one_way_to_many(self, line_router):
        out = line_router.one_way_to_many(2, np.array([1, 2, 5]))
        assert out.tolist() == pytest.approx([12.0, 1.0, 32.0])

    def test_closest_of_by_latency(self, line_router):
        asn, latency = line_router.closest_of(2, np.array([5, 1, 4]))
        assert asn == 1
        assert latency == pytest.approx(12.0)

    def test_closest_of_by_hops(self, line_router):
        asn, _latency = line_router.closest_of(2, np.array([5, 1, 4]), by="hops")
        assert asn == 1

    def test_closest_of_self_wins(self, line_router):
        asn, latency = line_router.closest_of(3, np.array([1, 3, 5]))
        assert asn == 3
        assert latency == pytest.approx(1.0)

    def test_closest_of_validation(self, line_router):
        with pytest.raises(RoutingError):
            line_router.closest_of(1, np.array([], dtype=np.int64))
        with pytest.raises(RoutingError):
            line_router.closest_of(1, np.array([2]), by="magic")


class TestCaching:
    def test_rows_are_cached(self):
        router = Router(star_fixture(n_leaves=6))
        router.latency_row(1)
        runs = router.dijkstra_runs
        router.latency_row(1)
        router.rtt_ms(1, 3)
        assert router.dijkstra_runs == runs

    def test_lru_eviction(self):
        router = Router(line_fixture(n=6), cache_size=2)
        router.latency_row(1)
        router.latency_row(2)
        router.latency_row(3)  # evicts AS 1's row
        runs = router.dijkstra_runs
        router.latency_row(1)
        assert router.dijkstra_runs == runs + 1

    def test_cache_stats(self):
        router = Router(line_fixture(n=4))
        router.latency_row(1)
        router.hop_row(2)
        stats = router.cache_stats()
        assert stats["latency_rows"] == 1
        assert stats["hop_rows"] == 1
        assert stats["dijkstra_runs"] == 2

    def test_cache_size_validation(self):
        with pytest.raises(RoutingError):
            Router(line_fixture(n=3), cache_size=0)


class TestUnreachable:
    @pytest.fixture
    def split_router(self):
        topo = ASTopology()
        for asn in (1, 2, 3, 4):
            topo.add_as(ASInfo(asn, intra_latency_ms=1.0, endnodes=1))
        topo.add_link(1, 2, 5.0)
        topo.add_link(3, 4, 5.0)
        return Router(topo)

    def test_unreachable_raises(self, split_router):
        with pytest.raises(RoutingError, match="unreachable"):
            split_router.path_latency_ms(1, 3)
        with pytest.raises(RoutingError):
            split_router.hops(1, 4)
        with pytest.raises(RoutingError):
            split_router.one_way_ms(2, 3)


class TestConsistency:
    def test_latency_matches_hand_dijkstra(self, topology, router, rng):
        # Spot-check the scipy path against a slow hand-rolled Dijkstra.
        import heapq

        asns = topology.asns()
        src = int(rng.choice(asns))
        dist = {src: 0.0}
        heap = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nbr in topology.neighbors(node):
                nd = d + topology.link_latency(node, nbr)
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        for dst in list(rng.choice(asns, size=10)):
            dst = int(dst)
            assert router.path_latency_ms(src, dst) == pytest.approx(
                dist[dst], rel=1e-5
            )

    def test_symmetry(self, router, asns, rng):
        for _ in range(10):
            a, b = (int(x) for x in rng.choice(asns, size=2))
            assert router.path_latency_ms(a, b) == pytest.approx(
                router.path_latency_ms(b, a), rel=1e-5
            )

    def test_triangle_inequality(self, router, asns, rng):
        for _ in range(10):
            a, b, c = (int(x) for x in rng.choice(asns, size=3))
            direct = router.path_latency_ms(a, c)
            via = router.path_latency_ms(a, b) + router.path_latency_ms(b, c)
            assert direct <= via + 1e-6


class TestVectorizedQueries:
    """Dense asn->index translation, batch RTTs, exact-integer hops."""

    @pytest.fixture(scope="class")
    def gap_router(self):
        # Non-contiguous ASNs so the dense lookup table has real holes.
        topo = ASTopology()
        for asn in (10, 20, 40):
            topo.add_as(ASInfo(asn, intra_latency_ms=0.5, endnodes=1))
        topo.add_link(10, 20, 4.0)
        topo.add_link(20, 40, 6.0)
        return Router(topo)

    def test_indices_of_matches_index_of(self, gap_router):
        out = gap_router.indices_of(np.array([40, 10, 20, 10]))
        expected = [gap_router.topology.index_of(a) for a in (40, 10, 20, 10)]
        assert out.tolist() == expected

    def test_indices_of_preserves_shape(self, gap_router):
        out = gap_router.indices_of(np.array([[10, 20], [40, 10]]))
        assert out.shape == (2, 2)

    def test_indices_of_unknown_raises(self, gap_router):
        for bogus in (30, 41, -1, 10_000):
            with pytest.raises(RoutingError, match="unknown AS"):
                gap_router.indices_of(np.array([10, bogus]))

    def test_rtt_to_many_bitwise_equals_scalar(self, router, asns, rng):
        src = int(rng.choice(asns))
        dst = np.asarray(rng.choice(asns, size=64), dtype=np.int64)
        batch = router.rtt_to_many(src, dst)
        scalar = [router.rtt_ms(src, int(d)) for d in dst]
        # Exact float equality, not approx: the fastpath engine relies on
        # the two code paths producing identical bits.
        assert batch.tolist() == scalar

    def test_rtt_to_many_same_as_is_intra_only(self, gap_router):
        out = gap_router.rtt_to_many(20, np.array([20]))
        assert out.tolist() == [2.0 * 0.5]

    def test_rtt_to_many_unreachable(self):
        topo = ASTopology()
        for asn in (1, 2, 3):
            topo.add_as(ASInfo(asn, intra_latency_ms=1.0, endnodes=1))
        topo.add_link(1, 2, 5.0)  # AS 3 is isolated
        router = Router(topo)
        with pytest.raises(RoutingError, match="unreachable"):
            router.rtt_to_many(1, np.array([2, 3]))
        relaxed = router.rtt_to_many(1, np.array([2, 3]), strict=False)
        assert np.isfinite(relaxed[0])
        assert np.isinf(relaxed[1])

    def test_hop_rows_are_exact_integers(self, router, asns):
        row = router.hop_row(int(asns[0]))
        finite = np.isfinite(row)
        assert np.array_equal(row[finite], np.round(row[finite]))

    def test_hops_exact_integers_on_line(self):
        router = Router(line_fixture(n=9, link_ms=0.1, intra_ms=0.01))
        # Sub-millisecond float weights must not leak into hop counts.
        for dst in range(2, 10):
            hops = router.hops(1, dst)
            assert isinstance(hops, int)
            assert hops == dst - 1

    def test_hop_matrix_uses_unit_integer_weights(self, router):
        assert router._hop_matrix.dtype == np.int8
        assert set(np.unique(router._hop_matrix.data).tolist()) == {1}
