"""Tests for the §V-C scenarios and the §IV-A overhead model."""

import numpy as np
import pytest

from repro.analysis.overhead import OverheadModel, entry_size_bits
from repro.analysis.scenarios import (
    LONG_TERM_RATIOS,
    MEDIUM_TERM_RATIOS,
    PRESENT_DAY_RATIOS,
    all_scenarios,
    long_term_model,
    medium_term_model,
    present_day_model,
)
from repro.errors import ConfigurationError


class TestScenarios:
    def test_layer_counts_match_paper(self):
        # Present: 8 layers; medium: 6; long: 4 (§V-C).
        assert len(PRESENT_DAY_RATIOS) == 8
        assert len(MEDIUM_TERM_RATIOS) == 6
        assert len(LONG_TERM_RATIOS) == 4

    def test_ratios_sum_to_one(self):
        for ratios in (PRESENT_DAY_RATIOS, MEDIUM_TERM_RATIOS, LONG_TERM_RATIOS):
            assert sum(ratios) == pytest.approx(1.0)

    def test_present_day_mass_in_layers_3_4(self):
        # "more than 60% of the nodes residing in layers 3 and 4".
        assert PRESENT_DAY_RATIOS[3] + PRESENT_DAY_RATIOS[4] > 0.6

    def test_flatter_scenarios_bound_lower(self):
        # Fig. 7 ordering: present > medium > long at every K.
        for k in (1, 2, 5, 10, 20):
            present = present_day_model().bound_ms(k)
            medium = medium_term_model().bound_ms(k)
            long_term = long_term_model().bound_ms(k)
            assert present > medium > long_term

    def test_all_scenarios_ordering(self):
        names = [m.name for m in all_scenarios()]
        assert names[0].startswith("present")
        assert names[-1].startswith("long")

    def test_bounds_in_paper_range(self):
        # Fig. 7's y-axis spans roughly 40-100 ms; the synthesized ratios
        # must land the curves in that window.
        for model in all_scenarios():
            for k in range(1, 21):
                assert 35.0 < model.bound_ms(k) < 105.0

    def test_sensitivity_to_within_constraint_perturbation(self):
        # Shape conclusions must survive small perturbations of the
        # synthesized ratio vectors (they are not published exactly).
        from repro.analysis.jellyfish_model import AnalyticalModel

        rng = np.random.default_rng(0)
        for _ in range(10):
            noise = rng.uniform(0.9, 1.1, size=len(PRESENT_DAY_RATIOS))
            perturbed = np.asarray(PRESENT_DAY_RATIOS) * noise
            perturbed /= perturbed.sum()
            model = AnalyticalModel("perturbed", tuple(perturbed))
            curve = model.sweep(range(1, 21))
            assert (np.diff(curve) <= 1e-9).all(), "still decreasing in K"
            assert curve[0] - curve[4] > curve[9] - curve[19]


class TestOverheadModel:
    def test_entry_size(self):
        assert entry_size_bits() == 352

    def test_entry_size_parametric(self):
        assert entry_size_bits(guid_bits=128, max_locators=2, locator_bits=64) == 288

    def test_paper_storage_with_implied_as_count(self):
        model = OverheadModel(n_as=50_900)
        assert model.storage_per_as_mbits() == pytest.approx(173, rel=0.01)

    def test_dimes_as_count_storage(self):
        model = OverheadModel()  # 26,424 ASs
        assert model.storage_per_as_mbits() == pytest.approx(333, rel=0.01)

    def test_update_traffic_about_10_gbps(self):
        assert OverheadModel().update_traffic_gbps() == pytest.approx(10.2, abs=0.1)

    def test_traffic_is_minute_fraction(self):
        assert OverheadModel().traffic_fraction_of_internet() < 1e-6

    def test_report_keys(self):
        report = OverheadModel().report()
        for key in (
            "entry_bits",
            "storage_per_as_mbits",
            "update_traffic_gbps",
            "traffic_fraction_of_internet",
        ):
            assert key in report

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(k=0)
        with pytest.raises(ConfigurationError):
            OverheadModel(n_as=0)
        with pytest.raises(ConfigurationError):
            entry_size_bits(guid_bits=-1)
        with pytest.raises(ConfigurationError):
            OverheadModel().traffic_fraction_of_internet(0.0)

    def test_scaling_linear_in_guids(self):
        base = OverheadModel(n_guids=1e9)
        doubled = OverheadModel(n_guids=2e9)
        assert doubled.total_storage_bits() == pytest.approx(
            2 * base.total_storage_bits()
        )
        assert doubled.update_traffic_gbps() == pytest.approx(
            2 * base.update_traffic_gbps()
        )
