"""Tests for the DMapNetwork façade."""

import pytest

from repro import DMapNetwork
from repro.core.guid import GUID
from repro.errors import ConfigurationError, DMapError, LookupFailedError


@pytest.fixture(scope="module")
def network():
    return DMapNetwork.build(n_as=120, k=5, seed=3)


class TestRegistration:
    def test_register_and_lookup_by_name(self, network):
        guid = network.register_host("test-phone")
        result = network.lookup("test-phone")
        assert result.entry.guid == guid
        assert result.rtt_ms > 0

    def test_register_at_specific_as(self, network):
        asn = network.topology.asns()[5]
        network.register_host("pinned-host", asn=asn)
        assert network.host_location("pinned-host") == asn

    def test_double_registration_rejected(self, network):
        network.register_host("dup-host")
        with pytest.raises(ConfigurationError):
            network.register_host("dup-host")

    def test_register_by_guid(self, network):
        guid = GUID.from_name("raw-guid-host")
        assert network.register_host(guid) == guid
        assert network.lookup(guid).entry.guid == guid

    def test_unknown_host_errors(self, network):
        with pytest.raises(DMapError):
            network.host_location("nobody")
        with pytest.raises(LookupFailedError):
            network.lookup("never-registered-name")


class TestMobility:
    def test_move_updates_binding(self, network):
        network.register_host("mover-1")
        before = network.host_location("mover-1")
        network.move_host("mover-1")
        after = network.host_location("mover-1")
        assert after != before or after in network.topology.neighbors(before)
        result = network.lookup("mover-1")
        expected = network.table.representative_address(after)
        assert result.locators == (expected,)

    def test_move_to_specific_as(self, network):
        network.register_host("mover-2")
        target = network.topology.asns()[-1]
        network.move_host("mover-2", to_asn=target)
        assert network.host_location("mover-2") == target

    def test_moves_counted(self, network):
        network.register_host("mover-3")
        for _ in range(3):
            network.move_host("mover-3")
        record = network._record("mover-3")
        assert record.moves == 3

    def test_clock_stamps_writes(self, network):
        network.register_host("timed-host")
        network.advance_time(5000.0)
        network.move_host("timed-host")
        assert network.lookup("timed-host").entry.timestamp == network.clock_ms
        with pytest.raises(ConfigurationError):
            network.advance_time(-1.0)


class TestDeregistration:
    def test_deregister_removes_everything(self, network):
        network.register_host("goner")
        removed = network.deregister_host("goner")
        assert removed >= 1
        with pytest.raises(DMapError):
            network.host_location("goner")
        with pytest.raises(LookupFailedError):
            network.lookup("goner")


class TestStats:
    def test_stats_shape(self, network):
        network.register_host("stat-host")
        stats = network.stats()
        assert stats["n_as"] == 120
        assert stats["n_hosts"] >= 1
        assert stats["replica_copies"] >= stats["n_hosts"]
        assert 0 < stats["announcement_ratio"] < 1

    def test_random_asn_is_valid(self, network):
        for _ in range(20):
            assert network.random_asn() in network.topology


class TestTracing:
    def test_register_move_lookup_trace_round_trip(self):
        from repro.obs import CollectingTracer

        tracer = CollectingTracer()
        net = DMapNetwork.build(n_as=80, k=5, seed=17, tracer=tracer)
        guid = net.register_host("roamer")
        before = len(tracer.traces)

        first = net.lookup("roamer")
        net.move_host("roamer")
        after_move = net.host_location("roamer")
        second = net.lookup("roamer")

        # Only the two lookups trace; writes are not lookups.
        traces = tracer.traces[before:]
        assert len(traces) == 2
        for t, result in zip(traces, (first, second)):
            assert t.guid_value == int(guid)
            assert t.success
            assert t.k == 5
            assert t.rtt_ms == result.rtt_ms
            assert len(t.placement) == 5
            assert t.served_by == (
                t.source_asn if t.used_local else t.attempts[-1].asn
            )

        # The post-move trace still resolves through the same replica
        # chains (placement is a pure function of the GUID), and the
        # returned locator is the new attachment's address.
        assert traces[0].replica_set == traces[1].replica_set
        expected = net.table.representative_address(after_move)
        assert second.locators == (expected,)
