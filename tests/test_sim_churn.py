"""Tests for BGP churn executed *inside* the discrete-event simulation —
the §VII "transient effects of BGP updates" extension.
"""

import numpy as np
import pytest

from repro.bgp.prefix import Announcement
from repro.core.guid import GUID
from repro.sim.simulation import DMapSimulation


@pytest.fixture
def sim_world(topology, table, router, asns, rng):
    """A populated simulation over a private (mutable) table copy."""
    sim = DMapSimulation(topology, table, k=5, router=router, seed=4)
    hosts = {}
    for i in range(40):
        guid = GUID.from_name(f"churn-sim-{i}")
        home = int(rng.choice(asns))
        hosts[guid] = home
        sim.schedule_insert(
            guid, [table.representative_address(home)], home, at=0.0
        )
    return sim, hosts, table


def find_hosting_prefix(sim, hosts):
    """A (prefix, guid) pair where a global replica lives in the prefix."""
    for guid in hosts:
        for res in sim.placer.resolve_all(guid):
            for prefix in sim.table.prefixes_of(res.asn):
                if prefix.contains(res.address):
                    return prefix, guid
    raise AssertionError("no replica found inside announced space")


class TestWithdrawalInVirtualTime:
    def test_mappings_resolvable_after_withdrawal(self, sim_world, asns, rng):
        sim, hosts, table = sim_world
        prefix, _guid = find_hosting_prefix(sim, hosts)
        sim.schedule_withdrawal(prefix, at=30_000.0)
        for i, guid in enumerate(hosts):
            sim.schedule_lookup(guid, int(rng.choice(asns)), at=120_000.0 + i)
        sim.run()
        assert len(sim.metrics.records) == len(hosts)
        assert not sim.metrics.failed
        assert sim.migrations >= 1

    def test_withdrawn_as_loses_prefix_hosted_copies(self, sim_world):
        sim, hosts, table = sim_world
        prefix, guid = find_hosting_prefix(sim, hosts)
        withdrawing_asn = table.resolve(prefix.base).asn
        sim.schedule_withdrawal(prefix, at=30_000.0)
        sim.run()
        # The copy hosted via the withdrawn block is gone unless another
        # chain or the local copy keeps the GUID at that AS.
        entry = sim.nodes[withdrawing_asn].store.get(guid)
        still_placed = withdrawing_asn in set(sim.placer.hosting_asns(guid))
        locally_attached = hosts[guid] == withdrawing_asn
        if entry is not None:
            assert still_placed or locally_attached

    def test_new_hosts_receive_migrated_entries(self, sim_world):
        sim, hosts, table = sim_world
        prefix, guid = find_hosting_prefix(sim, hosts)
        sim.schedule_withdrawal(prefix, at=30_000.0)
        sim.run()
        for res in sim.placer.resolve_all(guid):
            assert sim.nodes[res.asn].store.get(guid) is not None


class TestLazyMigrationOnAnnouncement:
    def test_first_miss_pulls_mapping_over(self, sim_world, asns, rng):
        sim, hosts, table = sim_world
        prefix, guid = find_hosting_prefix(sim, hosts)
        original_asn = table.resolve(prefix.base).asn

        # Withdraw, then re-announce (a flap), then query repeatedly.
        sim.schedule_withdrawal(prefix, at=30_000.0)
        sim.schedule_announcement(
            Announcement(prefix, original_asn), at=60_000.0
        )
        queriers = [int(rng.choice(asns)) for _ in range(6)]
        for i, src in enumerate(queriers):
            sim.schedule_lookup(guid, src, at=120_000.0 + i * 30_000.0)
        sim.run()

        assert not sim.metrics.failed
        # After the flap settles, every currently-correct host has a copy
        # (lazy pulls happen only for hosts that were actually queried
        # and missed; at minimum resolvability held throughout).
        for record in sim.metrics.records:
            assert record.success

    def test_migration_counter_advances(self, sim_world, asns, rng):
        sim, hosts, table = sim_world
        prefix, _guid = find_hosting_prefix(sim, hosts)
        sim.schedule_withdrawal(prefix, at=30_000.0)
        sim.run()
        assert sim.migrations >= 1


class TestOrphanMigrationRoundTrip:
    """The full withdraw → stale lookup → flap → recapture cycle.

    A replica orphaned by a withdrawal migrates to its deputy; when the
    prefix is re-announced the original AS should lazily regain the copy
    on the first query that reaches it (§III-D.1), restoring attempts to
    the failure-free baseline.
    """

    def test_withdraw_flap_recapture(self, sim_world, asns, rng):
        sim, hosts, table = sim_world
        prefix, guid = find_hosting_prefix(sim, hosts)
        original_asn = table.resolve(prefix.base).asn

        sim.schedule_withdrawal(prefix, at=30_000.0)
        # Mid-churn lookup: the placement has shifted to the deputy; the
        # walk may pay extra "GUID missing" round trips but must resolve.
        mid_querier = int(rng.choice(asns))
        sim.schedule_lookup(guid, mid_querier, at=60_000.0)
        sim.schedule_announcement(Announcement(prefix, original_asn), at=90_000.0)
        # Post-flap lookups from the re-announcing AS itself: with the
        # latency policy its own (intra-AS) replica sorts first, so the
        # first query reaches it, misses if the copy was orphaned away,
        # and triggers the lazy pull; the second must then hit in one.
        sim.schedule_lookup(guid, original_asn, at=120_000.0)
        sim.schedule_lookup(guid, original_asn, at=150_000.0)
        sim.run()

        assert not sim.metrics.failed
        k = sim.hash_family.k
        for record in sim.metrics.records:
            assert record.attempts <= k
        # Recapture: the original AS holds the copy again...
        assert original_asn in set(sim.placer.hosting_asns(guid))
        assert sim.nodes[original_asn].store.get(guid) is not None
        # ...and serves the retry first-attempt, like before the churn.
        final = sim.metrics.records[-1]
        assert final.source_asn == original_asn
        assert final.attempts == 1
        assert final.served_by == original_asn

    def test_update_retires_stale_copy_at_old_attachment(
        self, sim_world, asns, rng
    ):
        sim, hosts, table = sim_world
        guid = GUID.from_name("round-trip-mover")
        hosting = set(sim.placer.hosting_asns(guid))
        old_as, new_as = [
            int(a) for a in asns if int(a) not in hosting
        ][:2]
        sim.schedule_insert(
            guid, [table.representative_address(old_as)], old_as, at=0.0
        )
        sim.schedule_update(
            guid, [table.representative_address(new_as)], new_as, at=60_000.0
        )
        sim.run()
        # The stale local copy at the previous attachment AS is retired;
        # the new attachment AS and every global replica hold the update.
        assert sim.nodes[old_as].store.get(guid) is None
        moved = sim.nodes[new_as].store.get(guid)
        assert moved is not None
        assert moved.version == 1
        for res in sim.placer.resolve_all(guid):
            replica = sim.nodes[res.asn].store.get(guid)
            assert replica is not None
            assert replica.version == 1
