"""Tests for the end-to-end discrete-event simulation.

The key property: the DES and the instant-mode resolver implement the same
protocol, so on failure-free workloads their response times must agree to
floating-point precision.
"""

import numpy as np
import pytest

from repro.core.guid import GUID
from repro.core.resolver import DMapResolver
from repro.sim.failures import ChurnFailureModel, RouterFailureModel
from repro.sim.simulation import DMapSimulation


def build_sim(topology, table, router, **kwargs):
    defaults = dict(k=5, router=router, seed=3)
    defaults.update(kwargs)
    return DMapSimulation(topology, table, **defaults)


@pytest.fixture
def hosts(base_table, asns, rng):
    """40 (guid, home, querier) triples."""
    out = []
    for i in range(40):
        out.append(
            (
                GUID.from_name(f"sim-host-{i}"),
                int(rng.choice(asns)),
                int(rng.choice(asns)),
            )
        )
    return out


def schedule_workload(sim, table, hosts):
    for guid, home, querier in hosts:
        locator = table.representative_address(home)
        sim.schedule_insert(guid, [locator], home, at=0.0)
        sim.schedule_lookup(guid, querier, at=60_000.0)


class TestBasicOperation:
    def test_all_queries_answered(self, topology, base_table, router, hosts):
        sim = build_sim(topology, base_table, router)
        schedule_workload(sim, base_table, hosts)
        sim.run()
        assert len(sim.metrics.records) == len(hosts)
        assert not sim.metrics.failed

    def test_insert_latency_is_parallel_max(
        self, topology, base_table, router, hosts
    ):
        sim = build_sim(topology, base_table, router)
        resolver = DMapResolver(base_table, router, k=5)
        schedule_workload(sim, base_table, hosts)
        sim.run()
        assert len(sim.insert_records) == len(hosts)
        by_guid = {r.guid_value: r for r in sim.insert_records}
        for guid, home, _querier in hosts:
            expected = resolver.insert(
                guid, [base_table.representative_address(home)], home
            ).rtt_ms
            assert by_guid[guid.value].rtt_ms == pytest.approx(expected)

    def test_lookup_rtts_match_instant_resolver(
        self, topology, base_table, router, hosts
    ):
        sim = build_sim(topology, base_table, router)
        schedule_workload(sim, base_table, hosts)
        sim.run()
        resolver = DMapResolver(base_table, router, k=5)
        for guid, home, _querier in hosts:
            resolver.insert(guid, [base_table.representative_address(home)], home)
        by_guid = {r.guid_value: r for r in sim.metrics.records}
        for guid, _home, querier in hosts:
            expected = resolver.lookup(guid, querier).rtt_ms
            assert by_guid[guid.value].rtt_ms == pytest.approx(expected, abs=1e-6)

    def test_storage_load_matches_resolver(
        self, topology, base_table, router, hosts
    ):
        sim = build_sim(topology, base_table, router)
        resolver = DMapResolver(base_table, router, k=5)
        schedule_workload(sim, base_table, hosts)
        sim.run()
        for guid, home, _querier in hosts:
            resolver.insert(guid, [base_table.representative_address(home)], home)
        assert sim.storage_load() == resolver.storage_load()

    def test_traffic_counted(self, topology, base_table, router, hosts):
        sim = build_sim(topology, base_table, router)
        schedule_workload(sim, base_table, hosts)
        sim.run()
        assert sim.update_traffic_bits() > 0


class TestUpdates:
    def test_update_version_wins(self, topology, base_table, router, asns, rng):
        sim = build_sim(topology, base_table, router)
        guid = GUID.from_name("mover")
        home_a, home_b = int(rng.choice(asns)), int(rng.choice(asns))
        loc_a = base_table.representative_address(home_a)
        loc_b = base_table.representative_address(home_b)
        sim.schedule_insert(guid, [loc_a], home_a, at=0.0)
        sim.schedule_update(guid, [loc_b], home_b, at=50_000.0)
        sim.schedule_lookup(guid, int(rng.choice(asns)), at=100_000.0)
        sim.run()
        assert len(sim.metrics.records) == 1
        # Find the entry the query returned through any replica store.
        for node in sim.nodes.values():
            entry = node.store.get(guid)
            if entry is not None:
                assert entry.locators == (loc_b,)


class TestChurnFailures:
    def test_churn_increases_tail(self, topology, base_table, router, hosts):
        clean = build_sim(topology, base_table, router)
        schedule_workload(clean, base_table, hosts)
        clean.run()

        churned = build_sim(
            topology,
            base_table,
            router,
            failure_model=ChurnFailureModel(0.3, seed=5),
        )
        schedule_workload(churned, base_table, hosts)
        churned.run()

        assert churned.metrics.mean_attempts() > clean.metrics.mean_attempts()
        assert churned.metrics.rtts().mean() > clean.metrics.rtts().mean()

    def test_down_replicas_cause_timeouts_not_failures(
        self, topology, base_table, router, hosts, rng
    ):
        # Take one host, kill its best replica, verify the query still
        # resolves after one timeout.
        probe_sim = build_sim(topology, base_table, router)
        chosen = None
        for guid, home, querier in hosts:
            best = probe_sim.selector.order_candidates(
                querier, probe_sim.placer.hosting_asns(guid)
            )[0]
            if best != querier and best != home and querier != home:
                chosen = (guid, home, querier, best)
                break
        assert chosen is not None, "no host with a distinct best replica"
        guid, home, querier, best = chosen

        sim = build_sim(
            topology,
            base_table,
            router,
            failure_model=RouterFailureModel([best]),
            timeout_ms=500.0,
        )
        locator = base_table.representative_address(home)
        sim.schedule_insert(guid, [locator], home, at=0.0)
        sim.schedule_lookup(guid, querier, at=60_000.0)
        sim.run()
        assert len(sim.metrics.records) == 1
        record = sim.metrics.records[0]
        assert record.success
        assert record.rtt_ms > 500.0  # paid the timeout
        assert record.attempts >= 2

    def test_local_replica_rescues_total_global_failure(
        self, topology, base_table, router, hosts
    ):
        guid, home, _querier = hosts[0]
        probe_sim = build_sim(topology, base_table, router)
        replicas = set(probe_sim.placer.hosting_asns(guid))
        if home in replicas:
            pytest.skip("home is a global replica for this seed")
        sim = build_sim(
            topology,
            base_table,
            router,
            failure_model=RouterFailureModel(replicas),
            timeout_ms=500.0,
        )
        locator = base_table.representative_address(home)
        sim.schedule_insert(guid, [locator], home, at=0.0)
        sim.schedule_lookup(guid, home, at=60_000.0)  # query from home AS
        sim.run()
        # The insert acks never arrive (replicas down), but the local copy
        # serves the lookup.
        assert len(sim.metrics.records) == 1
        assert sim.metrics.records[0].used_local


class TestDeterminism:
    def test_identical_runs(self, topology, base_table, router, hosts):
        results = []
        for _ in range(2):
            sim = build_sim(topology, base_table, router, seed=9)
            schedule_workload(sim, base_table, hosts)
            sim.run()
            results.append([r.rtt_ms for r in sim.metrics.records])
        assert results[0] == results[1]
