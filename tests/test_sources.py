"""Tests for population-weighted source sampling."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.topology.graph import ASInfo, ASTopology
from repro.workload.sources import SourceSampler


def weighted_topology():
    topo = ASTopology()
    topo.add_as(ASInfo(1, endnodes=800))
    topo.add_as(ASInfo(2, endnodes=150))
    topo.add_as(ASInfo(3, endnodes=50))
    topo.add_link(1, 2, 1.0)
    topo.add_link(2, 3, 1.0)
    return topo


class TestSampler:
    def test_probabilities_proportional_to_endnodes(self):
        sampler = SourceSampler(weighted_topology())
        assert sampler.probability_of(1) == pytest.approx(0.8)
        assert sampler.probability_of(2) == pytest.approx(0.15)
        assert sampler.probability_of(3) == pytest.approx(0.05)

    def test_empirical_frequencies(self):
        sampler = SourceSampler(weighted_topology(), np.random.default_rng(0))
        draws = sampler.sample(50_000)
        freq = {asn: (draws == asn).mean() for asn in (1, 2, 3)}
        assert freq[1] == pytest.approx(0.8, abs=0.01)
        assert freq[2] == pytest.approx(0.15, abs=0.01)
        assert freq[3] == pytest.approx(0.05, abs=0.01)

    def test_sample_one(self):
        sampler = SourceSampler(weighted_topology(), np.random.default_rng(0))
        assert sampler.sample_one() in (1, 2, 3)

    def test_deterministic(self):
        a = SourceSampler(weighted_topology(), np.random.default_rng(5)).sample(20)
        b = SourceSampler(weighted_topology(), np.random.default_rng(5)).sample(20)
        assert (a == b).all()

    def test_negative_size_rejected(self):
        sampler = SourceSampler(weighted_topology())
        with pytest.raises(WorkloadError):
            sampler.sample(-1)

    def test_zero_population_rejected(self):
        topo = ASTopology()
        topo.add_as(ASInfo(1, endnodes=0))
        with pytest.raises(WorkloadError):
            SourceSampler(topo)

    def test_generated_topology_bias(self, topology):
        # On the generated graph, populous ASs must dominate the samples.
        sampler = SourceSampler(topology, np.random.default_rng(2))
        draws = sampler.sample(20_000)
        populations = topology.endnode_counts()
        top_as = max(populations, key=populations.get)
        expected = populations[top_as] / sum(populations.values())
        assert (draws == top_as).mean() == pytest.approx(expected, abs=0.02)
