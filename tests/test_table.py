"""Unit tests for the global BGP prefix table."""

import pytest

from repro.bgp.prefix import Announcement, Prefix
from repro.bgp.table import GlobalPrefixTable
from repro.core.guid import NetworkAddress
from repro.errors import PrefixTableError


def ann(cidr: str, asn: int) -> Announcement:
    return Announcement(Prefix.from_cidr(cidr), asn)


@pytest.fixture
def small_table():
    return GlobalPrefixTable(
        [
            ann("10.0.0.0/8", 1),
            ann("10.5.0.0/16", 2),
            ann("67.10.0.0/16", 55),
            ann("44.0.0.0/8", 101),
        ]
    )


class TestMutation:
    def test_announce_and_contains(self, small_table):
        assert Prefix.from_cidr("10.0.0.0/8") in small_table
        assert len(small_table) == 4

    def test_withdraw(self, small_table):
        removed = small_table.withdraw(Prefix.from_cidr("44.0.0.0/8"))
        assert removed.asn == 101
        assert len(small_table) == 3
        assert small_table.prefixes_of(101) == []

    def test_withdraw_unknown_raises(self, small_table):
        with pytest.raises(PrefixTableError):
            small_table.withdraw(Prefix.from_cidr("99.0.0.0/8"))

    def test_reannounce_moves_origin(self, small_table):
        small_table.announce(ann("44.0.0.0/8", 7))
        assert small_table.owner_asn(Prefix.from_cidr("44.1.0.0/16").base) == 7
        assert small_table.prefixes_of(101) == []
        assert 101 not in small_table.asns()


class TestQueries:
    def test_lpm_most_specific(self, small_table):
        assert small_table.owner_asn(Prefix.from_cidr("10.5.1.0/24").base) == 2
        assert small_table.owner_asn(Prefix.from_cidr("10.6.0.0/16").base) == 1

    def test_hole_is_none(self, small_table):
        assert small_table.resolve(0) is None
        assert small_table.owner_asn(0) is None

    def test_nearest(self, small_table):
        found, dist = small_table.nearest(Prefix.from_cidr("10.4.0.0/16").base)
        assert found.asn in (1, 2)
        assert dist == 0  # inside 10/8

    def test_prefixes_of_sorted(self, small_table):
        small_table.announce(ann("9.0.0.0/8", 1))
        prefixes = small_table.prefixes_of(1)
        assert prefixes == sorted(prefixes)
        assert len(prefixes) == 2

    def test_asns(self, small_table):
        assert small_table.asns() == [1, 2, 55, 101]

    def test_announcement_ratio_counts_overlap_once(self, small_table):
        # 10/8 (includes 10.5/16) + 67.10/16 + 44/8 = 2*2^24 + 2^16.
        expected = (2 * (1 << 24) + (1 << 16)) / (1 << 32)
        assert small_table.announcement_ratio() == pytest.approx(expected)

    def test_representative_address(self, small_table):
        na = small_table.representative_address(55)
        assert isinstance(na, NetworkAddress)
        assert small_table.owner_asn(na) == 55

    def test_representative_address_unknown_as(self, small_table):
        with pytest.raises(PrefixTableError):
            small_table.representative_address(999)

    def test_iteration(self, small_table):
        assert {a.asn for a in small_table} == {1, 2, 55, 101}


class TestCopy:
    def test_copy_is_independent(self, small_table):
        clone = small_table.copy()
        clone.withdraw(Prefix.from_cidr("44.0.0.0/8"))
        assert Prefix.from_cidr("44.0.0.0/8") in small_table
        assert Prefix.from_cidr("44.0.0.0/8") not in clone

    def test_interval_index_snapshot(self, small_table):
        idx = small_table.build_interval_index()
        assert idx.announced_fraction() == pytest.approx(
            small_table.announcement_ratio()
        )
        # Snapshot does not follow later withdrawals.
        small_table.withdraw(Prefix.from_cidr("44.0.0.0/8"))
        assert idx.lookup_one(Prefix.from_cidr("44.1.0.0/16").base) == 101
