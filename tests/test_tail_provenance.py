"""Reproduces the paper's tail-provenance finding (§IV-B.2a).

"This long tail arises from a few queries originating from those ASs with
unusually long intra-AS response times ... the 18 queries with the longest
response times all originated from AS 23951, a small AS registered in
Indonesia with a one-way latency of more than 2.3 seconds."

We plant a known fraction of pathological stub ASs, run the full
simulation, and verify the response-time tail is attributable to exactly
those ASs — i.e. replication cannot fix a slow *source*, only a slow
*destination*.
"""

import numpy as np
import pytest

from repro.bgp.allocation import AllocationConfig, generate_global_prefix_table
from repro.topology.generator import TopologyConfig, generate_internet_topology
from repro.topology.latency import LatencyModel
from repro.topology.routing import Router
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.sim.simulation import DMapSimulation

#: One-way latency above which an AS counts as pathological (ms).
OUTLIER_THRESHOLD_MS = 150.0


@pytest.fixture(scope="module")
def outlier_world():
    config = TopologyConfig(
        n_as=250,
        total_endnodes=250_000,
        latency=LatencyModel(outlier_fraction=0.05),  # plant ~5% slow stubs
    )
    topology = generate_internet_topology(config, seed=21)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=5), seed=21
    )
    router = Router(topology)
    sim = DMapSimulation(topology, table, k=5, router=router, seed=21)
    workload = WorkloadGenerator(
        topology, WorkloadConfig(n_guids=300, n_lookups=4000, seed=21)
    ).generate()
    workload.apply_to_simulation(sim, table)
    sim.run()
    return topology, sim


def outlier_asns(topology):
    return {
        asn
        for asn in topology.asns()
        if topology.intra_latency(asn) > OUTLIER_THRESHOLD_MS
    }


class TestTailProvenance:
    def test_outliers_exist(self, outlier_world):
        topology, _sim = outlier_world
        assert len(outlier_asns(topology)) >= 3

    def test_worst_queries_originate_from_outlier_ases(self, outlier_world):
        topology, sim = outlier_world
        slow = outlier_asns(topology)
        records = sorted(sim.metrics.records, key=lambda r: r.rtt_ms, reverse=True)
        # Queries *from* a pathological AS cannot be saved by replication:
        # every one of the very worst queries that exceeds the outlier
        # threshold twice over must have a slow source (nothing else in
        # this world can add seconds).
        extreme = [r for r in records if r.rtt_ms > 2 * OUTLIER_THRESHOLD_MS]
        assert extreme, "expected some extreme-tail queries"
        blamed = sum(1 for r in extreme if r.source_asn in slow)
        assert blamed / len(extreme) > 0.9

    def test_median_unaffected_by_outliers(self, outlier_world):
        topology, sim = outlier_world
        slow = outlier_asns(topology)
        clean_rtts = [
            r.rtt_ms for r in sim.metrics.records if r.source_asn not in slow
        ]
        all_rtts = [r.rtt_ms for r in sim.metrics.records]
        # The bulk of the distribution is not moved by the planted tail.
        assert np.median(all_rtts) == pytest.approx(
            np.median(clean_rtts), rel=0.1
        )

    def test_replication_does_not_rescue_slow_sources(self, outlier_world):
        topology, sim = outlier_world
        slow = outlier_asns(topology)
        from_slow = [
            r.rtt_ms for r in sim.metrics.records if r.source_asn in slow
        ]
        if not from_slow:
            pytest.skip("no query happened to originate from a planted outlier")
        # Each such query pays at least its own intra-AS round trip.
        for rtt, record in zip(
            from_slow,
            (r for r in sim.metrics.records if r.source_asn in slow),
        ):
            floor = 2.0 * topology.intra_latency(record.source_asn)
            assert rtt >= floor - 1e-6
