"""Reproduces the paper's tail-provenance finding (§IV-B.2a) from traces.

"This long tail arises from a few queries originating from those ASs with
unusually long intra-AS response times ... the 18 queries with the longest
response times all originated from AS 23951, a small AS registered in
Indonesia with a one-way latency of more than 2.3 seconds."

We plant a known fraction of pathological stub ASs, run the full
simulation **with tracing on**, and attribute the response-time tail from
the :class:`~repro.obs.trace.QueryTrace` stream alone — the per-query
record carries the source AS, every replica contact, and the local-race
verdict, so the forensics no longer need the metrics collector.  A second,
fully pinned scenario regression-tests the other tail mechanism the trace
schema exists to expose: Algorithm 1 rehash chains that fall back to a
deputy AS, combined with a dead first-choice replica.
"""

import numpy as np
import pytest

from repro.bgp.allocation import AllocationConfig, generate_global_prefix_table
from repro.core.guid import GUID, NetworkAddress
from repro.core.resolver import DMapResolver
from repro.obs import CollectingTracer
from repro.obs.export import classify_provenance, tail_provenance_table
from repro.sim.failures import RouterFailureModel
from repro.topology.generator import TopologyConfig, generate_internet_topology
from repro.topology.latency import LatencyModel
from repro.topology.routing import Router
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.sim.simulation import DMapSimulation

#: One-way latency above which an AS counts as pathological (ms).
OUTLIER_THRESHOLD_MS = 150.0


@pytest.fixture(scope="module")
def outlier_world():
    config = TopologyConfig(
        n_as=250,
        total_endnodes=250_000,
        latency=LatencyModel(outlier_fraction=0.05),  # plant ~5% slow stubs
    )
    topology = generate_internet_topology(config, seed=21)
    table = generate_global_prefix_table(
        topology.asns(), AllocationConfig(prefixes_per_as=5), seed=21
    )
    router = Router(topology)
    tracer = CollectingTracer()
    sim = DMapSimulation(
        topology, table, k=5, router=router, seed=21, tracer=tracer
    )
    workload = WorkloadGenerator(
        topology, WorkloadConfig(n_guids=300, n_lookups=4000, seed=21)
    ).generate()
    workload.apply_to_simulation(sim, table)
    sim.run()
    return topology, sim, tracer.traces


def outlier_asns(topology):
    return {
        asn
        for asn in topology.asns()
        if topology.intra_latency(asn) > OUTLIER_THRESHOLD_MS
    }


class TestTailProvenance:
    def test_outliers_exist(self, outlier_world):
        topology, _sim, _traces = outlier_world
        assert len(outlier_asns(topology)) >= 3

    def test_traces_mirror_metrics_records(self, outlier_world):
        _topology, sim, traces = outlier_world
        # One trace per completed lookup, agreeing with the collector on
        # both the outcome counts and every individual RTT.
        assert len(traces) == len(sim.metrics.records) + len(sim.metrics.failed)
        recorded = sorted(r.rtt_ms for r in sim.metrics.records)
        traced = sorted(t.rtt_ms for t in traces if t.success)
        assert np.allclose(recorded, traced)

    def test_worst_queries_originate_from_outlier_ases(self, outlier_world):
        topology, _sim, traces = outlier_world
        slow = outlier_asns(topology)
        # Queries *from* a pathological AS cannot be saved by replication:
        # every one of the very worst queries that exceeds the outlier
        # threshold twice over must have a slow source (nothing else in
        # this world can add seconds).
        extreme = [t for t in traces if t.rtt_ms > 2 * OUTLIER_THRESHOLD_MS]
        assert extreme, "expected some extreme-tail queries"
        blamed = sum(1 for t in extreme if t.source_asn in slow)
        assert blamed / len(extreme) > 0.9

    def test_tail_table_names_the_culprit_ases(self, outlier_world):
        topology, _sim, traces = outlier_world
        slow = outlier_asns(topology)
        table = tail_provenance_table(traces, worst=18)
        # The paper's anecdote, reproduced as a report: the table of the
        # 18 worst queries is dominated by the planted slow sources.
        named = sum(
            1
            for line in table.splitlines()
            if any(f" {asn} " in f" {line} " for asn in slow)
        )
        assert named >= 16

    def test_median_unaffected_by_outliers(self, outlier_world):
        topology, _sim, traces = outlier_world
        slow = outlier_asns(topology)
        clean_rtts = [
            t.rtt_ms for t in traces if t.success and t.source_asn not in slow
        ]
        all_rtts = [t.rtt_ms for t in traces if t.success]
        # The bulk of the distribution is not moved by the planted tail.
        assert np.median(all_rtts) == pytest.approx(
            np.median(clean_rtts), rel=0.1
        )

    def test_replication_does_not_rescue_slow_sources(self, outlier_world):
        topology, _sim, traces = outlier_world
        slow = outlier_asns(topology)
        from_slow = [t for t in traces if t.source_asn in slow]
        if not from_slow:
            pytest.skip("no query happened to originate from a planted outlier")
        # Each such query pays at least its own intra-AS round trip.
        for t in from_slow:
            floor = 2.0 * topology.intra_latency(t.source_asn)
            assert t.rtt_ms >= floor - 1e-6


class TestDeputyFallbackRegression:
    """Pinned scenario: rehash-exhausted deputy chains + a dead replica.

    Constants below were found by searching table seeds during
    development and are pinned so the exact Algorithm 1 behaviour —
    every chain needing both rehashes, four of five falling back to the
    deputy — stays locked in.  A 2% announced ratio makes hash misses
    near-certain; ``max_rehashes=2`` forces the deputy path.
    """

    TABLE_SEED = 1
    GUID_NAME = "deputy-regression-0"
    EXPECTED_REPLICA_SET = (29, 32, 29, 3, 29)
    EXPECTED_DEPTHS = (2, 2, 2, 2, 2)
    EXPECTED_DEPUTY_CHAINS = 4

    @pytest.fixture()
    def sparse_resolver(self, topology, router, asns):
        table = generate_global_prefix_table(
            asns,
            AllocationConfig(target_ratio=0.02, prefixes_per_as=1),
            seed=self.TABLE_SEED,
        )
        tracer = CollectingTracer()
        resolver = DMapResolver(
            table, router, k=5, max_rehashes=2, tracer=tracer
        )
        return resolver, tracer

    def test_pinned_multi_attempt_deputy_chain(self, sparse_resolver, asns):
        resolver, tracer = sparse_resolver
        guid = GUID.from_name(self.GUID_NAME)
        resolver.insert(guid, [NetworkAddress(1)], int(asns[0]))
        source = int(asns[5])

        # Down the walk's first choice so the trace shows the full
        # mechanism: timeout at the nearest replica, rescue by the next.
        hosting = [r.asn for r in resolver.placer.resolve_all(guid)]
        first_choice = resolver.selector.order_candidates(source, hosting)[0]
        model = RouterFailureModel([first_choice])
        tracer.clear()
        result = resolver.lookup(
            guid,
            source,
            probe=model.lookup_outcome,
            is_down=model.is_down,
            time=0.0,
        )

        (trace,) = tracer.traces
        assert trace.replica_set == self.EXPECTED_REPLICA_SET
        assert trace.rehash_depths == self.EXPECTED_DEPTHS
        assert trace.deputy_chains == self.EXPECTED_DEPUTY_CHAINS
        assert trace.attempts[0].asn == first_choice
        assert trace.attempts[0].outcome == "timeout"
        assert trace.attempts[-1].outcome == "hit"
        assert trace.success
        assert trace.served_by == trace.attempts[-1].asn
        assert trace.rtt_ms == result.rtt_ms
        assert classify_provenance(trace) == "timeout-walk"
        # The timeout attempt is charged the adaptive timer, never less
        # than the configured floor.
        assert trace.attempts[0].cost_ms >= resolver.timeout_ms - 1e-9
