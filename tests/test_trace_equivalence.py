"""Trace-level equivalence: the scalar walk vs the batched engine.

PR 3 proved the two engines agree on lookup *results* (RTT, server,
attempt counts).  The tracing layer turns that into a much stronger
oracle: both engines must emit the same ordered stream of
:class:`~repro.obs.trace.QueryTrace` records — every placement chain,
every issued attempt with its outcome and cost, the local-race verdict —
and the canonical JSONL serialization of the two streams must be
*byte-identical*.  Any divergence in internal decision-making that the
end-result comparison would mask (an attempt charged to the wrong
replica, a swapped outcome, a local race scored differently) fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.guid import GUID, NetworkAddress
from repro.core.resolver import (
    OUTCOME_HIT,
    OUTCOME_MISSING,
    OUTCOME_TIMEOUT,
    DMapResolver,
)
from repro.errors import LookupFailedError
from repro.fastpath import FastpathEngine, FastpathUnsupportedError
from repro.hashing.asnum_placer import ASNumberPlacer, WeightedASPlacer
from repro.obs import CollectingTracer
from repro.obs.export import dumps_traces, read_traces, write_traces

N_GUIDS = 40
N_LOOKUPS = 150


class _Model:
    """Deterministic per-(AS, GUID) availability — a pure function."""

    def __init__(self, down_asns=()):
        self._down = frozenset(int(a) for a in down_asns)

    def lookup_outcome(self, asn, guid):
        v = (asn * 2654435761 + int(guid) * 40503) % 10
        if v < 2:
            return OUTCOME_TIMEOUT
        if v < 5:
            return OUTCOME_MISSING
        return OUTCOME_HIT

    def is_down(self, asn):
        return asn in self._down


def _run_both(base_table, router, asns, *, k=5, local=True, placer=None,
              model=None, seed=101):
    """One deployment, the same lookups through both engines.

    Returns ``(scalar_traces, fastpath_traces)`` — each engine writes
    into its own collector so the streams stay attributable.
    """
    rng = np.random.default_rng(seed)
    scalar_tracer = CollectingTracer()
    resolver = DMapResolver(
        base_table, router, k=k, local_replica=local, placer=placer,
        tracer=scalar_tracer,
    )
    values = rng.integers(0, np.iinfo(np.uint64).max, size=N_GUIDS, dtype=np.uint64)
    guids = [GUID(int(v)) for v in values]
    write_src = rng.choice(asns, size=N_GUIDS)
    local_asn = {}
    for g, src in zip(guids, write_src):
        resolver.insert(g, [NetworkAddress(int(rng.integers(0, 2**32)))], int(src))
        local_asn[g] = int(src)

    engine = FastpathEngine.from_resolver(resolver)
    fast_tracer = CollectingTracer()
    engine.tracer = fast_tracer
    batch = engine.index_guids(guids, [local_asn[g] for g in guids])
    gidx = rng.integers(0, N_GUIDS, size=N_LOOKUPS)
    srcs = rng.choice(asns, size=N_LOOKUPS)
    times = rng.uniform(0.0, 1000.0, size=N_LOOKUPS)

    probe = model.lookup_outcome if model is not None else None
    is_down = model.is_down if model is not None else None
    for i in range(N_LOOKUPS):
        try:
            resolver.lookup(
                guids[int(gidx[i])], int(srcs[i]),
                probe=probe, is_down=is_down, time=float(times[i]),
            )
        except LookupFailedError:
            pass
    engine.lookup_batch(batch, gidx, srcs, availability=model, issued_at=times)
    return scalar_tracer.traces, fast_tracer.traces


def _assert_streams_byte_identical(scalar_traces, fast_traces):
    assert len(scalar_traces) == N_LOOKUPS == len(fast_traces)
    scalar_doc = dumps_traces(scalar_traces)
    fast_doc = dumps_traces(fast_traces)
    if scalar_doc != fast_doc:  # pinpoint the first diverging record
        for a, b in zip(scalar_doc.splitlines(), fast_doc.splitlines()):
            assert a == b
    assert scalar_doc == fast_doc


class TestConvergedEquivalence:
    """Failure-free lane: every replica answers."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("local", [True, False])
    def test_address_placement(self, base_table, router, asns, k, local):
        scalar, fast = _run_both(
            base_table, router, asns, k=k, local=local, seed=100 + k
        )
        _assert_streams_byte_identical(scalar, fast)

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_asnum_placement(self, base_table, router, asns, k):
        placer = ASNumberPlacer(asns, k=k)
        scalar, fast = _run_both(
            base_table, router, asns, k=k, placer=placer, seed=300 + k
        )
        _assert_streams_byte_identical(scalar, fast)

    def test_weighted_placement(self, base_table, router, asns):
        weights = {
            asn: w for asn, w in zip(asns, np.linspace(1.0, 3.0, num=len(asns)))
        }
        placer = WeightedASPlacer(weights, k=3)
        scalar, fast = _run_both(
            base_table, router, asns, k=3, placer=placer, seed=404
        )
        _assert_streams_byte_identical(scalar, fast)


class TestAvailabilityEquivalence:
    """Walk lane: misses, timeouts, dead queriers, failures."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("local", [True, False])
    def test_mixed_outcomes(self, base_table, router, asns, k, local):
        scalar, fast = _run_both(
            base_table, router, asns, k=k, local=local, model=_Model(),
            seed=200 + k,
        )
        _assert_streams_byte_identical(scalar, fast)

    def test_dead_querier_local_timeout(self, base_table, router, asns):
        scalar, fast = _run_both(
            base_table, router, asns, model=_Model(down_asns=asns[:40]),
            seed=505,
        )
        _assert_streams_byte_identical(scalar, fast)
        timed_out = [
            t for t in scalar if t.local_launched and t.local_outcome == "timeout"
        ]
        assert timed_out, "expected some down-querier local timeouts"

    def test_total_failure_traces(self, base_table, router, asns):
        class _AllDead(_Model):
            def lookup_outcome(self, asn, guid):
                return OUTCOME_TIMEOUT

        dead = _AllDead()  # every replica times out: all walks fail
        scalar, fast = _run_both(
            base_table, router, asns, local=False, model=dead, seed=606
        )
        _assert_streams_byte_identical(scalar, fast)
        assert all(not t.success for t in scalar)
        assert all(t.failure_cause == "exhausted" for t in scalar)
        assert all(
            all(a.outcome == OUTCOME_TIMEOUT for a in t.attempts) for t in scalar
        )


class TestTraceFileRoundTrip:
    def test_jsonl_file_round_trips_and_stays_identical(
        self, base_table, router, asns, tmp_path
    ):
        scalar, fast = _run_both(base_table, router, asns, seed=808)
        path = tmp_path / "traces.jsonl"
        write_traces(str(path), scalar)
        loaded = read_traces(str(path))
        assert dumps_traces(loaded) == dumps_traces(fast)
        assert loaded == sorted(
            scalar,
            key=lambda t: (t.k, t.issued_at, t.guid_value, t.source_asn),
        )

    def test_tracing_rejects_sharded_execution(self, base_table, router, asns):
        rng = np.random.default_rng(909)
        resolver = DMapResolver(base_table, router, k=3, tracer=CollectingTracer())
        guids = [GUID(int(v)) for v in rng.integers(0, 2**64, size=8, dtype=np.uint64)]
        for g in guids:
            resolver.insert(g, [NetworkAddress(1)], int(asns[0]))
        engine = FastpathEngine.from_resolver(resolver)
        batch = engine.index_guids(guids)
        with pytest.raises(FastpathUnsupportedError):
            engine.lookup_batch(
                batch,
                np.zeros(4, dtype=np.int64),
                np.asarray(asns[:4], dtype=np.int64),
                n_jobs=2,
            )
