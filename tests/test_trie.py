"""Unit and property tests for the prefix trie (LPM + nearest prefix)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.prefix import Announcement, Prefix
from repro.bgp.trie import PrefixTrie
from repro.errors import AddressError, EmptyPrefixTableError


def ann(cidr: str, asn: int) -> Announcement:
    return Announcement(Prefix.from_cidr(cidr), asn)


def small_ann(base: int, length: int, asn: int, bits: int = 8) -> Announcement:
    span = 1 << (bits - length)
    return Announcement(Prefix(base & ~(span - 1) & ((1 << bits) - 1), length, bits), asn)


@st.composite
def announcement_sets(draw, bits=8, max_count=12):
    """Random sets of (possibly overlapping) announcements in an 8-bit space,
    at most one announcement per distinct prefix."""
    count = draw(st.integers(min_value=1, max_value=max_count))
    seen = {}
    for i in range(count):
        length = draw(st.integers(min_value=0, max_value=bits))
        base = draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        a = small_ann(base, length, asn=i + 1, bits=bits)
        seen[a.prefix] = a
    return list(seen.values())


def naive_lpm(announcements, address):
    best = None
    for a in announcements:
        if a.prefix.contains(address):
            if best is None or a.prefix.length > best.prefix.length:
                best = a
    return best


class TestInsertWithdraw:
    def test_insert_and_exact_match(self):
        trie = PrefixTrie()
        a = ann("10.0.0.0/8", 1)
        assert trie.insert(a) is None
        assert trie.exact_match(a.prefix) == a
        assert len(trie) == 1

    def test_reinsert_replaces_and_reports(self):
        trie = PrefixTrie()
        trie.insert(ann("10.0.0.0/8", 1))
        replaced = trie.insert(ann("10.0.0.0/8", 2))
        assert replaced.asn == 1
        assert len(trie) == 1
        assert trie.exact_match(Prefix.from_cidr("10.0.0.0/8")).asn == 2

    def test_withdraw(self):
        trie = PrefixTrie()
        trie.insert(ann("10.0.0.0/8", 1))
        removed = trie.withdraw(Prefix.from_cidr("10.0.0.0/8"))
        assert removed.asn == 1
        assert len(trie) == 0
        assert trie.withdraw(Prefix.from_cidr("10.0.0.0/8")) is None

    def test_withdraw_keeps_more_specifics(self):
        trie = PrefixTrie()
        trie.insert(ann("10.0.0.0/8", 1))
        trie.insert(ann("10.5.0.0/16", 2))
        trie.withdraw(Prefix.from_cidr("10.0.0.0/8"))
        addr = Prefix.from_cidr("10.5.1.0/24").base
        assert trie.longest_prefix_match(addr).asn == 2

    def test_width_mismatch_rejected(self):
        trie = PrefixTrie(bits=8)
        with pytest.raises(AddressError):
            trie.insert(ann("10.0.0.0/8", 1))

    def test_iteration_yields_all(self):
        trie = PrefixTrie()
        for cidr, asn in [("10.0.0.0/8", 1), ("10.5.0.0/16", 2), ("11.0.0.0/8", 3)]:
            trie.insert(ann(cidr, asn))
        assert {a.asn for a in trie} == {1, 2, 3}


class TestLongestPrefixMatch:
    def test_most_specific_wins(self):
        trie = PrefixTrie()
        trie.insert(ann("10.0.0.0/8", 1))
        trie.insert(ann("10.5.0.0/16", 2))
        assert trie.longest_prefix_match(Prefix.from_cidr("10.5.7.0/24").base).asn == 2
        assert trie.longest_prefix_match(Prefix.from_cidr("10.6.0.0/16").base).asn == 1

    def test_hole_returns_none(self):
        trie = PrefixTrie()
        trie.insert(ann("10.0.0.0/8", 1))
        assert trie.longest_prefix_match(0) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Announcement(Prefix(0, 0), 99))
        assert trie.longest_prefix_match(12345).asn == 99

    def test_out_of_range_address(self):
        with pytest.raises(AddressError):
            PrefixTrie(bits=8).longest_prefix_match(256)

    @given(announcement_sets(), st.integers(min_value=0, max_value=255))
    def test_agrees_with_naive(self, announcements, address):
        trie = PrefixTrie(bits=8)
        for a in announcements:
            trie.insert(a)
        expected = naive_lpm(announcements, address)
        got = trie.longest_prefix_match(address)
        if expected is None:
            assert got is None
        else:
            assert got.prefix == expected.prefix


class TestNearestPrefix:
    def test_empty_raises(self):
        with pytest.raises(EmptyPrefixTableError):
            PrefixTrie().nearest_prefix(0)

    def test_covered_address_distance_zero(self):
        trie = PrefixTrie()
        trie.insert(ann("10.0.0.0/8", 1))
        found, dist = trie.nearest_prefix(Prefix.from_cidr("10.1.0.0/16").base)
        assert found.asn == 1 and dist == 0

    @given(announcement_sets(), st.integers(min_value=0, max_value=255))
    @settings(max_examples=200)
    def test_agrees_with_brute_force(self, announcements, address):
        trie = PrefixTrie(bits=8)
        for a in announcements:
            trie.insert(a)
        _found, dist = trie.nearest_prefix(address)
        brute = min(a.prefix.xor_distance_to(address) for a in announcements)
        assert dist == brute


class TestAnnouncedSpan:
    def test_disjoint(self):
        trie = PrefixTrie(bits=8)
        trie.insert(small_ann(0, 2, 1))  # 64 addresses
        trie.insert(small_ann(128, 2, 2))  # 64 addresses
        assert trie.announced_span() == 128

    def test_overlap_counted_once(self):
        trie = PrefixTrie(bits=8)
        trie.insert(small_ann(0, 2, 1))  # covers 0-63
        trie.insert(small_ann(0, 4, 2))  # covers 0-15 inside it
        assert trie.announced_span() == 64

    @given(announcement_sets())
    def test_matches_brute_force(self, announcements):
        trie = PrefixTrie(bits=8)
        for a in announcements:
            trie.insert(a)
        brute = sum(
            1
            for addr in range(256)
            if any(a.prefix.contains(addr) for a in announcements)
        )
        assert trie.announced_span() == brute
