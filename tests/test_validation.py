"""Tier-1 coverage for the differential cross-validation harness.

The pinned seeds below each reproduced a *real* analytic-vs-DES
divergence before the corresponding fix landed in this repo; keeping
them here makes every one of those bugs a permanent regression test.
Reproduce any of them interactively with::

    python -m repro.validation --scenarios 1 --seed <seed>
"""

import json

import pytest

from repro.validation import diff_scenario, generate_scenario
from repro.validation.__main__ import build_report, main
from repro.validation.report import (
    KIND_LOOKUP_LOST,
    KIND_STORAGE,
    Mismatch,
    ValidationReport,
)

#: Each seed reproduced a distinct divergence family before its fix:
#:   0 — a GUID Update left the stale local copy at the host's previous
#:       attachment AS (the DES processed updates as plain inserts)
#:   1 — local-vs-global race: the resolver raced the local branch even
#:       when the source AS was itself a global candidate, and broke
#:       ties toward the global reply (served_by / rtt / used_local)
#:   8 — a lookup issued from a dead AS never completed in the DES: the
#:       swallowed local request left the lookup pending forever
#:  13 — failed-lookup time ignored the local branch, and a replica
#:       that should host a mapping after an announcement never pulled
#:       it on the analytic path (lazy migration, §III-D.1)
#:  26 — attempt over-counting: the resolver kept charging global
#:       attempts after the local reply had already won the race
REGRESSION_SEEDS = (0, 1, 8, 13, 26)


class TestDifferentialRegression:
    @pytest.mark.parametrize("seed", REGRESSION_SEEDS)
    def test_pinned_divergence_seed_stays_clean(self, seed):
        diff = diff_scenario(generate_scenario(seed))
        assert diff.clean, "\n".join(m.render() for m in diff.mismatches)

    def test_smoke_consecutive_scenarios_agree(self):
        report = build_report(3, seed=200)
        assert report.clean, report.render()
        assert report.scenarios == 3
        assert report.lookups > 0
        assert report.writes > 0
        assert report.lpm_checks > 0

    def test_cli_exit_code_and_output(self, capsys):
        assert main(["--scenarios", "1", "--seed", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["scenarios"] == 1


class TestScenarioGeneration:
    def test_generation_is_deterministic(self):
        first = generate_scenario(5)
        second = generate_scenario(5)
        assert first.config == second.config
        assert first.trace == second.trace
        assert first.selector_seed == second.selector_seed

    def test_distinct_seeds_vary_the_trace(self):
        assert generate_scenario(3).trace != generate_scenario(4).trace

    def test_fresh_tables_are_independent(self):
        scenario = generate_scenario(0)
        one, two = scenario.fresh_table(), scenario.fresh_table()
        assert one is not two
        assert one is not scenario.base_table


class TestReport:
    def _mismatch(self, seed=3, kind=KIND_STORAGE):
        return Mismatch(
            seed=seed,
            kind=kind,
            subject="AS 7",
            analytic="a",
            simulated="b",
            detail="context",
        )

    def test_clean_flips_on_first_mismatch(self):
        report = ValidationReport()
        report.add_scenario("cfg", 4, 2, 10, ())
        assert report.clean
        report.add_scenario("cfg2", 4, 2, 10, (self._mismatch(),))
        assert not report.clean
        assert report.scenarios == 2
        assert report.lookups == 8

    def test_grouping_and_reproducer_seeds(self):
        report = ValidationReport()
        report.add_scenario(
            "cfg",
            1,
            1,
            1,
            (
                self._mismatch(seed=9, kind=KIND_LOOKUP_LOST),
                self._mismatch(seed=9, kind=KIND_STORAGE),
                self._mismatch(seed=4, kind=KIND_STORAGE),
            ),
        )
        grouped = report.by_kind()
        assert set(grouped) == {KIND_LOOKUP_LOST, KIND_STORAGE}
        assert len(grouped[KIND_STORAGE]) == 2
        assert report.reproducer_seeds() == [4, 9]

    def test_render_names_a_reproducer(self):
        report = ValidationReport()
        report.add_scenario("k=5 churn", 1, 1, 1, (self._mismatch(seed=7),))
        rendered = report.render()
        assert "--seed 7" in rendered
        assert "k=5 churn" in rendered

    def test_as_dict_is_json_serializable(self):
        report = ValidationReport()
        report.add_scenario("cfg", 1, 1, 1, (self._mismatch(),))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["clean"] is False
        assert payload["mismatches"][0]["kind"] == KIND_STORAGE
