"""Tests for the workload generator and event streams."""

import numpy as np
import pytest

from repro.core.resolver import DMapResolver, OUTCOME_MISSING
from repro.errors import WorkloadError
from repro.workload.generator import (
    EventKind,
    WorkloadConfig,
    WorkloadGenerator,
)


@pytest.fixture
def small_workload(topology):
    cfg = WorkloadConfig(n_guids=50, n_lookups=300, seed=3)
    return WorkloadGenerator(topology, cfg).generate()


class TestGeneration:
    def test_event_counts(self, small_workload):
        inserts = [e for e in small_workload.events if e.kind is EventKind.INSERT]
        lookups = [e for e in small_workload.events if e.kind is EventKind.LOOKUP]
        assert len(inserts) == 50
        assert len(lookups) == 300

    def test_events_time_sorted(self, small_workload):
        times = [e.time_ms for e in small_workload.events]
        assert times == sorted(times)

    def test_insert_phase_precedes_lookups(self, small_workload):
        last_insert = max(
            e.time_ms for e in small_workload.events if e.kind is EventKind.INSERT
        )
        first_lookup = min(
            e.time_ms for e in small_workload.events if e.kind is EventKind.LOOKUP
        )
        assert last_insert < first_lookup

    def test_lookups_target_inserted_guids(self, small_workload):
        guids = set(small_workload.home_asn)
        for event in small_workload.events:
            assert event.guid in guids

    def test_popular_ranks_queried_more(self, topology):
        cfg = WorkloadConfig(n_guids=200, n_lookups=5000, seed=1)
        workload = WorkloadGenerator(topology, cfg).generate()
        guids = workload.guids
        counts = {g: 0 for g in guids}
        for event in workload.events:
            if event.kind is EventKind.LOOKUP:
                counts[event.guid] += 1
        top_half = sum(counts[g] for g in guids[:100])
        bottom_half = sum(counts[g] for g in guids[100:])
        assert top_half > bottom_half

    def test_sources_in_topology(self, small_workload, topology):
        for event in small_workload.events:
            assert event.source_asn in topology

    def test_deterministic(self, topology):
        cfg = WorkloadConfig(n_guids=30, n_lookups=100, seed=9)
        a = WorkloadGenerator(topology, cfg).generate()
        b = WorkloadGenerator(topology, cfg).generate()
        assert a.events == b.events

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_guids=0).validate()
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_lookups=-1).validate()
        with pytest.raises(WorkloadError):
            WorkloadConfig(insert_window_ms=-1).validate()

    def test_zero_lookups_allowed(self, topology):
        cfg = WorkloadConfig(n_guids=10, n_lookups=0, seed=0)
        workload = WorkloadGenerator(topology, cfg).generate()
        assert all(e.kind is EventKind.INSERT for e in workload.events)


class TestExecution:
    def test_run_through_resolver(self, small_workload, base_table, router):
        resolver = DMapResolver(base_table, router, k=3)
        rtts = small_workload.run_through_resolver(resolver, base_table)
        assert len(rtts) == 300
        assert all(r > 0 for r in rtts)

    def test_locator_matches_home(self, small_workload, base_table):
        guid = next(iter(small_workload.home_asn))
        locator = small_workload.locator_for(guid, base_table)
        assert base_table.owner_asn(locator) == small_workload.home_asn[guid]

    def test_retry_on_total_failure(self, small_workload, base_table, router):
        # A probe that fails everything a bounded number of times: each
        # failed round's time must be carried into the final RTT.
        resolver = DMapResolver(base_table, router, k=2)
        calls = {"n": 0}

        def flaky(asn, guid):
            calls["n"] += 1
            return OUTCOME_MISSING if calls["n"] <= 2 else "hit"

        single = [e for e in small_workload.events if e.kind is not EventKind.LOOKUP]
        from repro.workload.generator import Workload

        one_lookup = [e for e in small_workload.events if e.kind is EventKind.LOOKUP][:1]
        tiny = Workload(
            small_workload.config,
            small_workload.home_asn,
            single + one_lookup,
        )
        rtts_flaky = tiny.run_through_resolver(resolver, base_table, probe=flaky)
        calls["n"] = 0
        rtts_clean = tiny.run_through_resolver(resolver, base_table, probe=None)
        assert rtts_flaky[0] >= rtts_clean[0]

    def test_retry_gives_up_eventually(self, small_workload, base_table, router):
        resolver = DMapResolver(base_table, router, k=2, local_replica=False)

        def always_missing(asn, guid):
            return OUTCOME_MISSING

        with pytest.raises(WorkloadError, match="kept failing"):
            small_workload.run_through_resolver(
                resolver, base_table, probe=always_missing, max_retry_rounds=3
            )

    def test_apply_to_simulation(self, small_workload, topology, base_table, router):
        from repro.sim.simulation import DMapSimulation

        sim = DMapSimulation(topology, base_table, k=3, router=router, seed=1)
        small_workload.apply_to_simulation(sim, base_table)
        sim.run()
        assert len(sim.metrics.records) == 300
        assert len(sim.insert_records) == 50
